"""Ablations of the TMA model's design choices (DESIGN.md §4).

1. **Recovery-length constant M_rl** — Table II fixes M_rl = 4 from the
   Fig. 8b measurement.  Sweeping M_rl and comparing the model's Bad
   Speculation against the trace-derived temporal ground truth shows
   why: the error is minimized near the measured modal recovery length.
2. **I$ next-line prefetcher** — the paper notes a prefetcher makes
   I$-blocked attribution non-trivial (§IV-A); switching it off shows
   how much frontend latency it actually hides.
3. **DRAM bandwidth (FASED stand-in)** — the Memory-Bound class of the
   streaming memcpy kernel must respond to the modelled DRAM block gap.
4. **Stride data prefetcher** — the remedy the paper's intro prescribes
   for Memory-Bound code; TMA must show it working on strided streams
   and doing nothing for pointer chases.
"""

from dataclasses import replace

import pytest

from repro.core import BoomTmaModel, TmaInputs, compute_tma
from repro.cores import BoomCore, LARGE_BOOM
from repro.cores.boom import BoomCore as _BoomCore
from repro.tools import run_core
from repro.trace import boom_tma_bundle, capture_trace, temporal_tma
from repro.uarch.cache import MemorySystem
from repro.workloads import build_trace


@pytest.fixture(scope="module")
def qsort_run():
    result = run_core("qsort", LARGE_BOOM)
    trace = build_trace("qsort")
    tracer = capture_trace(BoomCore(LARGE_BOOM), trace, boom_tma_bundle(
        LARGE_BOOM.decode_width, LARGE_BOOM.issue_width))
    signals = {f.name: tracer.signal(f.name)
               for f in tracer.bundle.fields}
    temporal = temporal_tma(signals, LARGE_BOOM.decode_width)
    return result, temporal


def test_ablation_recover_length(benchmark, qsort_run, artifact):
    result, temporal = qsort_run
    truth = temporal.fractions()["bad_speculation"]
    inputs = TmaInputs.from_core_result(result)

    def sweep_mrl():
        errors = {}
        for m_rl in range(0, 9):
            model = BoomTmaModel(recover_length=m_rl)
            bad_spec = model.compute(inputs).level1["bad_speculation"]
            errors[m_rl] = bad_spec - truth
        return errors

    errors = benchmark(sweep_mrl)
    lines = ["Ablation — M_rl sweep vs temporal Bad Speculation "
             f"(qsort @ LargeBOOMV3; temporal truth {100 * truth:.2f}%)",
             "(the temporal reference only sees Recovering slots, so the",
             " counter model sits above it by design: §IV-A, 'thus",
             " overestimating its impact')"]
    for m_rl, error in errors.items():
        marker = " <- Table II" if m_rl == 4 else ""
        lines.append(f"  M_rl={m_rl}: model-trace delta "
                     f"{100 * error:+6.2f} pts{marker}")
    artifact("ablation_mrl_sweep", "\n".join(lines))

    # The model must never *under*-estimate Bad Speculation relative to
    # the trace (§IV-A promises a conservative over-attribution)...
    assert all(error >= -0.02 for error in errors.values())
    # ...and each extra assumed recovery cycle adds slots linearly.
    deltas = list(errors.values())
    assert deltas == sorted(deltas)
    step = errors[5] - errors[4]
    assert step == pytest.approx(errors[4] - errors[3], rel=0.05)


def test_ablation_icache_prefetch(benchmark, artifact):
    """Disabling the next-line prefetcher must increase I$ stalls on a
    large-code-footprint workload."""
    trace = build_trace("500.perlbench_r")

    def run_pair():
        on = _BoomCore(LARGE_BOOM).run(trace)
        off_config = replace(LARGE_BOOM, name="LargeBOOM-nopf",
                             icache_prefetch=False)
        off = _BoomCore(off_config).run(trace)
        return on, off

    on, off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    on_tma = compute_tma(on)
    off_tma = compute_tma(off)
    artifact("ablation_icache_prefetch",
             "Ablation — I$ next-line prefetch (500.perlbench_r)\n"
             f"  prefetch on : cycles={on.cycles} "
             f"frontend={100 * on_tma.level1['frontend']:.2f}% "
             f"l1i_misses={on.l1i_stats.misses}\n"
             f"  prefetch off: cycles={off.cycles} "
             f"frontend={100 * off_tma.level1['frontend']:.2f}% "
             f"l1i_misses={off.l1i_stats.misses}")
    assert off.l1i_stats.misses > on.l1i_stats.misses
    assert off.cycles > on.cycles
    assert off_tma.level1["frontend"] > on_tma.level1["frontend"]


def test_ablation_dram_bandwidth(benchmark, artifact):
    """memcpy's Memory Bound must track the DRAM block gap."""
    trace = build_trace("memcpy")

    def run_gaps():
        rows = {}
        for gap in (0, 8, 16, 32):
            memory = MemorySystem.build(dram_block_gap=gap)
            core = _BoomCore(LARGE_BOOM, memory=memory)
            result = core.run(trace)
            rows[gap] = (result.cycles,
                         compute_tma(result).level2["mem_bound"])
        return rows

    rows = benchmark.pedantic(run_gaps, rounds=1, iterations=1)
    lines = ["Ablation — DRAM block gap vs memcpy Memory Bound"]
    for gap, (cycles, mem_bound) in rows.items():
        lines.append(f"  gap={gap:>2d} cycles: cycles={cycles} "
                     f"MemBound={100 * mem_bound:.2f}%")
    artifact("ablation_dram_bandwidth", "\n".join(lines))

    cycles = [rows[gap][0] for gap in (0, 8, 16, 32)]
    assert cycles == sorted(cycles)          # less bandwidth -> slower
    assert rows[32][1] > rows[0][1]          # and more Memory Bound


def test_ablation_data_prefetcher(benchmark, artifact):
    """A stride prefetcher must help strided streams (vvadd) and be
    inert on the untrainable pointer chase (mcf) — and TMA must show
    where the cycles went."""
    pf_config = replace(LARGE_BOOM, name="LargeBOOM-dpf",
                        dcache_prefetch=True)

    def run_pairs():
        rows = {}
        for name in ("vvadd", "505.mcf_r"):
            trace = build_trace(name)
            base = _BoomCore(LARGE_BOOM).run(trace)
            core = _BoomCore(pf_config)
            with_pf = core.run(trace)
            rows[name] = (base, with_pf, core.dprefetcher.stats)
        return rows

    rows = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    lines = ["Ablation — stride D$ prefetcher (intro's Memory-Bound "
             "remedy)"]
    for name, (base, with_pf, stats) in rows.items():
        base_tma = compute_tma(base)
        pf_tma = compute_tma(with_pf)
        speedup = base.cycles / with_pf.cycles - 1
        lines.append(
            f"  {name:<12s} cycles {base.cycles} -> {with_pf.cycles} "
            f"({speedup:+.1%}); MemBound "
            f"{100 * base_tma.level2['mem_bound']:.1f}% -> "
            f"{100 * pf_tma.level2['mem_bound']:.1f}%; "
            f"issued={stats.issued} useless={stats.useless}")
    artifact("ablation_data_prefetcher", "\n".join(lines))

    vvadd_base, vvadd_pf, vvadd_stats = rows["vvadd"]
    assert vvadd_pf.cycles < vvadd_base.cycles
    assert vvadd_stats.issued > 0
    mcf_base, mcf_pf, mcf_stats = rows["505.mcf_r"]
    assert mcf_pf.cycles <= mcf_base.cycles * 1.02
    assert mcf_stats.issued < vvadd_stats.issued
