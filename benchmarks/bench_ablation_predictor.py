"""Ablation: direction-predictor sensitivity of the Bad Speculation class.

The paper's ecosystem argument includes branch-predictor research (it
cites COBRA for predictor composition); a reproduction-level question is
how sensitive the TMA breakdown is to the frontend predictor.  This
bench swaps BOOM's direction predictor (TAGE / gshare / bimodal) and
re-runs a basket of workloads: TAGE must win on history-correlated code
(CoreMark's state machine, towers' recursion), and the Bad Speculation
class must track the mispredict counts — i.e. TMA correctly attributes
what the predictor change did.
"""

from dataclasses import replace

import pytest

from repro.core import compute_tma
from repro.cores import LARGE_BOOM
from repro.cores.boom import BoomCore
from repro.uarch.branch import DIRECTION_PREDICTORS
from repro.workloads import build_trace

BASKET = ("coremark", "mergesort", "towers", "rsort", "qsort")


@pytest.fixture(scope="module")
def predictor_grid():
    grid = {}
    for kind in DIRECTION_PREDICTORS:
        config = replace(LARGE_BOOM, name=f"LargeBOOM-{kind}",
                         branch_predictor=kind)
        for name in BASKET:
            trace = build_trace(name)
            grid[(kind, name)] = BoomCore(config).run(trace)
    return grid


def test_predictor_sensitivity_table(benchmark, predictor_grid, artifact):
    def summarize():
        rows = {}
        for kind in DIRECTION_PREDICTORS:
            rows[kind] = {
                name: (predictor_grid[(kind, name)]
                       .predictor_stats.direction_mispredicts,
                       compute_tma(predictor_grid[(kind, name)])
                       .level1["bad_speculation"])
                for name in BASKET}
        return rows

    rows = benchmark(summarize)
    lines = ["Ablation — BOOM direction predictor vs Bad Speculation",
             f"{'workload':<12s}"
             + "".join(f"{k + ' (mr/BS%)':>22s}"
                       for k in DIRECTION_PREDICTORS)]
    for name in BASKET:
        cells = []
        for kind in DIRECTION_PREDICTORS:
            mispredicts, bad_spec = rows[kind][name]
            cells.append(f"{mispredicts:>12d}/{100 * bad_spec:7.2f}%")
        lines.append(f"{name:<12.12s}" + "".join(cells))
    artifact("ablation_predictor_sensitivity", "\n".join(lines))

    # TAGE dominates on history-correlated code...
    for name in ("coremark", "towers"):
        tage_mr = rows["tage"][name][0]
        assert tage_mr <= rows["gshare"][name][0]
        assert tage_mr <= rows["bimodal"][name][0]
    # ...and wins the basket in total cycles.
    def total_cycles(kind):
        return sum(predictor_grid[(kind, name)].cycles for name in BASKET)
    assert total_cycles("tage") <= total_cycles("gshare")
    assert total_cycles("tage") <= total_cycles("bimodal")


def test_tma_tracks_predictor_quality(predictor_grid):
    """More mispredicts must surface as more Bad Speculation — the
    fidelity property the case studies rely on."""
    for name in BASKET:
        points = []
        for kind in DIRECTION_PREDICTORS:
            result = predictor_grid[(kind, name)]
            points.append((
                result.predictor_stats.direction_mispredicts,
                compute_tma(result).level1["bad_speculation"],
            ))
        points.sort()
        mispredicts = [p[0] for p in points]
        bad_spec = [p[1] for p in points]
        # When mispredicts differ substantially, BadSpec must not move
        # the other way.
        if mispredicts[-1] > 1.5 * (mispredicts[0] + 10):
            assert bad_spec[-1] > bad_spec[0]
