"""Ablation: time-multiplexed counter sampling accuracy.

Proprietary PMUs multiplex event sets through scarce counters and scale
the sampled counts back up, accepting non-determinism (§I).  With a
deterministic simulator the resulting error is exactly measurable: this
bench sweeps the rotation interval and compares sampled estimates with
exact counts from the same run.

Expected shape: smooth, dense events (uops_retired) extrapolate well at
any interval; bursty events (fetch_bubbles, recovering) degrade badly as
the time slice grows — the reason Icicle's multi-event counters beat
multiplexing for TMA.
"""

import pytest

from repro.cores import LARGE_BOOM
from repro.pmu import measure_sampled

GROUPS = [["uops_issued", "uops_retired"],
          ["fetch_bubbles", "recovering"],
          ["dcache_blocked", "icache_blocked"]]

INTERVALS = (50, 200, 1000, 4000)


@pytest.fixture(scope="module")
def sampling_sweep():
    sweep = {}
    for interval in INTERVALS:
        sweep[interval] = measure_sampled(
            "qsort", LARGE_BOOM, GROUPS, interval=interval)
    return sweep


def test_sampling_error_by_interval(benchmark, sampling_sweep, artifact):
    def summarize():
        rows = {}
        for interval, comparisons in sampling_sweep.items():
            rows[interval] = {c.event: c.relative_error
                              for c in comparisons}
        return rows

    rows = benchmark(summarize)
    events = [c.event for c in sampling_sweep[INTERVALS[0]]]
    lines = ["Ablation — multiplexed-sampling relative error vs exact "
             "(qsort @ LargeBOOMV3, 3 groups)",
             f"{'event':<16s}" + "".join(f"@{i:<7d}" for i in INTERVALS)]
    for event in events:
        cells = "".join(f"{100 * rows[i][event]:+7.1f}%"
                        for i in INTERVALS)
        lines.append(f"{event:<16s}{cells}")
    artifact("ablation_sampling_error", "\n".join(lines))

    # Dense retirement extrapolates within a few percent while the
    # slices still cycle many times per phase.
    for interval in INTERVALS[:-1]:
        assert abs(rows[interval]["uops_retired"]) < 0.10
    # Bursty events are substantially worse than dense ones at the
    # coarsest interval (why multiplexing is a poor fit for TMA events).
    coarse = rows[INTERVALS[-1]]
    burst_err = max(abs(coarse["fetch_bubbles"]),
                    abs(coarse["icache_blocked"]))
    assert burst_err > 2 * abs(coarse["uops_retired"])


def test_sampling_coverage_accounts_for_all_cycles(sampling_sweep):
    for comparisons in sampling_sweep.values():
        for comparison in comparisons:
            assert 0.0 < comparison.coverage < 1.0
    # Three equal groups -> each sees roughly a third of the run.
    for comparison in sampling_sweep[50]:
        assert comparison.coverage == pytest.approx(1 / 3, abs=0.05)
