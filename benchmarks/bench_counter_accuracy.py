"""Counter-architecture accuracy (§IV-B example + artifact comparison).

The artifact appendix compares AddWires counter values against
DistributedCounters (the latter needing x2^N post-processing).  This
bench reproduces that comparison on real core runs and re-derives the
§IV-B worst-case bound: for the smallest benchmark's fetch-bubble count
(paper: 929), the distributed undercount stays within ~1.28%.
"""

import pytest

from repro.cores import BoomCore, LARGE_BOOM
from repro.pmu import (AddWiresCounterBank, ClassicOrCounter,
                       DistributedCounterBank, ScalarCounterBank,
                       new_events_for_core)
from repro.workloads import build_trace

EVENTS = [event.name for event in new_events_for_core("boom")]


@pytest.fixture(scope="module")
def counter_banks():
    """One core run observed by all architectures simultaneously."""
    trace = build_trace("median", scale=0.5)
    core = BoomCore(LARGE_BOOM)
    scalar = ScalarCounterBank("boom", EVENTS)
    adders = AddWiresCounterBank("boom", EVENTS)
    distributed = DistributedCounterBank("boom", EVENTS)
    classic = ClassicOrCounter("boom", ["fetch_bubbles"])
    for bank in (scalar, adders, distributed, classic):
        core.add_observer(bank)
    core.run(trace)
    distributed.drain()
    return scalar, adders, distributed, classic


def test_counter_value_comparison(benchmark, counter_banks, artifact):
    scalar, adders, distributed, classic = counter_banks

    def compare():
        rows = []
        for event in EVENTS:
            exact = scalar.read_event(event)
            rows.append((event, exact, adders.read_event(event),
                         distributed.read_event(event),
                         distributed.undercount(event)))
        return rows

    rows = benchmark(compare)
    lines = ["Counter-architecture comparison (median @ LargeBOOMV3)",
             f"{'event':<16s}{'scalar':>9s}{'adders':>9s}"
             f"{'distrib':>9s}{'undercnt':>9s}"]
    for event, exact, add, dist, under in rows:
        lines.append(f"{event:<16s}{exact:>9d}{add:>9d}{dist:>9d}"
                     f"{under:>9d}")
    lines.append(f"classic OR counter for fetch_bubbles: "
                 f"{classic.read()} (undercounts concurrent lanes)")
    artifact("counter_architecture_comparison", "\n".join(lines))

    for event, exact, add, dist, under in rows:
        assert add == exact                      # AddWires is exact
        assert dist <= exact                     # distributed never over
        assert under <= distributed.undercount_bound(event)
    bubbles = scalar.read_event("fetch_bubbles")
    if bubbles:
        assert classic.read() <= bubbles


def test_undercount_error_bound_paper_example(counter_banks, artifact):
    """§IV-B: worst case 12/(929+12) = 1.28% for the smallest bench."""
    scalar, _, distributed, _ = counter_banks
    lines = ["Distributed-counter relative undercount after drain:"]
    for event in EVENTS:
        exact = scalar.read_event(event)
        if exact < 100:
            continue
        error = distributed.undercount(event) / exact
        bound = distributed.undercount_bound(event) / exact
        lines.append(f"  {event:<16s}{100 * error:7.3f}% "
                     f"(bound {100 * bound:.3f}%)")
        if exact >= 929:
            assert error <= 12 / (929 + 12) + 0.005
    artifact("counter_undercount_bound", "\n".join(lines))
