"""Fig. 3: cycle-accurate frontend trace of mergesort on Rocket.

Regenerates the motivating example: (a) a window around an I-cache miss
where I$-blocked tracks the stall, and (b) a later window where fetch
bubbles appear with *no* I$ activity — the stall the pre-Icicle events
cannot see.  Also re-verifies the FetchBubble definition
(!Recovering & !IBuf-valid & IBuf-ready) against the raw handshake taps.
"""

import pytest

from repro.cores import ROCKET, RocketCore
from repro.trace import (DmaTraceReader, TraceBridge, capture_trace,
                         check_fetch_bubble_formula, find_first,
                         render_raster, rocket_tma_bundle)
from repro.workloads import build_trace

FIG3_SIGNALS = ["icache_miss", "icache_blocked", "ibuf_valid",
                "ibuf_ready", "recovering", "fetch_bubbles"]


@pytest.fixture(scope="module")
def mergesort_signals():
    trace = build_trace("mergesort")
    tracer = capture_trace(RocketCore(ROCKET), trace, rocket_tma_bundle())
    blob = TraceBridge(tracer.bundle).encode(tracer)
    return DmaTraceReader(blob).signals()


@pytest.fixture(scope="module")
def median_signals():
    # In this model mergesort's frontend hiccups all cluster around its
    # I$ refills; the dense taken-branch tree of `median` reproduces the
    # paper's warm-I$ fetch bubbles instead (substitution noted in
    # EXPERIMENTS.md).
    trace = build_trace("median")
    tracer = capture_trace(RocketCore(ROCKET), trace, rocket_tma_bundle())
    blob = TraceBridge(tracer.bundle).encode(tracer)
    return DmaTraceReader(blob).signals()


def test_fig3a_icache_miss_window(benchmark, mergesort_signals, artifact):
    signals = mergesort_signals
    miss_cycle = find_first(signals, "icache_miss")
    assert miss_cycle is not None
    raster = benchmark(lambda: render_raster(
        signals, FIG3_SIGNALS, max(0, miss_cycle - 4), miss_cycle + 76))
    artifact("fig3a_mergesort_icache_window",
             "Fig. 3a — mergesort frontend trace around an I$ miss\n"
             + raster)
    # The miss is followed by a run of I$-blocked cycles (paper: ~40).
    blocked = signals["icache_blocked"]
    run = 0
    for cycle in range(miss_cycle, min(miss_cycle + 200, len(blocked))):
        if blocked[cycle]:
            run += 1
    assert run >= 10


def test_fig3b_bubbles_without_icache_activity(benchmark,
                                               median_signals,
                                               artifact):
    signals = median_signals
    bubbles = signals["fetch_bubbles"]
    miss = signals["icache_miss"]
    blocked = signals["icache_blocked"]
    recovering = signals["recovering"]

    def find_quiet_bubble():
        # A fetch bubble with no I$ activity within +/- 50 cycles: the
        # §III insufficiency (I$ events cannot explain this stall).
        n = len(bubbles)
        for cycle in range(500, n):
            if not bubbles[cycle]:
                continue
            lo, hi = max(0, cycle - 50), min(n, cycle + 50)
            if not any(miss[c] or blocked[c] for c in range(lo, hi)):
                return cycle
        return None

    quiet = benchmark(find_quiet_bubble)
    assert quiet is not None, \
        "expected frontend stalls unexplained by I$ events"
    raster = render_raster(signals, FIG3_SIGNALS, max(0, quiet - 20),
                           quiet + 20)
    artifact("fig3b_quiet_bubbles",
             "Fig. 3b — fetch bubbles with a warm I-cache "
             "(no I$-miss in sight; `median` on Rocket)\n" + raster)
    assert not recovering[quiet]


def test_fig3_fetch_bubble_definition_validated(benchmark,
                                                mergesort_signals,
                                                artifact):
    mismatches = benchmark(check_fetch_bubble_formula, mergesort_signals)
    cycles = len(mergesort_signals["fetch_bubbles"])
    artifact("fig3_formula_validation",
             "FetchBubble = !Recovering & (!IBuf-valid & IBuf-ready): "
             f"{mismatches} mismatching cycles out of {cycles}")
    assert mismatches <= max(3, cycles // 1000)
