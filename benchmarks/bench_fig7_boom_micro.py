"""Fig. 7k/7l: BOOM (LargeBOOMV3) TMA for the microbenchmarks.

Paper anchors: Dhrystone and CoreMark reach IPCs in the range of 2 on
BOOM, and memcpy again stands out as Memory Bound.
"""

import pytest

from repro.core import compute_tma, render_breakdown_table
from repro.cores import LARGE_BOOM
from repro.tools import micro_suite, run_core


@pytest.fixture(scope="module")
def boom_micro_results():
    return {name: run_core(name, LARGE_BOOM) for name in micro_suite()}


def test_fig7k_top_level(benchmark, boom_micro_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in boom_micro_results.values()])
    table = render_breakdown_table(
        results, title="Fig. 7k — BOOM top-level TMA (microbenchmarks)")
    artifact("fig7k_boom_micro_top_level", table)

    by_name = {r.workload: r for r in results}
    # "Dhrystone and Coremark have high IPCs, on BOOM in the range of 2"
    assert by_name["dhrystone"].ipc > 1.8
    assert by_name["coremark"].ipc > 1.8


def test_fig7l_backend_drilldown(benchmark, boom_micro_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in boom_micro_results.values()])
    table = render_breakdown_table(
        results, classes=["backend", "mem_bound", "core_bound"],
        title="Fig. 7l — BOOM Backend drill-down (microbenchmarks)")
    artifact("fig7l_boom_micro_backend", table)

    by_name = {r.workload: r for r in results}
    # "Memcpy again stands out for being memory bound."
    memcpy = by_name["memcpy"]
    assert memcpy.level2["mem_bound"] > 0.3
    assert memcpy.level2["mem_bound"] > memcpy.level2["core_bound"]
