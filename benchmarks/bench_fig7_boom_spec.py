"""Fig. 7g-7j: BOOM (LargeBOOMV3) TMA for SPEC CPU2017 intrate proxies.

Subfigure g is the top level; h/i/j drill into Frontend, Bad
Speculation, and Backend.  Paper anchors: 525.x264_r stands out with a
high retire rate matching its IPC; 505.mcf_r and 523.xalancbmk_r are
almost 80% Backend Bound; Frontend remains minimal across the suite;
Machine Clears are a small part of Bad Speculation.
"""

import pytest

from repro.core import compute_tma, render_breakdown_table
from repro.cores import LARGE_BOOM
from repro.tools import run_core, spec_suite


@pytest.fixture(scope="module")
def spec_results():
    return {name: run_core(name, LARGE_BOOM) for name in spec_suite()}


def test_fig7g_top_level(benchmark, spec_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in spec_results.values()])
    table = render_breakdown_table(
        results,
        title="Fig. 7g — BOOM top-level TMA (SPEC CPU2017 intrate proxies)")
    artifact("fig7g_boom_spec_top_level", table)

    by_name = {r.workload: r for r in results}
    # mcf / xalancbmk: the most Backend-bound of the suite (~80%+).
    for name in ("505.mcf_r", "523.xalancbmk_r"):
        assert by_name[name].level1["backend"] > 0.6
    # x264: high retiring among the SPEC proxies.
    x264 = by_name["525.x264_r"]
    others = [r.level1["retiring"] for r in results
              if r.workload not in ("525.x264_r", "548.exchange2_r")]
    assert x264.level1["retiring"] > max(others) * 0.8
    # Frontend remains minimal across all benchmarks.
    assert all(r.level1["frontend"] < 0.2 for r in results)


def test_fig7h_frontend_level2(benchmark, spec_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in spec_results.values()])
    table = render_breakdown_table(
        results, classes=["frontend", "fetch_latency", "pc_resolution"],
        title="Fig. 7h — BOOM Frontend drill-down (SPEC)")
    artifact("fig7h_boom_spec_frontend", table)
    by_name = {r.workload: r for r in results}
    assert max(r.level1["frontend"] for r in results) \
        == by_name["500.perlbench_r"].level1["frontend"]


def test_fig7i_badspec_level2(benchmark, spec_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in spec_results.values()])
    table = render_breakdown_table(
        results,
        classes=["bad_speculation", "branch_mispredicts",
                 "machine_clears", "recovery_bubbles"],
        title="Fig. 7i — BOOM Bad-Speculation drill-down (SPEC)")
    artifact("fig7i_boom_spec_badspec", table)
    # Machine clears are a small portion of Bad Speculation overall.
    total_bad_spec = sum(r.level1["bad_speculation"] for r in results)
    total_clears = sum(r.level2["machine_clears"] for r in results)
    assert total_clears < 0.2 * max(total_bad_spec, 1e-9)


def test_fig7j_backend_level2(benchmark, spec_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in spec_results.values()])
    table = render_breakdown_table(
        results, classes=["backend", "mem_bound", "core_bound"],
        title="Fig. 7j — BOOM Backend drill-down (SPEC)")
    artifact("fig7j_boom_spec_backend", table)
    by_name = {r.workload: r for r in results}
    assert by_name["505.mcf_r"].level2["mem_bound"] \
        > by_name["548.exchange2_r"].level2["mem_bound"]
