"""Fig. 7c/7d/7e/7f/7m/7n: the three case studies on both cores.

- CS1 (7c): 531.deepsjeng_r on Rocket with 16 vs 32 KiB L1D — the paper
  reports a ~7% slowdown with Backend rising by ~12 points.
- CS2 (7d/7n): branch inversion — always-mispredicted vs always-correct
  on Rocket, and the *opposite* effect on BOOM (base ~0% Bad
  Speculation, inverted slower, ~3% in the paper).
- CS3 (7e/7f/7m): CoreMark instruction scheduling — ~4% on Rocket fully
  explained by Core Bound, but only ~0.3% on BOOM.
"""

import pytest

from repro.core import compute_tma, render_comparison
from repro.cores import LARGE_BOOM, ROCKET
from repro.tools import rocket_with_l1d, run_core


@pytest.fixture(scope="module")
def cs_results():
    return {
        "deepsjeng32": run_core("531.deepsjeng_r", rocket_with_l1d(32)),
        "deepsjeng16": run_core("531.deepsjeng_r", rocket_with_l1d(16)),
        "rocket_brmiss": run_core("brmiss", ROCKET),
        "rocket_brmiss_inv": run_core("brmiss_inv", ROCKET),
        "boom_brmiss": run_core("brmiss", LARGE_BOOM),
        "boom_brmiss_inv": run_core("brmiss_inv", LARGE_BOOM),
        "rocket_cm": run_core("coremark", ROCKET),
        "rocket_cm_sched": run_core("coremark_sched", ROCKET),
        "boom_cm": run_core("coremark", LARGE_BOOM),
        "boom_cm_sched": run_core("coremark_sched", LARGE_BOOM),
    }


def test_fig7c_rocket_cs1_l1d_size(benchmark, cs_results, artifact):
    big, small = benchmark(lambda: (
        compute_tma(cs_results["deepsjeng32"]),
        compute_tma(cs_results["deepsjeng16"])))
    slowdown = small.cycles / big.cycles - 1
    table = render_comparison(big, small, "32KiB-L1D", "16KiB-L1D")
    artifact("fig7c_rocket_cs1_cache_size",
             "Fig. 7c — Rocket CS1: 531.deepsjeng_r L1D size\n"
             f"{table}\nslowdown with 16 KiB: {slowdown:.1%} "
             "(paper: ~7%, Backend +~12 points)")
    assert slowdown > 0.02
    assert small.level1["backend"] > big.level1["backend"] + 0.02


def test_fig7d_rocket_cs2_branch_inversion(benchmark, cs_results,
                                           artifact):
    base, inverted = benchmark(lambda: (
        compute_tma(cs_results["rocket_brmiss"]),
        compute_tma(cs_results["rocket_brmiss_inv"])))
    table = render_comparison(base, inverted, "brmiss", "brmiss_inv")
    artifact("fig7d_rocket_cs2_branch_inversion",
             "Fig. 7d — Rocket CS2: branch inversion\n"
             f"{table}\n(paper: Retiring 20%->33%, BadSpec 17%->6%)")
    assert inverted.level1["retiring"] > base.level1["retiring"] + 0.1
    assert base.level1["bad_speculation"] \
        > inverted.level1["bad_speculation"] + 0.1


def test_fig7e_7f_rocket_cs3_scheduling(benchmark, cs_results, artifact):
    base, sched = benchmark(lambda: (
        compute_tma(cs_results["rocket_cm"]),
        compute_tma(cs_results["rocket_cm_sched"])))
    gain = base.cycles / sched.cycles - 1
    table = render_comparison(
        base, sched, "-O1", "-O1+sched",
        classes=["retiring", "bad_speculation", "frontend", "backend",
                 "core_bound", "mem_bound"])
    artifact("fig7e_7f_rocket_cs3_coremark_scheduling",
             "Fig. 7e/7f — Rocket CS3: CoreMark instruction scheduling\n"
             f"{table}\nIPC/runtime gain: {gain:.2%} (paper: ~4%, "
             "fully explained by Backend / Core Bound)")
    assert gain > 0.02
    assert base.level2["core_bound"] > sched.level2["core_bound"]


def test_fig7m_boom_cs_scheduling(benchmark, cs_results, artifact):
    base, sched = benchmark(lambda: (
        compute_tma(cs_results["boom_cm"]),
        compute_tma(cs_results["boom_cm_sched"])))
    gain = base.cycles / sched.cycles - 1
    artifact("fig7m_boom_cs_coremark_scheduling",
             "Fig. 7m — BOOM CS: CoreMark instruction scheduling\n"
             f"cycles {base.cycles} -> {sched.cycles}; gain {gain:.3%} "
             "(paper: ~0.3%; scheduling matters little on OoO)")
    assert abs(gain) < 0.03


def test_fig7n_boom_cs_branch_inversion(benchmark, cs_results, artifact):
    base, inverted = benchmark(lambda: (
        compute_tma(cs_results["boom_brmiss"]),
        compute_tma(cs_results["boom_brmiss_inv"])))
    table = render_comparison(base, inverted, "brmiss", "brmiss_inv")
    slowdown = inverted.cycles / base.cycles - 1
    artifact("fig7n_boom_cs_branch_inversion",
             "Fig. 7n — BOOM CS: branch inversion (opposite effect)\n"
             f"{table}\ninverted slowdown: {slowdown:.1%} (paper: ~3%; "
             "base case has ~0% Bad Speculation)")
    assert base.level1["bad_speculation"] < 0.02
    assert inverted.cycles > base.cycles
    assert inverted.level1["bad_speculation"] \
        > base.level1["bad_speculation"]
