"""Fig. 7a/7b: Rocket TMA for the microbenchmark suite.

Regenerates the top-level breakdown (subfigure a) and the Backend
drill-down (subfigure b).  Paper anchors: qsort's lost slots are
dominated by Bad Speculation, rsort approaches ideal IPC, and memcpy is
the Backend standout with roughly half of it Memory Bound.
"""

import pytest

from repro.core import compute_tma, render_breakdown_table
from repro.cores import ROCKET
from repro.tools import micro_suite, run_core


@pytest.fixture(scope="module")
def rocket_results():
    return {name: run_core(name, ROCKET) for name in micro_suite()}


def test_fig7a_top_level(benchmark, rocket_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in rocket_results.values()])
    table = render_breakdown_table(
        results, title="Fig. 7a — Rocket top-level TMA (microbenchmarks)")
    artifact("fig7a_rocket_top_level", table)

    by_name = {r.workload: r for r in results}
    # qsort: Bad Speculation dominates its lost slots vs. rsort.
    assert by_name["qsort"].level1["bad_speculation"] \
        > 4 * by_name["rsort"].level1["bad_speculation"]
    # rsort: near-ideal for Rocket (well above the suite median IPC).
    assert by_name["rsort"].ipc > 0.6


def test_fig7b_backend_drilldown(benchmark, rocket_results, artifact):
    results = benchmark(
        lambda: [compute_tma(r) for r in rocket_results.values()])
    table = render_breakdown_table(
        results, classes=["backend", "mem_bound", "core_bound"],
        title="Fig. 7b — Rocket Backend drill-down")
    artifact("fig7b_rocket_backend", table)

    by_name = {r.workload: r for r in results}
    memcpy = by_name["memcpy"]
    # memcpy: the Backend standout, roughly half of it Memory Bound.
    assert memcpy.level1["backend"] == max(
        r.level1["backend"] for r in results if r.workload in
        ("memcpy", "coremark", "dhrystone", "mergesort", "qsort",
         "rsort", "towers", "median", "multiply"))
    assert memcpy.level2["mem_bound"] > 0.3 * memcpy.level1["backend"]
