"""Fig. 8a/8b: temporal-TMA examples.

8a — a trace excerpt where an I-cache refill and a branch-mispredict
Recovering window overlap (the slots counter values cannot attribute).
8b — the CDF of Recovering sequence lengths: almost every sequence is
exactly four cycles, with a long tail (the paper traces its longest
sequence to a fence immediately after a mispredict).
"""

import pytest

from repro.cores import BoomCore, LARGE_BOOM
from repro.trace import (boom_tma_bundle, capture_trace, length_cdf,
                         modal_length, recovery_sequences, render_raster)
from repro.workloads import build_trace


@pytest.fixture(scope="module")
def suite_recovering():
    bundle = boom_tma_bundle(LARGE_BOOM.decode_width,
                             LARGE_BOOM.issue_width)
    per_workload = {}
    for name in ("qsort", "541.leela_r", "towers", "mergesort",
                 "500.perlbench_r"):
        trace = build_trace(name)
        tracer = capture_trace(BoomCore(LARGE_BOOM), trace, bundle)
        per_workload[name] = {field.name: tracer.signal(field.name)
                              for field in bundle.fields}
    return per_workload


def test_fig8a_overlap_excerpt(benchmark, suite_recovering, artifact):
    signals = suite_recovering["mergesort"]

    def find_overlap_window():
        recovering = signals["recovering"]
        icache = signals["icache_miss"]
        blocked = signals["icache_blocked"]
        for cycle in range(len(recovering)):
            if recovering[cycle]:
                lo = max(0, cycle - 30)
                hi = min(len(recovering), cycle + 30)
                if any(icache[c] or blocked[c] for c in range(lo, hi)):
                    return cycle
        return None

    cycle = benchmark(find_overlap_window)
    if cycle is None:
        pytest.skip("no I$/Recovering overlap in this trace")
    raster = render_raster(
        signals, ["icache_miss", "icache_blocked", "recovering",
                  "fetch_bubbles", "br_mispredict"],
        max(0, cycle - 25), cycle + 25)
    artifact("fig8a_overlap_excerpt",
             "Fig. 8a — I$ refill overlapping a Recovering window\n"
             + raster)


def test_fig8b_recovery_cdf(benchmark, suite_recovering, artifact):
    def collect_lengths():
        lengths = []
        for signals in suite_recovering.values():
            for sequence in recovery_sequences(signals["recovering"]):
                lengths.append(sequence.length)
        return lengths

    lengths = benchmark(collect_lengths)
    assert lengths
    cdf = length_cdf(lengths)
    mode = modal_length(lengths)
    lines = ["Fig. 8b — CDF of Recovering sequence lengths "
             f"({len(lengths)} sequences across 5 benchmarks)"]
    for length, fraction in cdf[:12]:
        bar = "#" * int(40 * fraction)
        lines.append(f"  len={length:>3d}  {100 * fraction:6.2f}%  {bar}")
    if cdf[-1][0] > cdf[min(11, len(cdf) - 1)][0]:
        lines.append(f"  ... tail up to len={cdf[-1][0]}")
    lines.append(f"modal length: {mode} cycles "
                 "(paper: almost every sequence is exactly 4)")
    artifact("fig8b_recovery_cdf", "\n".join(lines))

    assert mode == 4
    at_mode = dict(cdf).get(4, 0.0)
    assert at_mode > 0.5          # the bulk of sequences are <= 4 cycles
    assert max(lengths) > 4       # and a long tail exists
