"""Fig. 9a/9b: post-placement physical-design metrics.

9a — power overhead per BOOM size x counter architecture (the paper's
worst case: +4.15% power, +1.54% area, +9.93% wirelength; all designs
close timing at 200 MHz).
9b — normalized longest combinational path crossing the CSR file: the
adders implementation matches or beats distributed counters at the
small/medium sizes, but its sequential chain loses as the core widens.
"""

import pytest

from repro.cores import (ALL_BOOM_CONFIGS, GIGA_BOOM, MEDIUM_BOOM,
                         MEGA_BOOM, SMALL_BOOM)
from repro.vlsi import (ARCHITECTURES, single_lane_wire_reduction, sweep)
from repro.vlsi.flow import (PAPER_AREA_CEILING, PAPER_POWER_CEILING,
                             PAPER_WIRELENGTH_CEILING)


@pytest.fixture(scope="module")
def grid():
    return sweep()


def test_fig9a_power_area_wirelength(benchmark, artifact):
    grid = benchmark(sweep)
    lines = ["Fig. 9a — post-placement overheads per size x architecture",
             f"{'config':<14s}{'arch':<13s}{'power%':>8s}{'area%':>8s}"
             f"{'wire%':>8s}{'200MHz':>8s}"]
    for name, per_arch in grid.items():
        for arch, result in per_arch.items():
            if arch == "baseline":
                continue
            lines.append(
                f"{name:<14s}{arch:<13s}"
                f"{100 * result.power_overhead:8.2f}"
                f"{100 * result.area_overhead:8.2f}"
                f"{100 * result.wirelength_overhead:8.2f}"
                f"{str(result.passes_200mhz):>8s}")
    lines.append("(paper ceilings: +4.15% power, +1.54% area, "
                 "+9.93% wirelength; all pass 200 MHz)")
    artifact("fig9a_overheads", "\n".join(lines))

    power = max(r.power_overhead for a in grid.values()
                for r in a.values())
    area = max(r.area_overhead for a in grid.values() for r in a.values())
    wires = max(r.wirelength_overhead for a in grid.values()
                for r in a.values())
    assert power <= PAPER_POWER_CEILING + 1e-9
    assert area <= PAPER_AREA_CEILING + 1e-9
    assert wires <= PAPER_WIRELENGTH_CEILING + 1e-9
    assert all(r.passes_200mhz for a in grid.values() for r in a.values())


def test_fig9b_longest_csr_path(benchmark, grid, artifact):
    def normalized_paths():
        rows = {}
        for config in ALL_BOOM_CONFIGS:
            per_arch = grid[config.name]
            base = per_arch["baseline"]
            rows[config.name] = {
                arch: per_arch[arch].normalized_csr_path(base)
                for arch in ARCHITECTURES}
        return rows

    rows = benchmark(normalized_paths)
    lines = ["Fig. 9b — normalized longest CSR-crossing path",
             f"{'config':<14s}" + "".join(f"{a:>13s}"
                                          for a in ARCHITECTURES)]
    for name, per_arch in rows.items():
        lines.append(f"{name:<14s}" + "".join(
            f"{per_arch[a]:13.3f}" for a in ARCHITECTURES))
    lines.append("(paper: adders <= distributed at small/medium; the "
                 "adder chain scales worse as width grows)")
    artifact("fig9b_longest_csr_path", "\n".join(lines))

    for config in (SMALL_BOOM, MEDIUM_BOOM):
        assert rows[config.name]["adders"] \
            <= rows[config.name]["distributed"] + 1e-9
    for config in (MEGA_BOOM, GIGA_BOOM):
        assert rows[config.name]["distributed"] \
            < rows[config.name]["adders"]


def test_fig9_single_lane_wire_study(benchmark, artifact):
    reduction = benchmark(single_lane_wire_reduction, MEGA_BOOM)
    artifact("fig9_single_lane_wire",
             f"§V-A — longest fetch-bubble PMU wire shrinks by "
             f"{100 * reduction:.2f}% when only one lane is monitored "
             "(paper: 11.39%)")
    assert 0.03 < reduction < 0.35
