"""Extension bench: third-level TMA + TLB accounting (paper future work).

The paper's conclusion promises third/fourth TMA levels and TLB-aware
classes as future work; this bench exercises the reproduction's
implementation: the Memory-Bound drill-down must separate DRAM-bound
streaming (memcpy) from L1/L2-resident probing (deepsjeng), and the TLB
bound must stay negligible for these small-page-set kernels (the paper's
justification for deferring TLBs).
"""

import pytest

from repro.core import compute_level3
from repro.cores import LARGE_BOOM, ROCKET
from repro.tools import run_core


@pytest.fixture(scope="module")
def level3_results():
    return {
        "memcpy": compute_level3(run_core("memcpy", LARGE_BOOM)),
        "531.deepsjeng_r": compute_level3(
            run_core("531.deepsjeng_r", LARGE_BOOM)),
        "505.mcf_r": compute_level3(run_core("505.mcf_r", LARGE_BOOM)),
        "rocket-coremark": compute_level3(run_core("coremark", ROCKET)),
    }


def test_level3_memory_drilldown(benchmark, level3_results, artifact):
    rendered = benchmark(
        lambda: "\n\n".join(r.render()
                            for r in level3_results.values()))
    artifact("level3_tma_extension",
             "Extension — level-3 TMA (future work of §VII)\n\n"
             + rendered)

    memcpy = level3_results["memcpy"]
    deepsjeng = level3_results["531.deepsjeng_r"]
    mcf = level3_results["505.mcf_r"]
    # Streaming/cold kernels are DRAM-bound at level 3...
    assert memcpy.dram_bound > memcpy.l2_bound
    assert mcf.dram_bound > 0.4
    # ...while the 24 KiB table stays near the core (little DRAM).
    assert deepsjeng.dram_bound < mcf.dram_bound


def test_level3_tlb_bound_negligible(level3_results):
    """These kernels touch few pages: TLB-bound must be tiny, which is
    the paper's rationale for deferring TLB classes."""
    for result in level3_results.values():
        assert result.tlb_bound < 0.05


def test_level3_rocket_core_breakdown(level3_results):
    rocket = level3_results["rocket-coremark"]
    assert rocket.core_breakdown
    # CoreMark on Rocket: load-use + mul/div interlocks carry the
    # Core-Bound share (the CS3 mechanism).
    assert rocket.core_breakdown["load-use"] > 0.01
    assert rocket.core_breakdown["mul/div"] > 0.01
