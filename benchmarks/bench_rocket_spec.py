"""Extension bench: SPEC proxies on Rocket + in-order vs OoO speedups.

Table III runs SPEC on both cores (Rocket with the smaller ``test``
inputs); the paper's Fig. 7 only plots the BOOM side.  This bench fills
in the Rocket table and derives the BOOM-over-Rocket speedup per proxy —
the sanity check that out-of-order speculation pays off most where
Rocket stalls serially (pointer chases) and least where the bottleneck
is pure bandwidth or unpredictable branches.
"""

import pytest

from repro.core import compute_tma, render_breakdown_table
from repro.cores import LARGE_BOOM, ROCKET
from repro.tools import run_core, spec_suite


@pytest.fixture(scope="module")
def spec_on_both():
    rocket = {name: run_core(name, ROCKET, scale=0.5)
              for name in spec_suite()}
    boom = {name: run_core(name, LARGE_BOOM, scale=0.5)
            for name in spec_suite()}
    return rocket, boom


def test_rocket_spec_table(benchmark, spec_on_both, artifact):
    rocket, _ = spec_on_both
    results = benchmark(
        lambda: [compute_tma(result) for result in rocket.values()])
    table = render_breakdown_table(
        results,
        title="Extension — Rocket top-level TMA (SPEC proxies, "
              "test-sized inputs)")
    artifact("rocket_spec_top_level", table)
    by_name = {r.workload: r for r in results}
    # The memory-bound proxies stay memory bound on the in-order core.
    assert by_name["505.mcf_r"].level1["backend"] > 0.6
    assert by_name["505.mcf_r"].level2["mem_bound"] > 0.5


def test_boom_speedup_over_rocket(benchmark, spec_on_both, artifact):
    rocket, boom = spec_on_both

    def speedups():
        rows = {}
        for name in rocket:
            rows[name] = rocket[name].cycles / boom[name].cycles
        return rows

    rows = benchmark(speedups)
    lines = ["Extension — LargeBOOMV3 speedup over Rocket (SPEC proxies)"]
    for name, speedup in sorted(rows.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<18s}{speedup:6.2f}x")
    artifact("rocket_vs_boom_speedup", "\n".join(lines))

    # OoO must help everywhere...
    assert all(speedup > 1.0 for speedup in rows.values())
    # ...most on ILP/MLP-rich compute (exchange2's recursion and mcf's
    # dual pointer chains both beat the bandwidth-limited extremes).
    assert rows["548.exchange2_r"] > rows["557.xz_r"]


def test_memory_bound_workloads_stay_memory_bound_across_cores(
        spec_on_both):
    rocket, boom = spec_on_both
    for name in ("505.mcf_r", "523.xalancbmk_r"):
        rocket_tma = compute_tma(rocket[name])
        boom_tma = compute_tma(boom[name])
        assert rocket_tma.dominant_class() == "backend"
        assert boom_tma.dominant_class() == "backend"
