"""Extension bench: TMA across all five BOOM sizes (Table IV).

The paper shows TMA only for LargeBOOMV3 "for brevity"; the simulator
makes the full Small→Giga sweep cheap.  Expected shapes: compute-bound
kernels scale with machine width while the bandwidth-bound memcpy does
not, and widening the machine shifts memcpy's classification further
toward Memory Bound (the same work, more wasted slots).
"""

import pytest

from repro.core import compute_tma, render_breakdown_table
from repro.cores import ALL_BOOM_CONFIGS
from repro.tools import run_core

WORKLOADS = ("dhrystone", "memcpy", "qsort")


@pytest.fixture(scope="module")
def sweep_results():
    grid = {}
    for config in ALL_BOOM_CONFIGS:
        for name in WORKLOADS:
            grid[(config.name, name)] = run_core(name, config)
    return grid


def test_size_sweep_tables(benchmark, sweep_results, artifact):
    def render():
        blocks = []
        for name in WORKLOADS:
            results = [compute_tma(sweep_results[(c.name, name)])
                       for c in ALL_BOOM_CONFIGS]
            for result, config in zip(results, ALL_BOOM_CONFIGS):
                result.workload = config.name  # row label = size
            blocks.append(render_breakdown_table(
                results, title=f"--- {name} across BOOM sizes ---"))
        return "\n\n".join(blocks)

    table = benchmark(render)
    artifact("size_sweep_tma",
             "Extension — TMA across Table IV BOOM sizes\n" + table)


def test_compute_kernels_scale_with_width(sweep_results):
    ipcs = [sweep_results[(c.name, "dhrystone")].ipc
            for c in ALL_BOOM_CONFIGS]
    # Wider machines retire dhrystone faster (within 5% slack for
    # second-order effects like replacement noise).
    for small, large in zip(ipcs, ipcs[1:]):
        assert large > small * 0.95
    assert ipcs[-1] > 1.5 * ipcs[0]


def test_memcpy_is_bandwidth_limited_not_width_limited(sweep_results):
    small = sweep_results[("SmallBOOMV3", "memcpy")]
    giga = sweep_results[("GigaBOOMV3", "memcpy")]
    # Quadrupling the commit width buys far less than 4x on memcpy.
    assert giga.cycles > small.cycles * 0.5
    # And the wider machine wastes a larger share of slots on memory.
    small_tma = compute_tma(small)
    giga_tma = compute_tma(giga)
    assert giga_tma.level2["mem_bound"] > small_tma.level2["mem_bound"]


def test_wide_machines_pay_more_for_mispredicts(sweep_results):
    small = compute_tma(sweep_results[("SmallBOOMV3", "qsort")])
    giga = compute_tma(sweep_results[("GigaBOOMV3", "qsort")])
    assert giga.level1["bad_speculation"] \
        > small.level1["bad_speculation"]
