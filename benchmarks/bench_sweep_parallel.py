"""Tier-2: parallel sweep engine vs. the serial resilient runner.

Not a paper figure — this bench guards the evaluation *infrastructure*:
the process-pool sweep engine must merge to exactly the serial runner's
results while the fast-path core loop keeps its speedup over the traced
path.  The rendered artifact mirrors what ``repro-tma bench`` writes to
``BENCH_*.json``; the assertions pin the two properties the CI gate
enforces (identical merges, fast path genuinely faster).
"""

import pytest

from repro.cores import ROCKET
from repro.pmu.harness import PerfHarness, make_core
from repro.reliability.runner import ResilientRunner
from repro.tools.bench import _outcome_digest
from repro.tools.parallel import ParallelSweepRunner
from repro.workloads import build_trace

WORKLOADS = ["dhrystone", "median", "qsort", "towers"]
SCALE = 0.5


def _make_runner():
    return ResilientRunner(harness=PerfHarness(core="rocket"),
                           scale=SCALE, use_cache=False)


@pytest.fixture(scope="module")
def serial_report():
    return ParallelSweepRunner(runner=_make_runner(),
                               max_workers=1).run_grid(WORKLOADS, [ROCKET])


def test_parallel_sweep_matches_serial(benchmark, serial_report, artifact):
    parallel = benchmark(
        lambda: ParallelSweepRunner(runner=_make_runner(),
                                    max_workers=4).run_grid(WORKLOADS,
                                                            [ROCKET]))
    assert [_outcome_digest(o) for o in parallel.outcomes] \
        == [_outcome_digest(o) for o in serial_report.outcomes]
    artifact("sweep_parallel_engine", parallel.summary())


def test_serial_sweep_baseline(benchmark):
    report = benchmark(
        lambda: ParallelSweepRunner(runner=_make_runner(),
                                    max_workers=1).run_grid(WORKLOADS,
                                                            [ROCKET]))
    assert all(o.ok for o in report.outcomes)


def test_fastpath_core_speedup(benchmark, artifact):
    """The sweeps lean on the tracerless fast path; keep it fast."""
    traces = {name: build_trace(name, scale=SCALE) for name in WORKLOADS}

    def traced():
        return [make_core(ROCKET).run(traces[n], fast_path=False)
                for n in WORKLOADS]

    def fast():
        return [make_core(ROCKET).run(traces[n], fast_path=True)
                for n in WORKLOADS]

    fast_results = benchmark(fast)
    traced_results = traced()
    for fast_result, traced_result in zip(fast_results, traced_results):
        assert fast_result.events == traced_result.events
        assert fast_result.cycles == traced_result.cycles
        assert fast_result.instret == traced_result.instret
    artifact("sweep_fastpath_equivalence",
             "fast path == traced path on "
             + ", ".join(WORKLOADS) + f" (scale {SCALE})")
