"""Table II: the TMA model itself, exercised on real counter values.

Regenerates the derived metrics and every top-/lower-level class for a
representative run, and times the model evaluation (it must be cheap —
it is meant to run over live counters).
"""

import pytest

from repro.core import BoomTmaModel, TmaInputs, compute_tma
from repro.cores import LARGE_BOOM
from repro.tools import run_core


@pytest.fixture(scope="module")
def qsort_inputs():
    return TmaInputs.from_core_result(run_core("qsort", LARGE_BOOM))


def test_tab2_model_rows(benchmark, qsort_inputs, artifact):
    result = benchmark(BoomTmaModel().compute, qsort_inputs)
    lines = ["Table II — TMA model evaluated on qsort @ LargeBOOMV3",
             "-- derived metrics --"]
    for name, value in result.metrics.items():
        lines.append(f"{name:<12s}{value:14.4f}")
    lines.append("-- top-level --")
    for name, value in result.level1.items():
        lines.append(f"{name:<18s}{100 * value:8.2f}%")
    lines.append("-- lower-level --")
    for name, value in result.level2.items():
        lines.append(f"{name:<18s}{100 * value:8.2f}%")
    artifact("tab2_tma_model", "\n".join(lines))

    assert result.top_level_sum() == pytest.approx(1.0)
    assert result.metrics["m_rl"] == 4.0
    # Lower-level Bad Speculation components relate as Table II states:
    # BrMispred = Resteer + RecovBub.
    assert result.level2["branch_mispredicts"] == pytest.approx(
        result.level2["resteering"] + result.level2["recovery_bubbles"])
    # Backend = CoreBound + MemBound.
    assert result.level1["backend"] == pytest.approx(
        result.level2["core_bound"] + result.level2["mem_bound"])
    # Frontend = FetchLat + PCRes.
    assert result.level1["frontend"] == pytest.approx(
        result.level2["fetch_latency"] + result.level2["pc_resolution"])


def test_tab2_model_is_cheap(benchmark, qsort_inputs):
    """The model is a handful of arithmetic ops over counter values."""
    result = benchmark(compute_tma, qsort_inputs)
    assert result.cycles > 0
