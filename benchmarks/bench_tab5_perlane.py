"""Table V: per-lane events per total cycles, plus the §V-A study.

Regenerates the per-lane Fetch-bubble / D$-blocked / Uops-issued rates
for the SPEC proxies and mm/memcpy on LargeBOOMV3, then evaluates the
paper's single-lane approximation: total fetch bubbles ~ W_C x lane0,
which keeps the Frontend category within about +/-10 points, while the
same trick is invalid for Uops-issued (the FP queue is asymmetric).
"""

import pytest

from repro.core import (frontend_point_error_of_lane_approx,
                        per_lane_rates, render_table5,
                        single_lane_approximation)
from repro.cores import LARGE_BOOM
from repro.tools import run_core

TABLE5_WORKLOADS = ["505.mcf_r", "523.xalancbmk_r", "541.leela_r",
                    "525.x264_r", "548.exchange2_r", "500.perlbench_r",
                    "mm", "memcpy"]

LANE_COUNTS = {"fetch_bubbles": LARGE_BOOM.decode_width,
               "dcache_blocked": LARGE_BOOM.decode_width,
               "uops_issued": LARGE_BOOM.issue_width}


@pytest.fixture(scope="module")
def table5_results():
    return {name: run_core(name, LARGE_BOOM) for name in TABLE5_WORKLOADS}


def test_tab5_per_lane_rates(benchmark, table5_results, artifact):
    rows = benchmark(lambda: [
        per_lane_rates(result, lane_counts=LANE_COUNTS)
        for result in table5_results.values()])
    table = render_table5(rows, LANE_COUNTS)
    artifact("tab5_per_lane_rates",
             "Table V — per-lane events per total cycles "
             "(LargeBOOMV3)\n" + table)

    for row in rows:
        bubbles = row.rates.get("fetch_bubbles", [])
        # Fetch-bubble lanes are correlated: lane 0 fires least.
        if len(bubbles) == 3 and sum(bubbles) > 0:
            assert bubbles[0] <= bubbles[1] + 1e-9 <= bubbles[2] + 2e-9
        for rates in row.rates.values():
            assert all(0.0 <= rate <= 1.0 for rate in rates)


def test_tab5_single_lane_approximation(benchmark, table5_results,
                                        artifact):
    def study():
        lines = []
        for name, result in table5_results.items():
            error = frontend_point_error_of_lane_approx(result)
            lines.append((name, error))
        return lines

    rows = benchmark(study)
    text = ["§V-A — Frontend error of the 3 x (Fetch-bubble lane 0) "
            "approximation, in points of total slots (paper: ~±10%):"]
    for name, error in rows:
        text.append(f"  {name:<18s}{100 * error:+7.2f} pts")
    artifact("tab5_lane_approximation", "\n".join(text))
    for name, error in rows:
        assert abs(error) <= 0.10


def test_tab5_approximation_fails_for_uops_issued(table5_results,
                                                  artifact):
    """Issue queues are asymmetric, so per-lane scaling misfires."""
    result = table5_results["mm"]  # FP-heavy: last lane is special
    approx = single_lane_approximation(result, "uops_issued", lane=0)
    text = (f"uops_issued on mm: exact={approx.exact_total}, "
            f"W_I x lane0={approx.approx_total:.0f} "
            f"(error {100 * approx.relative_error:+.1f}%)")
    artifact("tab5_uops_issued_approximation_fails", text)
    assert abs(approx.relative_error) > 0.10
