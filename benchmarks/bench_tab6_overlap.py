"""Table VI: temporal-TMA upper bound on Frontend/Bad-Spec overlap.

Samples traces across the suite (the paper samples 1.5 M cycles), scans
for I-cache refills overlapping Recovering windows inside a 50-cycle
padded rolling window, and reports the worst-case perturbation of the
Frontend and Bad Speculation classes.
"""

import pytest

from repro.cores import BoomCore, LARGE_BOOM
from repro.trace import analyze_overlap, boom_tma_bundle, capture_trace
from repro.workloads import build_trace

SAMPLED_WORKLOADS = ["mergesort", "rsort", "memcpy", "coremark",
                     "towers", "vvadd"]


@pytest.fixture(scope="module")
def sampled_signals():
    bundle = boom_tma_bundle(LARGE_BOOM.decode_width,
                             LARGE_BOOM.issue_width)
    merged = {field.name: [] for field in bundle.fields}
    total = 0
    for name in SAMPLED_WORKLOADS:
        trace = build_trace(name)
        tracer = capture_trace(BoomCore(LARGE_BOOM), trace, bundle)
        total += len(tracer)
        for field in bundle.fields:
            merged[field.name].extend(tracer.signal(field.name))
    return merged, total


def test_tab6_overlap_bound(benchmark, sampled_signals, artifact):
    signals, cycles_sampled = sampled_signals
    report = benchmark(analyze_overlap, signals,
                       LARGE_BOOM.decode_width, 50)
    artifact("tab6_temporal_overlap",
             f"Table VI — temporal TMA overlap bound "
             f"({cycles_sampled} cycles sampled across "
             f"{len(SAMPLED_WORKLOADS)} benchmarks, 50-cycle pad)\n"
             + report.render()
             + "\n(paper: overlap 0.01% of slots; Frontend 3.33% "
             "± 0.30%, Bad Speculation 18.15% ± 0.06%)")

    # The overlap is a small fraction of all slots, so both classes'
    # worst-case perturbations stay bounded.
    assert cycles_sampled > 100_000
    assert report.overlap_fraction < 0.10
    assert report.overlap_slots <= report.total_slots
    if report.frontend_fraction > 0.01:
        assert report.frontend_perturbation < 5.0


def test_tab6_padding_is_conservative(sampled_signals):
    """A wider window can only grow the bound (conservativeness)."""
    signals, _ = sampled_signals
    narrow = analyze_overlap(signals, LARGE_BOOM.decode_width,
                             window_pad=10)
    wide = analyze_overlap(signals, LARGE_BOOM.decode_width,
                           window_pad=50)
    assert wide.overlap_slots >= narrow.overlap_slots
