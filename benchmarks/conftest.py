"""Shared infrastructure for the per-figure/table benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
rendered rows/series are written to ``benchmarks/out/<artifact>.txt``
and echoed into the terminal summary, so a plain

    pytest benchmarks/ --benchmark-only

leaves both the timing table and the reproduced artifacts on screen and
on disk.  Heavy simulations go through the disk-cached
:func:`repro.tools.run_core` pipeline, so the ``benchmark`` fixture
times the analysis/model step, not a redundant re-simulation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

OUT_DIR = Path(__file__).parent / "out"

_artifacts: Dict[str, str] = {}


def write_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/figure and register it for the summary."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    _artifacts[name] = text
    return path


@pytest.fixture
def artifact():
    """Fixture handing benches the artifact writer."""
    return write_artifact


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _artifacts:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name in sorted(_artifacts):
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(_artifacts[name])
    terminalreporter.write_line(
        f"(artifacts also written to {OUT_DIR}/)")
