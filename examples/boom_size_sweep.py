#!/usr/bin/env python3
"""TMA across all five Table IV BOOM sizes for one workload.

The paper shows LargeBOOMV3 only "for brevity"; the simulator makes the
whole Small -> Giga sweep a one-liner.  Watch the Bad-Speculation share
grow with machine width on branchy code (wider flushes waste more
slots), or run it on ``memcpy`` to see a bandwidth wall instead.

Usage::

    python examples/boom_size_sweep.py [workload]
"""

import sys

from repro.core import compute_tma, render_breakdown_table
from repro.cores import ALL_BOOM_CONFIGS
from repro.tools import run_core
from repro.workloads import workload_names


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "qsort"
    if workload not in workload_names():
        print(f"unknown workload {workload!r}")
        return 1
    results = []
    for config in ALL_BOOM_CONFIGS:
        result = compute_tma(run_core(workload, config))
        result.workload = config.name   # use the size as the row label
        results.append(result)
    print(render_breakdown_table(
        results, title=f"{workload} across the Table IV BOOM sizes"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
