#!/usr/bin/env python3
"""Rocket CS1 (Fig. 7c): does TMA see an L1D size change?

Runs the 531.deepsjeng_r proxy (a 24 KiB transposition table) on Rocket
with a 32 KiB and a 16 KiB L1 D-cache.  The table fits the big cache and
thrashes the small one, so the Backend (Memory Bound) category should
absorb the slowdown — exactly the sensitivity the paper demonstrates.

Usage::

    python examples/case_study_cache_size.py
"""

from repro.core import render_comparison
from repro.tools import rocket_with_l1d, run_tma


def main() -> int:
    print("Rocket CS1: 531.deepsjeng_r with 32 KiB vs 16 KiB L1D")
    print("(paper: ~7% slowdown, Backend rises by ~12 points)")
    print()
    big = run_tma("531.deepsjeng_r", rocket_with_l1d(32))
    small = run_tma("531.deepsjeng_r", rocket_with_l1d(16))

    print(render_comparison(
        big, small, "32KiB", "16KiB",
        classes=["retiring", "bad_speculation", "frontend", "backend",
                 "mem_bound", "core_bound"]))
    slowdown = small.cycles / big.cycles - 1
    print()
    print(f"measured slowdown: {slowdown:.1%}")
    print(f"Backend delta:     "
          f"{100 * (small.level1['backend'] - big.level1['backend']):+.1f}"
          " points")
    print(f"MemBound delta:    "
          f"{100 * (small.level2['mem_bound'] - big.level2['mem_bound']):+.1f}"
          " points")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
