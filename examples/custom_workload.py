#!/usr/bin/env python3
"""Characterize your own kernel end to end.

Shows the full downstream-user workflow: write a kernel in the RV64
subset, register it, and get a verified TMA breakdown on both cores —
no FPGA required.

The kernel here is a histogram over pseudo-random bytes: a read-modify-
write pattern with a data-dependent index, which lands between the
Memory- and Core-Bound corners.

Usage::

    python examples/custom_workload.py
"""

from repro.core import render_result
from repro.cores import LARGE_BOOM, ROCKET
from repro.tools import run_tma
from repro.workloads import Workload, dwords, register
from repro.workloads.data import Lcg


def histogram_source(scale: float) -> str:
    n = max(200, int(2000 * scale))
    data = Lcg(2024).values(n, 256)
    return f"""
.data
{dwords("samples", data)}
hist: .space {8 * 256}
.text
_start:
    la a0, samples
    la a1, hist
    li s0, {n}
    li t0, 0
hist_loop:
    bge t0, s0, hist_done
    slli t1, t0, 3
    add t1, a0, t1
    ld t2, 0(t1)              # sample
    slli t2, t2, 3
    add t2, a1, t2
    ld t3, 0(t2)              # hist[sample]
    addi t3, t3, 1
    sd t3, 0(t2)              # read-modify-write
    addi t0, t0, 1
    j hist_loop
hist_done:
    # exit with hist[0] + hist[255]
    ld t0, 0(a1)
    ld t1, {8 * 255}(a1)
    add a0, t0, t1
    li a7, 93
    ecall
"""


def expected_exit(scale: float) -> int:
    n = max(200, int(2000 * scale))
    data = Lcg(2024).values(n, 256)
    return data.count(0) + data.count(255)


def main() -> int:
    register(Workload(
        name="histogram",
        category="example",
        source_builder=histogram_source,
        description="byte histogram (read-modify-write with "
                    "data-dependent index)",
        expected_exit=expected_exit,
    ))

    for config in (ROCKET, LARGE_BOOM):
        print(render_result(run_tma("histogram", config,
                                    use_cache=False)))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
