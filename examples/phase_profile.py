#!/usr/bin/env python3
"""Phase profiling with windowed temporal TMA (§IV-C's event windows).

Whole-run TMA hides phases; the trace does not.  This example captures a
full per-cycle trace of a workload on BOOM, splits it into fixed windows,
classifies each window with the temporal TMA model, and renders the
phase profile as aligned sparklines — plus an AutoCounter IPC time
series over the same run.

Usage::

    python examples/phase_profile.py [workload] [window]

Try ``mergesort`` (alternating merge/copy phases) or ``memcpy`` (a cold
streaming phase after a tiny warm-up).
"""

import sys

from repro.cores import BoomCore, LARGE_BOOM
from repro.tools.textplot import percent_axis, sparkline, stacked_series
from repro.trace import (AutoCounter, CounterAnnotation, boom_tma_bundle,
                         capture_trace, windowed_tma)
from repro.workloads import build_trace, workload_names


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mergesort"
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 2048
    if workload not in workload_names():
        print(f"unknown workload {workload!r}")
        return 1

    bundle = boom_tma_bundle(LARGE_BOOM.decode_width,
                             LARGE_BOOM.issue_width)
    trace = build_trace(workload)
    core = BoomCore(LARGE_BOOM)
    ipc_counter = AutoCounter([CounterAnnotation("uops_retired")],
                              readout_interval=window)
    core.add_observer(ipc_counter)
    tracer = capture_trace(core, trace, bundle)
    signals = {f.name: tracer.signal(f.name) for f in bundle.fields}

    profiles = windowed_tma(signals, LARGE_BOOM.decode_width,
                            window=window)
    classes = ("retiring", "bad_speculation", "frontend", "backend")
    series = {name: [p.fractions()[name] for p in profiles]
              for name in classes}

    print(f"{workload} on LargeBOOMV3: {len(tracer)} cycles, "
          f"{len(profiles)} windows of {window} cycles")
    print()
    print("TMA phase profile (each column = one window, full height = "
          "100% of slots):")
    print(stacked_series(series))
    label_width = max(len(name) for name in classes) + 2
    print(" " * label_width + percent_axis(len(profiles)))
    print()

    deltas = ipc_counter.window_deltas("uops_retired")
    ipc = [delta / window for delta in deltas]
    print("IPC per window (AutoCounter readouts):")
    print("  " + sparkline(ipc, maximum=LARGE_BOOM.decode_width))
    if ipc:
        print(f"  min {min(ipc):.2f}  max {max(ipc):.2f}  "
              f"mean {sum(ipc) / len(ipc):.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
