#!/usr/bin/env python3
"""Quickstart: Top-Down analysis of one workload on both cores.

Runs the bundled ``mergesort`` microbenchmark through the Rocket
(in-order) and LargeBOOMV3 (out-of-order) timing models and prints the
perf-tool style TMA report for each — the one-call workflow the Icicle
software stack provides.

Usage::

    python examples/quickstart.py [workload]

Any name from ``repro.workloads.workload_names()`` works, e.g.
``qsort``, ``memcpy``, or ``505.mcf_r``.
"""

import sys

from repro.core import render_result
from repro.cores import LARGE_BOOM, ROCKET
from repro.tools import run_tma
from repro.workloads import workload_names


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mergesort"
    if workload not in workload_names():
        print(f"unknown workload {workload!r}; available:")
        for name in workload_names():
            print(f"  {name}")
        return 1

    print(f"=== {workload} on Rocket (in-order) ===")
    print(render_result(run_tma(workload, ROCKET)))
    print()
    print(f"=== {workload} on LargeBOOMV3 (out-of-order) ===")
    print(render_result(run_tma(workload, LARGE_BOOM)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
