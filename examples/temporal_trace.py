#!/usr/bin/env python3
"""Microarchitectural tracing and temporal TMA (§IV-C, §V-B).

Captures a per-cycle event trace of qsort on BOOM, serializes it through
the TracerV-style binary bridge, decodes it with the DMA reader, and
then:

- renders a Fig. 3-style raster around the first branch mispredict,
- extracts the Recovering-sequence CDF (Fig. 8b),
- computes the temporal TMA classification and compares it with the
  counter-based model,
- bounds the Frontend / Bad-Speculation overlap (Table VI).

Usage::

    python examples/temporal_trace.py
"""

from repro.core import compute_tma
from repro.cores import BoomCore, LARGE_BOOM
from repro.tools import run_core
from repro.trace import (DmaTraceReader, TraceBridge, analyze_overlap,
                         boom_tma_bundle, capture_trace, find_first,
                         length_cdf, modal_length, recovery_sequences,
                         render_raster, temporal_tma,
                         validate_against_counters)
from repro.workloads import build_trace

WORKLOAD = "qsort"


def main() -> int:
    bundle = boom_tma_bundle(LARGE_BOOM.decode_width,
                             LARGE_BOOM.issue_width)
    trace = build_trace(WORKLOAD)
    tracer = capture_trace(BoomCore(LARGE_BOOM), trace, bundle)

    blob = TraceBridge(bundle).encode(tracer)
    print(f"trace: {len(tracer)} cycles -> {len(blob)} bytes over the "
          "bridge")
    signals = DmaTraceReader(blob).signals()

    miss = find_first(signals, "br_mispredict")
    if miss is not None:
        print()
        print(render_raster(
            signals, ["br_mispredict", "recovering", "fetch_bubbles",
                      "uops_issued", "uops_retired"],
            max(0, miss - 5), miss + 25))

    lengths = [s.length for s in
               recovery_sequences(signals["recovering"])]
    print()
    print(f"recovering sequences: {len(lengths)}; modal length "
          f"{modal_length(lengths)} cycles (the model's M_rl)")
    for length, fraction in length_cdf(lengths)[:6]:
        print(f"  len={length:<4d} cdf={100 * fraction:6.2f}%")

    temporal = temporal_tma(signals, LARGE_BOOM.decode_width)
    counters = compute_tma(run_core(WORKLOAD, LARGE_BOOM))
    print()
    print("temporal TMA vs counter TMA (|delta| per class):")
    for name, delta in validate_against_counters(
            temporal, counters.level1).items():
        trace_value = temporal.fractions()[name]
        counter_value = counters.level1[name]
        print(f"  {name:<16s} trace={100 * trace_value:6.2f}%  "
              f"counters={100 * counter_value:6.2f}%  "
              f"|delta|={100 * delta:5.2f}%")

    print()
    print(analyze_overlap(signals, LARGE_BOOM.decode_width).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
