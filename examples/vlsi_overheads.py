#!/usr/bin/env python3
"""Physical-design overheads of the counter architectures (§V-C).

Sweeps all five BOOM sizes through the modelled flow for the baseline
and the three counter architectures, reproducing the content of Fig. 9:
power / area / wirelength overheads (9a) and the normalized longest
CSR-crossing path (9b), plus the §V-A single-lane wire study.

Usage::

    python examples/vlsi_overheads.py
"""

from repro.cores import ALL_BOOM_CONFIGS, MEGA_BOOM
from repro.vlsi import (ARCHITECTURES, CLOCK_PERIOD_NS,
                        single_lane_wire_reduction, sweep, tile_area)


def main() -> int:
    grid = sweep()

    print("Fig. 9a — post-placement overheads "
          f"(target clock {1000 / CLOCK_PERIOD_NS:.0f} MHz)")
    print(f"{'config':<14s}{'arch':<13s}{'power%':>8s}{'area%':>8s}"
          f"{'wire%':>8s}{'csr ns':>8s}{'timing':>8s}")
    for name, per_arch in grid.items():
        for arch, result in per_arch.items():
            if arch == "baseline":
                continue
            status = "pass" if result.passes_200mhz else "FAIL"
            print(f"{name:<14s}{arch:<13s}"
                  f"{100 * result.power_overhead:8.2f}"
                  f"{100 * result.area_overhead:8.2f}"
                  f"{100 * result.wirelength_overhead:8.2f}"
                  f"{result.longest_csr_path_ns:8.3f}{status:>8s}")

    print()
    print("Fig. 9b — normalized longest CSR-crossing path")
    print(f"{'config':<14s}" + "".join(f"{a:>13s}" for a in ARCHITECTURES))
    for config in ALL_BOOM_CONFIGS:
        per_arch = grid[config.name]
        base = per_arch["baseline"]
        row = "".join(
            f"{per_arch[a].normalized_csr_path(base):13.3f}"
            for a in ARCHITECTURES)
        print(f"{config.name:<14s}{row}")

    print()
    print("modelled tile areas (memories unrolled to registers, as in "
          "the paper's ASAP7 flow):")
    for config in ALL_BOOM_CONFIGS:
        print(f"  {config.name:<14s}{tile_area(config) / 1e6:6.2f} mm^2")

    reduction = single_lane_wire_reduction(MEGA_BOOM)
    print()
    print(f"§V-A: monitoring one fetch lane instead of all shortens the "
          f"longest fetch-bubble PMU wire by {100 * reduction:.2f}% "
          "(paper: 11.39%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
