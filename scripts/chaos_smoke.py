#!/usr/bin/env python
"""Chaos-campaign smoke (CI gate): faults injected, invariants held.

Runs the full ``repro-tma chaos`` campaign TWICE with the same fixed
seed and hard-fails unless:

- every end-state invariant held both times (zero job loss, exact
  dedup, merged sweep results bit-identical to the fault-free oracle,
  corrupted cache entries exactly quarantined, retries bounded);
- the chosen seed actually lit every seam (worker kills, disk faults
  including at least one corrupting flavor, client faults) — a chaos
  gate that injects nothing is a green light worth nothing;
- the two reports are byte-identical — the campaign's fault schedule
  and verdicts are a pure function of the seed, so any divergence
  means nondeterminism leaked into the harness itself.

Exits non-zero on the first violated expectation.
"""

import sys
import time

SEED = 1234


def fail(message):
    print(f"CHAOS SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)
    print(f"  ok: {message}")


def main():
    from repro.chaos.campaign import run_campaign

    started = time.time()
    print(f"chaos campaign, run 1 (seed={SEED})...")
    first = run_campaign(seed=SEED)
    print(first.render())
    print(f"chaos campaign, run 2 (seed={SEED})...")
    second = run_campaign(seed=SEED)

    check(first.passed, f"run 1 held every invariant "
                        f"(violations: {first.violations})")
    check(second.passed, f"run 2 held every invariant "
                         f"(violations: {second.violations})")

    sweep = first.sweep
    check(sweep.get("worker_kills_planned", 0) > 0,
          f"worker kills injected "
          f"({sweep.get('worker_kills_planned')} planned)")
    check(sweep.get("disk_faults_planned", 0) > 0,
          f"disk faults injected "
          f"({sweep.get('disk_faults_planned')} planned)")
    check(sweep.get("corrupt_entries_planned", 0) > 0,
          f"corrupting disk flavors drawn "
          f"({sweep.get('corrupt_entries_planned')} entries)")
    check(first.service.get("client_faults_planned", 0) > 0,
          f"client connection faults injected "
          f"({first.service.get('client_faults_planned')} planned)")

    check(first.to_json() == second.to_json(),
          "reports byte-identical across runs (deterministic campaign)")

    print(f"\nCHAOS SMOKE PASS in {time.time() - started:.1f}s — "
          f"{sweep.get('pairs')} pairs × 3 sweeps, "
          f"{first.service.get('submissions')} service submissions, "
          f"seed {SEED} reproduced exactly")


if __name__ == "__main__":
    main()
