#!/usr/bin/env python
"""End-to-end smoke of the multicore interference subsystem (CI gate).

Two halves:

1. **Solo-equivalence oracle** — a scenario with one active core (idle
   neighbor) routed through the full shared-uncore + turnstile stack
   must be bit-identical to the single-core pipeline for a basket of
   registry workloads on both Rocket and BOOM, with exactly zero
   neighbor-induced attribution.
2. **Scenario registry sweep** — every named scenario runs at small
   scale and must satisfy the attribution invariants: level-1 TMA slots
   sum to 1.0, ``self + neighbor == mem_bound`` exactly per core, and
   repeated runs are bit-identical (lockstep determinism).

Exits non-zero on the first violated expectation.  Run under
``REPRO_TIMING_ENGINE=objects`` as well: the solo oracle must hold on
every engine.
"""

import os
import sys
import tempfile

SCALE = 0.1
ORACLE_PAIRS = (
    ("median", "rocket"),
    ("vvadd", "rocket"),
    ("qsort", "rocket"),
    ("towers", "rocket"),
    ("mm", "rocket"),
    ("spmv", "large-boom"),
    ("mergesort", "large-boom"),
    ("multiply", "large-boom"),
    ("dhrystone", "large-boom"),
    ("coremark", "large-boom"),
)


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)
    print(f"  ok: {message}")


def result_digest(result):
    from dataclasses import astuple

    return (
        result.cycles,
        result.instret,
        astuple(result.l1i_stats),
        astuple(result.l1d_stats),
        astuple(result.l2_stats),
        astuple(result.predictor_stats),
    )


def core_digest(core):
    return (
        result_digest(core.result),
        tuple(sorted(core.tma.level1.items())),
        tuple(sorted(core.tma.level2.items())),
        core.attribution.to_payload()["self"],
        core.attribution.to_payload()["neighbor_induced"],
        core.uncore.to_payload(),
    )


def main():
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="mc-smoke-")
    from repro.multicore import (CoreSlot, Scenario, get_scenario,
                                 run_scenario, scenario_names)
    from repro.tools.tma_tool import run_core
    from repro.cores import config_by_name

    engine = os.environ.get("REPRO_TIMING_ENGINE", "columnar")
    print(f"multicore smoke (engine={engine})")

    print("solo-equivalence oracle:")
    for workload, config_name in ORACLE_PAIRS:
        scenario = Scenario(
            name=f"solo-{workload}", description="oracle",
            slots=(CoreSlot(workload, config_name),
                   CoreSlot("idle", "rocket")),
            scale=SCALE)
        lockstep = run_scenario(scenario, force_lockstep=True).core_at(0)
        solo = run_core(workload, config_by_name(config_name),
                        scale=SCALE, use_cache=False)
        check(result_digest(lockstep.result) == result_digest(solo),
              f"{workload}@{config_name} lockstep == solo")
        check(lockstep.attribution.neighbor_share == 0.0,
              f"{workload}@{config_name} idle neighbor -> "
              f"neighbor_share == 0.0")

    print("scenario registry invariants:")
    for name in scenario_names():
        scenario = get_scenario(name).with_overrides(scale=SCALE)
        first = run_scenario(scenario)
        again = run_scenario(scenario)
        check([core_digest(c) for c in first.cores]
              == [core_digest(c) for c in again.cores],
              f"{name}: repeated runs bit-identical")
        for core in first.cores:
            level1_sum = sum(core.tma.level1.values())
            check(abs(level1_sum - 1.0) < 1e-9,
                  f"{name} core {core.index}: level-1 sums to 1.0")
            attribution = core.attribution
            check(attribution.self_share + attribution.neighbor_share
                  == attribution.mem_bound,
                  f"{name} core {core.index}: "
                  f"self + neighbor == mem_bound exactly")
    print("SMOKE PASS")


if __name__ == "__main__":
    main()
