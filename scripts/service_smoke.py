#!/usr/bin/env python
"""End-to-end smoke of the TMA analysis service (CI gate).

Boots the HTTP service in-process, pushes a duplicate-heavy burst of
jobs through a deliberately small admission queue (so backpressure and
retry-after actually fire), polls everything to completion, then drains
and audits the books:

- >= 200 submissions, >= 50% duplicates, all complete;
- every duplicate was served without re-execution (in-flight dedup or
  the O(1) result store) — executions == unique jobs;
- /metrics reports queue depth, dedup hits, and p50/p99 job latency;
- graceful drain: /healthz reports drained, zero accepted-but-lost.

Exits non-zero on the first violated expectation.
"""

import os
import sys
import tempfile
import time

TOTAL_SUBMISSIONS = 220
WORKLOADS = ("vvadd", "median", "mergesort", "qsort", "towers", "spmv")
CONFIGS = ("rocket", "small-boom")
SCALES = (0.1, 0.15)
QUEUE_CAPACITY = 16
WORKERS = 4


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)
    print(f"  ok: {message}")


def main():
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="tma-smoke-")
    from repro.service import JobRejected, ServiceClient, TMAService, \
        serve_in_thread
    from repro.workloads import workload_names

    grid = [(w, c, s) for w in WORKLOADS for c in CONFIGS for s in SCALES]
    unique = len(grid)
    assert all(w in workload_names() for w in WORKLOADS)
    duplicates = TOTAL_SUBMISSIONS - unique
    check(duplicates / TOTAL_SUBMISSIONS >= 0.5,
          f"submission stream is {100 * duplicates // TOTAL_SUBMISSIONS}% "
          f"duplicates ({unique} unique / {TOTAL_SUBMISSIONS} submissions)")

    service = TMAService(workers=WORKERS, queue_capacity=QUEUE_CAPACITY,
                         executor="thread").start()
    server, _thread = serve_in_thread(service)
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=30.0)

    started = time.time()
    job_ids = []
    retries_taken = 0
    for index in range(TOTAL_SUBMISSIONS):
        # Duplicates arrive in adjacent bursts of 3, so coalescing hits
        # queued/running primaries (in-flight dedup), while later full
        # passes over the grid land on the O(1) result store instead.
        workload, config, scale = grid[(index // 3) % unique]
        while True:
            try:
                receipt = client.submit(workload, config=config, scale=scale,
                                        client=f"client-{index % 7}")
                job_ids.append(receipt["id"])
                break
            except JobRejected as rejected:
                retries_taken += 1
                if retries_taken > 2000:
                    fail("backpressure never relieved after 2000 retries")
                time.sleep(min(rejected.retry_after, 0.25))
    print(f"submitted {len(job_ids)} jobs "
          f"({retries_taken} backpressure retries) "
          f"in {time.time() - started:.1f}s")

    deadline = time.time() + 300
    pending = set(job_ids)
    while pending:
        if time.time() > deadline:
            fail(f"{len(pending)} jobs never finished")
        done = {job_id for job_id in pending
                if client.status(job_id)["state"] in ("done", "failed")}
        pending -= done
        if pending:
            time.sleep(0.1)

    failed = [job_id for job_id in job_ids
              if client.status(job_id)["state"] != "done"]
    check(not failed, f"all {len(job_ids)} jobs completed "
                      f"(failed: {failed[:5]})")

    metrics = client.metrics()
    counters = metrics["counters"]
    check(counters["jobs_accepted"] == TOTAL_SUBMISSIONS,
          f"accepted == {TOTAL_SUBMISSIONS}")
    check(counters.get("dedup_hits", 0) > 0,
          f"in-flight dedup fired ({counters.get('dedup_hits', 0)} hits)")
    served_without_execution = (counters.get("dedup_hits", 0)
                                + counters.get("cache_hits", 0))
    check(served_without_execution == duplicates,
          f"every duplicate served without re-execution "
          f"(dedup {counters.get('dedup_hits', 0)} + cache "
          f"{counters.get('cache_hits', 0)} == {duplicates})")
    check(counters["jobs_executed"] == unique,
          f"exactly {unique} executions for {unique} unique jobs")
    check("queue_depth" in metrics["gauges"], "queue_depth gauge reported")
    latency = metrics["histograms"].get("job_latency_seconds", {})
    check(latency.get("count", 0) >= TOTAL_SUBMISSIONS,
          "latency histogram observed every completion")
    check(latency.get("p50", 0) > 0 and latency.get("p99", 0) > 0,
          f"p50={latency.get('p50')}s p99={latency.get('p99')}s reported")
    check(counters.get("jobs_rejected", 0) == retries_taken,
          f"each retry maps to one 429 rejection ({retries_taken})")

    report = client.drain()
    check(report["state"] == "drained", "drain completed")
    health = client.healthz()
    check(health["status"] == "drained", "/healthz reports a clean drain")
    check(health["queue_depth"] == 0 and health["in_flight"] == 0,
          "nothing queued or in flight after drain")
    lost = (counters["jobs_accepted"]
            - report["completed"] - report["failed"] - report["persisted"])
    check(lost == 0, "zero accepted-but-lost jobs "
                     f"(accepted {counters['jobs_accepted']} = "
                     f"completed {report['completed']} + failed "
                     f"{report['failed']} + persisted {report['persisted']})")

    server.shutdown()
    print(f"\nSMOKE PASS in {time.time() - started:.1f}s — "
          f"{TOTAL_SUBMISSIONS} jobs, {unique} executions, "
          f"p50={latency['p50']}s p99={latency['p99']}s")


if __name__ == "__main__":
    main()
