#!/usr/bin/env python
"""Multi-node shard-cluster smoke (CI gate).

Boots three real shard server processes (``repro-tma serve
--shard-id``) sharing one result-store directory, fronts them with the
routing gateway over HTTP, then:

- pushes a duplicate-heavy burst (~80% duplicates) through the
  gateway;
- SIGKILLs one shard mid-drain — no warning, no graceful anything;
- asserts **zero job loss**: every accepted submission reaches a
  ``done`` record through eviction + re-routing;
- asserts **routing exactness**: each canonical job key is observed on
  exactly one live shard, and that shard is the survivor ring's owner;
- asserts **exact dedup**: live-shard executions never exceed the
  number of unique analyses;
- asserts **oracle identity**: every result document is bit-identical
  to a single-node service run in a separate, isolated store;
- streams one re-routed job's SSE lifecycle through the gateway relay
  and checks it ends with exactly one terminal event.

Exits non-zero on the first violated expectation.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

WORKLOADS = ("vvadd", "median", "mergesort", "qsort")
CONFIGS = ("rocket", "small-boom")
SCALES = (0.1, 0.15, 0.2)
TOTAL_SUBMISSIONS = 120
SHARD_COUNT = 3


def fail(message):
    print(f"SHARD SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)
    print(f"  ok: {message}")


def start_shard(shard_id, cache_dir):
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir,
               PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "serve",
         "--port", "0", "--shard-id", shard_id,
         "--executor", "thread", "--workers", "2",
         "--queue-size", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env)
    deadline = time.time() + 30
    banner = ""
    while time.time() < deadline:
        banner = process.stdout.readline()
        if "service on http://" in banner:
            break
    else:
        process.kill()
        fail(f"shard {shard_id} never printed its banner: {banner!r}")
    url = banner.split("service on ", 1)[1].split()[0]
    return process, url


def shard_records(url):
    with urllib.request.urlopen(f"{url}/admin/records",
                                timeout=10.0) as response:
        return json.load(response)["records"]


def shard_metrics(url):
    with urllib.request.urlopen(f"{url}/metrics",
                                timeout=10.0) as response:
        return json.load(response)


def main():
    cluster_cache = tempfile.mkdtemp(prefix="tma-shard-smoke-")
    oracle_cache = tempfile.mkdtemp(prefix="tma-shard-oracle-")
    os.environ["REPRO_CACHE_DIR"] = cluster_cache

    from repro.service import (Gateway, ServiceClient, TMAService,
                               serve_gateway_in_thread)
    from repro.service.job import TMAJob

    # -- boot the cluster --------------------------------------------------
    processes, urls = {}, {}
    for index in range(SHARD_COUNT):
        shard_id = f"s{index + 1}"
        processes[shard_id], urls[shard_id] = start_shard(
            shard_id, cluster_cache)
    print(f"cluster: {urls}")

    gateway = Gateway(
        ",".join(f"{sid}={url}" for sid, url in sorted(urls.items())),
        evict_threshold=2)
    gw_server, _thread = serve_gateway_in_thread(gateway)
    gw_url = f"http://127.0.0.1:{gw_server.server_address[1]}"
    client = ServiceClient(gw_url, timeout=30.0)
    check(client.healthz()["role"] == "gateway",
          f"gateway at {gw_url} fronts {SHARD_COUNT} shards")

    # -- duplicate-heavy burst --------------------------------------------
    unique = [(w, c, s) for w in WORKLOADS for c in CONFIGS
              for s in SCALES]
    burst = [unique[i % len(unique)] for i in range(TOTAL_SUBMISSIONS)]
    duplicates = TOTAL_SUBMISSIONS - len(unique)
    check(duplicates / TOTAL_SUBMISSIONS >= 0.5,
          f"burst is {100 * duplicates // TOTAL_SUBMISSIONS}% duplicates "
          f"({len(unique)} unique / {TOTAL_SUBMISSIONS} submissions)")
    receipts = []
    for workload, config, scale in burst:
        receipt = client.submit(workload, retries=20, config=config,
                                scale=scale)
        receipts.append(receipt)
    check(len(receipts) == TOTAL_SUBMISSIONS,
          f"gateway accepted all {TOTAL_SUBMISSIONS} submissions")

    # -- SIGKILL one shard mid-drain ---------------------------------------
    victim = receipts[0]["shard"]
    processes[victim].send_signal(signal.SIGKILL)
    processes[victim].wait(timeout=30)
    print(f"  killed shard {victim} (SIGKILL, mid-drain)")

    # -- zero loss: everything still completes -----------------------------
    results = {}
    lost = []
    for receipt in receipts:
        try:
            record = client.wait(receipt["id"], timeout=60.0,
                                 deadline=time.time() + 240.0)
        except Exception as exc:  # noqa: BLE001 - audited below
            lost.append((receipt["id"], str(exc)))
            continue
        if record.get("state") != "done":
            lost.append((receipt["id"], record.get("state")))
            continue
        results[receipt["id"]] = record["result"]
    check(not lost, f"zero job loss across SIGKILL ({len(results)}/"
                    f"{TOTAL_SUBMISSIONS} done; lost={lost[:3]})")
    check(victim not in gateway.clients and victim not in gateway.ring,
          f"dead shard {victim} was evicted from the ring")
    check(gateway.metrics.counter("jobs_rerouted") >= 1,
          f"{gateway.metrics.counter('jobs_rerouted')} routes re-homed")

    # -- routing exactness on the survivors --------------------------------
    expected_keys = {
        TMAJob.from_payload({"workload": w, "config": c,
                             "scale": s}).job_key()
        for w, c, s in unique}
    live = {sid: url for sid, url in urls.items() if sid != victim}
    owners = {}
    for shard_id, url in live.items():
        for record in shard_records(url):
            key = record["job_key"]
            if key not in expected_keys:
                continue
            previous = owners.setdefault(key, shard_id)
            if previous != shard_id:
                fail(f"job key {key} observed on both {previous} "
                     f"and {shard_id}")
            if gateway.ring.owner(key) != shard_id:
                fail(f"job key {key} on {shard_id}, but the ring "
                     f"owns it to {gateway.ring.owner(key)}")
    check(len(owners) >= 1, f"{len(owners)} unique keys audited on "
                            f"live shards, all disjoint + ring-placed")

    # -- exact dedup: executions never exceed unique analyses --------------
    executed = sum(
        shard_metrics(url)["counters"].get("jobs_executed", 0)
        for url in live.values())
    check(executed <= len(unique),
          f"live shards executed {executed} <= {len(unique)} unique "
          f"analyses (dedup + store held under reroute)")

    # -- SSE relay across the reroute --------------------------------------
    streamed_id = next((r["id"] for r in receipts
                        if r["shard"] == victim), receipts[0]["id"])
    events = list(client.stream(streamed_id))
    terminals = [e for e in events if e["event"] == "done"]
    check(len(terminals) == 1 and events[-1]["event"] == "done",
          f"gateway SSE relay for {streamed_id}: "
          f"{len(events)} events, exactly one terminal")

    # -- oracle identity ---------------------------------------------------
    os.environ["REPRO_CACHE_DIR"] = oracle_cache
    oracle = TMAService(workers=2, executor="thread",
                        queue_capacity=64).start()
    oracle_results = {}
    try:
        pending = {}
        for workload, config, scale in unique:
            receipt = oracle.submit_payload(
                {"workload": workload, "config": config, "scale": scale})
            key = TMAJob.from_payload(
                {"workload": workload, "config": config,
                 "scale": scale}).job_key()
            pending[receipt.record.id] = key
        deadline = time.time() + 240.0
        while pending and time.time() < deadline:
            for record_id in list(pending):
                record = oracle.status(record_id)
                if record and record["state"] == "done":
                    oracle_results[pending.pop(record_id)] = (
                        record["result"])
                elif record and record["state"] not in (
                        "queued", "running"):
                    fail(f"oracle job {record_id} ended "
                         f"{record['state']}")
            time.sleep(0.05)
        check(not pending, "single-node oracle completed all unique jobs")
    finally:
        oracle.drain()

    def canonical(result):
        return {key: value for key, value in result.items()
                if key not in ("from_cache", "attempts")}

    mismatched = 0
    for receipt, (workload, config, scale) in zip(receipts, burst):
        key = TMAJob.from_payload(
            {"workload": workload, "config": config,
             "scale": scale}).job_key()
        if canonical(results[receipt["id"]]) != canonical(
                oracle_results[key]):
            mismatched += 1
    check(mismatched == 0,
          f"all {len(results)} routed results bit-identical to the "
          f"single-node oracle")

    # -- teardown ----------------------------------------------------------
    gw_server.shutdown()
    for shard_id, process in processes.items():
        if shard_id == victim:
            continue
        process.send_signal(signal.SIGTERM)
    for shard_id, process in processes.items():
        if shard_id == victim:
            continue
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
    print("SHARD SMOKE PASS")


if __name__ == "__main__":
    main()
