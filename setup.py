"""Setup shim for environments whose pip cannot do PEP 660 editable installs
(no `wheel` package offline). `pip install -e .` falls back to this via
`python setup.py develop`."""
from setuptools import setup

setup()
