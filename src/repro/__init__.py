"""Icicle reproduction: Top-Down Microarchitectural Analysis on simulated
Rocket and BOOM RISC-V cores.

The public API mirrors the paper's full system stack:

- :mod:`repro.isa` — RV64-subset ISA, assembler and functional executor.
- :mod:`repro.uarch` — caches, branch predictors, TLBs, buffers.
- :mod:`repro.cores` — cycle-level Rocket (in-order) and BOOM (OoO) models.
- :mod:`repro.pmu` — performance events, counter architectures, CSR file,
  and the perf software harness.
- :mod:`repro.core` — the TMA model itself (the paper's contribution).
- :mod:`repro.trace` — per-cycle microarchitectural tracing and the
  temporal-TMA analyzer.
- :mod:`repro.vlsi` — the physical-design overhead model.
- :mod:`repro.workloads` — microbenchmarks and SPEC CPU2017 proxies.
- :mod:`repro.tools` — the one-call ``tma_tool`` pipeline.
- :mod:`repro.service` — the queue-driven analysis service (scheduling,
  dedup, backpressure, live metrics) behind a stdlib JSON HTTP API.

Quickstart::

    from repro.tools import run_tma
    from repro.cores import LARGE_BOOM

    report = run_tma("mergesort", LARGE_BOOM)
    print(report.render())
"""

__version__ = "1.8.0"
