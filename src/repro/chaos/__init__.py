"""repro.chaos: deterministic, seeded chaos engineering for the stack.

The layer has three parts:

- :mod:`repro.chaos.plan` — :class:`ChaosPlan`, a frozen declarative
  value (seed + per-seam rates) from which every fault decision is a
  pure ``sha256(seed, seam, key)`` function: the same plan produces the
  same faults in any process, under any scheduling.
- :mod:`repro.chaos.injector` — the runtime hooks production seams
  consult (worker kills, disk-write mangling, client connection faults,
  scheduler stalls).  Every hook is a one-global-read no-op when no
  plan is active.
- :mod:`repro.chaos.campaign` — the end-to-end campaign behind
  ``repro-tma chaos``: runs the sweep and service layers under an
  active plan, checks the end-state invariants (zero job loss, exact
  dedup, fault-free-identical merged results, bounded retries), and
  emits a byte-deterministic report.
"""

from .injector import (ChaosConnectionError, KILL_EXIT_CODE, activate,
                       activate_from_env, active, client_fault, counters,
                       deactivate, mangle_write, maybe_kill_worker,
                       maybe_stall, plan, reset_counters)
from .plan import CLIENT_FLAVORS, DISK_FLAVORS, PLAN_ENV, SEAMS, ChaosPlan


def __getattr__(name):  # noqa: ANN001, ANN202
    # The campaign pulls in the sweep/service layers, which themselves
    # import this package for the injector hooks — load it lazily so
    # ``import repro.chaos`` stays cycle-free and cheap.
    if name in ("run_campaign", "CampaignReport"):
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CampaignReport",
    "run_campaign",
    "CLIENT_FLAVORS",
    "DISK_FLAVORS",
    "KILL_EXIT_CODE",
    "PLAN_ENV",
    "SEAMS",
    "ChaosConnectionError",
    "ChaosPlan",
    "activate",
    "activate_from_env",
    "active",
    "client_fault",
    "counters",
    "deactivate",
    "mangle_write",
    "maybe_kill_worker",
    "maybe_stall",
    "plan",
    "reset_counters",
]
