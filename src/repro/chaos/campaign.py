"""The ``repro-tma chaos`` campaign: inject faults, verify end state.

The campaign attacks the stack at its real seams and then checks the
*end-state invariants* that the reliability layer promises survive any
schedule of those faults:

**Sweep phases** (process-pool grid sweeps):

1. *Oracle* — the grid runs chaos-free in an isolated cache directory;
   its merged results are digested as the ground truth.
2. *Chaos pass 1* — the same grid runs under the plan in a second
   isolated directory: pool workers are killed mid-shard, cache writes
   are truncated/bit-flipped/ENOSPC'd.  Every pair must still complete
   (parent-side recovery) and the merged results must digest
   identically to the oracle.
3. *Chaos pass 2* — the grid runs again in the same directory, so this
   pass *reads* the cache entries pass 1 corrupted: checksums must
   catch every mangled entry (quarantine + re-run), and the digest
   must again equal the oracle's.

**Service phase**: a real HTTP service (thread executor) takes a
duplicate-heavy burst from a chaotic client (refused/reset/delayed
requests) while the scheduler suffers injected stalls; after a drain,
the zero-loss ledger (``completed + failed + persisted == accepted``),
dedup exactness (followers resolve with their primary's state and
result), and the bounded-execution promise are checked on the service
object itself.

**Determinism.** The report holds only values that are pure functions
of ``(seed, grid)``: verdict booleans, plan-*enumerated* fault counts
(never runtime counters, which shift with scheduling), submission
counts fixed by construction, and result digests.  Two runs with the
same seed must produce byte-identical reports — the chaos smoke test
enforces exactly that.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..cores import config_by_name
from ..reliability.retry import RetryPolicy
from ..reliability.runner import ResilientRunner, SweepReport
from ..tools import cache
from ..workloads import trace_cache
from . import injector
from .plan import ChaosPlan

#: Default campaign grid: small, fast, and wide enough that the
#: standard plan's rates light every seam.
DEFAULT_WORKLOADS = ("median", "qsort", "towers")
DEFAULT_CONFIGS = ("rocket", "large-boom")
DEFAULT_SCALE = 0.2

REPORT_VERSION = 1

_CACHE_ENV = "REPRO_CACHE_DIR"


def campaign_plan(seed: int) -> ChaosPlan:
    """The default campaign plan: rates sized for the small grid.

    :meth:`ChaosPlan.standard` rates are tuned for long-running soak
    grids; on the campaign's ~6-pair grid they can draw zero faults on
    a given seam for a given seed.  The campaign wants every seam lit,
    so its default plan runs hotter — the fault schedule is still a
    pure function of the seed.
    """
    from dataclasses import replace

    return replace(ChaosPlan.standard(seed),
                   worker_kill_rate=0.45,
                   disk_fault_rate=0.6,
                   client_fault_rate=0.35)


@contextmanager
def _isolated_cache_dir(root: str, name: str) -> Iterator[str]:
    """Point the result/trace caches at a fresh directory under *root*."""
    directory = os.path.join(root, name)
    os.makedirs(directory, exist_ok=True)
    previous = os.environ.get(_CACHE_ENV)
    os.environ[_CACHE_ENV] = directory
    trace_cache.clear_memory()
    try:
        yield directory
    finally:
        if previous is None:
            os.environ.pop(_CACHE_ENV, None)
        else:
            os.environ[_CACHE_ENV] = previous
        trace_cache.clear_memory()


def _result_digest(report: SweepReport) -> str:
    """Canonical digest of a sweep's merged results.

    Folds, per pair in grid order: identity, status, and the exact
    serialized :class:`CoreResult`.  Deliberately excludes attempt
    counts, trace-cache counters, and quarantine flags — those describe
    *how* the sweep got there, which chaos legitimately changes; the
    digest captures *what* it produced, which chaos must not.
    """
    pairs: List[Dict[str, Any]] = []
    for outcome in report.outcomes:
        measurement = outcome.measurement
        pairs.append({
            "workload": outcome.workload,
            "config": outcome.config_name,
            "status": outcome.status,
            "result": (cache.serialize_result(measurement.result)
                       if measurement is not None
                       and measurement.result is not None else None),
        })
    canonical = json.dumps(pairs, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


@dataclass
class CampaignReport:
    """Deterministic verdict of one chaos campaign."""

    version: int = REPORT_VERSION
    seed: int = 0
    plan: Dict[str, Any] = field(default_factory=dict)
    sweep: Dict[str, Any] = field(default_factory=dict)
    service: Dict[str, Any] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "seed": self.seed,
            "plan": self.plan,
            "sweep": self.sweep,
            "service": self.service,
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, indent=2)

    def render(self) -> str:
        lines = [f"chaos campaign: seed={self.seed} "
                 f"{'PASSED' if self.passed else 'FAILED'}"]
        sweep = self.sweep
        lines.append(
            f"  sweep: {sweep.get('pairs')} pairs, "
            f"kills planned={sweep.get('worker_kills_planned')}, "
            f"disk faults planned={sweep.get('disk_faults_planned')}, "
            f"oracle match pass1={sweep.get('pass1_identical')} "
            f"pass2={sweep.get('pass2_identical')}, "
            f"corrupt entries detected={sweep.get('corruption_detected')}")
        service = self.service
        if service:
            lines.append(
                f"  service: {service.get('submissions')} submissions "
                f"({service.get('unique_jobs')} unique), "
                f"client faults planned="
                f"{service.get('client_faults_planned')}, "
                f"zero loss={service.get('zero_loss')}, "
                f"dedup exact={service.get('dedup_exact')}, "
                f"executions bounded={service.get('executions_bounded')}")
        else:
            lines.append("  service: phase skipped")
        if self.violations:
            lines.append("  violations:")
            lines.extend(f"    - {violation}" for violation in self.violations)
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweep phases


def _make_runner(scale: float, seed: int) -> ResilientRunner:
    return ResilientRunner(
        scale=scale,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, seed=seed))


def _sweep_once(workloads: Sequence[str], configs: Sequence[Any],
                scale: float, seed: int, workers: int) -> SweepReport:
    from ..tools.parallel import ParallelSweepRunner

    engine = ParallelSweepRunner(runner=_make_runner(scale, seed),
                                 max_workers=workers, seed=seed)
    return engine.run_grid(list(workloads), list(configs))


def _run_sweep_phase(report: CampaignReport, plan: ChaosPlan, root: str,
                     workloads: Sequence[str], config_names: Sequence[str],
                     scale: float, workers: int) -> None:
    configs = [config_by_name(name) for name in config_names]
    pairs = [(w, c) for w in workloads for c in configs]
    policy_cap = _make_runner(scale, plan.seed).retry_policy.max_attempts

    # Plan-enumerated fault schedule over the sweep's known key space —
    # deterministic, and computable without executing anything.
    kill_keys = [f"shard:{w}:{c.name}" for w, c in pairs]
    result_keys = {(w, c.name): cache.cache_key(w, scale, c)
                   for w, c in pairs}
    disk_keys = ([f"result-cache:{key}" for key in result_keys.values()]
                 + [f"trace-cache:{trace_cache.trace_key(w, scale)}"
                    for w in dict.fromkeys(workloads)])
    planned_kills = plan.planned_faults("worker_kill", kill_keys)
    planned_disk = plan.planned_faults("disk_fault", disk_keys)
    #: Result-cache faults that leave a *corrupt entry on disk* (ENOSPC
    #: leaves no entry at all), i.e. exactly what pass 2 must detect
    #: and quarantine.
    planned_corrupting = [
        (key, flavor) for key, flavor in planned_disk
        if key.startswith("result-cache:") and flavor != "enospc"]

    with _isolated_cache_dir(root, "oracle"):
        injector.deactivate()
        oracle = _sweep_once(workloads, configs, scale, plan.seed, workers)
    oracle_digest = _result_digest(oracle)

    with _isolated_cache_dir(root, "chaos"):
        with injector.active(plan):
            pass1 = _sweep_once(workloads, configs, scale, plan.seed, workers)
            pass2 = _sweep_once(workloads, configs, scale, plan.seed, workers)
    pass1_digest = _result_digest(pass1)
    pass2_digest = _result_digest(pass2)

    grid_size = len(pairs)
    attempts_max = max(
        [o.attempts for o in pass1.outcomes + pass2.outcomes] or [0])
    detected = sorted(set(pass2.quarantined_keys))
    expected_corrupt = sorted(
        {key.split(":", 1)[1] for key, _ in planned_corrupting})

    report.sweep = {
        "pairs": grid_size,
        "workloads": list(workloads),
        "configs": list(config_names),
        "scale": scale,
        "oracle_digest": oracle_digest,
        "pass1_digest": pass1_digest,
        "pass2_digest": pass2_digest,
        "pass1_identical": pass1_digest == oracle_digest,
        "pass2_identical": pass2_digest == oracle_digest,
        "worker_kills_planned": len(planned_kills),
        "disk_faults_planned": len(planned_disk),
        "corrupt_entries_planned": len(expected_corrupt),
        "corrupt_entries_detected": len(detected),
        "corruption_detected": detected == expected_corrupt,
        "attempts_max": attempts_max,
        "retries_bounded": attempts_max <= policy_cap,
        "statuses": sorted({o.status
                            for o in pass1.outcomes + pass2.outcomes}),
    }

    for label, sweep_report in (("oracle", oracle), ("pass1", pass1),
                                ("pass2", pass2)):
        if len(sweep_report.outcomes) != grid_size:
            report.violations.append(
                f"sweep/{label}: {len(sweep_report.outcomes)} outcomes "
                f"for a {grid_size}-pair grid (pairs lost)")
    if not report.sweep["pass1_identical"]:
        report.violations.append(
            "sweep/pass1: merged results diverge from the fault-free "
            "oracle")
    if not report.sweep["pass2_identical"]:
        report.violations.append(
            "sweep/pass2: merged results diverge from the fault-free "
            "oracle after reading chaos-corrupted caches")
    if not report.sweep["corruption_detected"]:
        report.violations.append(
            f"sweep/pass2: corrupted cache entries not exactly "
            f"quarantined (expected {expected_corrupt}, got {detected})")
    if not report.sweep["retries_bounded"]:
        report.violations.append(
            f"sweep: attempts reached {attempts_max}, above the retry "
            f"policy cap of {policy_cap}")


# ----------------------------------------------------------------------
# Service phase


def _run_service_phase(report: CampaignReport, plan: ChaosPlan, root: str,
                       workloads: Sequence[str], config_name: str,
                       scale: float, submissions_per_job: int) -> None:
    from ..service import ServiceClient, TMAService, serve_in_thread
    from ..service.client import JobRejected, ServiceError

    #: Duplicate-heavy burst: each unique job is submitted this many
    #: times, so dedup/coalescing is always exercised.
    unique_jobs = [(w, config_name) for w in workloads]
    burst: List[Tuple[str, str]] = []
    for _ in range(submissions_per_job):
        burst.extend(unique_jobs)
    client_keys = [f"POST:/jobs:req-{i}" for i in range(len(burst))]
    planned_client = plan.planned_faults("client_fault", client_keys)

    with _isolated_cache_dir(root, "service"):
        with injector.active(plan):
            service = TMAService(workers=2, queue_capacity=32,
                                 executor="thread")
            service.start(resume=False)
            server, thread = serve_in_thread(service)
            host, port = server.server_address[:2]
            client = ServiceClient(
                f"http://{host}:{port}",
                retry_policy=RetryPolicy(max_attempts=4, base_delay=0.0,
                                         seed=plan.seed))
            transport_failures = 0
            try:
                for workload, config in burst:
                    try:
                        client.submit(workload, retries=8, config=config,
                                      scale=scale, client="chaos")
                    except (JobRejected, ServiceError):
                        # Chaos refused/reset the submission before it
                        # reached the server, or backpressure outlasted
                        # the retry budget — either way the server never
                        # accepted it, so its ledger stays consistent.
                        transport_failures += 1
                # Exercise the idempotent retry path under chaos too.
                for _ in range(3):
                    try:
                        client.metrics()
                    except ServiceError:
                        transport_failures += 1
                drain = service.drain(timeout=60.0)
            finally:
                server.shutdown()
                thread.join(timeout=5.0)

            metrics = service.metrics_snapshot()
            records = service.records()

    counters = metrics.get("counters", metrics)
    accepted = drain.get("accepted", 0)
    completed = drain.get("completed", 0)
    failed = drain.get("failed", 0)
    persisted = drain.get("persisted", 0)
    zero_loss = completed + failed + persisted == accepted

    # Dedup exactness: every coalesced follower must resolve with its
    # primary's state and result payload.
    by_id = {record.id: record for record in records}
    dedup_exact = True
    for record in records:
        if record.coalesced_with is None:
            continue
        primary = by_id.get(record.coalesced_with)
        if primary is None:
            continue  # primary evicted by retention; nothing to compare
        if (record.state != primary.state
                or record.result != primary.result):
            dedup_exact = False
            break

    executed = counters.get("jobs_executed", 0)
    max_executions = len(unique_jobs) * (1 + service.max_requeues)
    executions_bounded = executed <= max_executions

    report.service = {
        "submissions": len(burst),
        "unique_jobs": len(unique_jobs),
        "client_faults_planned": len(planned_client),
        "zero_loss": zero_loss,
        "dedup_exact": dedup_exact,
        "executions_bounded": executions_bounded,
    }

    if not zero_loss:
        report.violations.append(
            f"service: job-loss ledger broken — completed={completed} "
            f"+ failed={failed} + persisted={persisted} != "
            f"accepted={accepted}")
    if not dedup_exact:
        report.violations.append(
            "service: a coalesced follower resolved with a different "
            "state/result than its primary")
    if not executions_bounded:
        report.violations.append(
            f"service: {executed} executions for {len(unique_jobs)} "
            f"unique jobs (bound {max_executions}) — dedup or requeue "
            f"bounds broken")


# ----------------------------------------------------------------------


def run_campaign(seed: int = 1234,
                 plan: Optional[ChaosPlan] = None,
                 workloads: Sequence[str] = DEFAULT_WORKLOADS,
                 config_names: Sequence[str] = DEFAULT_CONFIGS,
                 scale: float = DEFAULT_SCALE,
                 workers: int = 2,
                 submissions_per_job: int = 4,
                 skip_service: bool = False) -> CampaignReport:
    """Run the full chaos campaign; returns a deterministic report.

    All phases run inside isolated temporary cache directories, so a
    campaign never touches (or trusts) the developer's warm cache.
    """
    if plan is None:
        plan = campaign_plan(seed)
    report = CampaignReport(seed=plan.seed, plan=plan.to_payload())
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        _run_sweep_phase(report, plan, root, workloads, config_names,
                         scale, workers)
        if not skip_service:
            _run_service_phase(report, plan, root, workloads,
                               config_names[0], scale, submissions_per_job)
    return report
