"""Chaos injection runtime: the hooks the real seams consult.

Production code never imports :class:`~repro.chaos.plan.ChaosPlan`
directly; it calls the tiny hook functions here, every one of which is
a no-op costing one global-read when no plan is active.  The seams:

- :func:`maybe_kill_worker` — pool workers (``repro.tools.pool`` /
  ``repro.service.workers`` / ``repro.tools.parallel`` shards) call
  this before executing a task; an injected kill is ``os._exit(23)``,
  indistinguishable from a SIGKILL'd/OOM-killed worker from the
  parent's point of view.
- :func:`mangle_write` — the result cache and the trace cache route
  their payload bytes through this before writing; injected faults
  truncate the payload, flip a bit, or raise ``ENOSPC``.
- :func:`client_fault` — the service HTTP client consults this before
  each request; injected faults simulate connection-refused /
  connection-reset (as ``URLError``-shaped failures) or add delay.
- :func:`maybe_stall` — the scheduler dispatch path calls this;
  injected stalls sleep briefly, shaking out ordering assumptions.

Activation: :func:`activate` installs a plan process-globally (and into
``os.environ`` so pool workers inherit it); :func:`activate_from_env`
is called by ``worker_init`` inside fresh pool workers.  The
:func:`active` context manager scopes a plan to a block and always
restores the previous state.  Per-process fault counters are kept for
logs and tests; campaign *reports* only use plan-enumerated counts,
which are deterministic.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .plan import PLAN_ENV, ChaosPlan

_lock = threading.Lock()
_active_plan: Optional[ChaosPlan] = None
_counters: Dict[str, int] = {}

#: Exit code used for injected worker kills (distinct from the legacy
#: test hooks' 13, so post-mortems can tell the two apart).
KILL_EXIT_CODE = 23


class ChaosConnectionError(OSError):
    """Simulated connection-refused/reset raised at the client seam."""

    def __init__(self, flavor: str, key: str) -> None:
        super().__init__(errno.ECONNREFUSED if flavor == "refuse"
                         else errno.ECONNRESET,
                         f"chaos-injected connection {flavor} [{key}]")
        self.flavor = flavor
        self.key = key


def _bump(name: str) -> None:
    with _lock:
        _counters[name] = _counters.get(name, 0) + 1


def counters() -> Dict[str, int]:
    """Per-process injected-fault counters (diagnostics, not reports)."""
    with _lock:
        return dict(_counters)


def reset_counters() -> None:
    with _lock:
        _counters.clear()


# ----------------------------------------------------------------------
# Activation


def plan() -> Optional[ChaosPlan]:
    """The process's active plan (None = chaos off)."""
    return _active_plan


def activate(new_plan: ChaosPlan, export_env: bool = True) -> None:
    """Install *new_plan* globally; optionally export it to children."""
    global _active_plan
    with _lock:
        _active_plan = new_plan
    if export_env:
        os.environ[PLAN_ENV] = new_plan.to_json()


def deactivate() -> None:
    """Turn chaos off and scrub the environment."""
    global _active_plan
    with _lock:
        _active_plan = None
    os.environ.pop(PLAN_ENV, None)


def activate_from_env() -> Optional[ChaosPlan]:
    """Adopt the plan a parent exported (pool-worker initializer)."""
    global _active_plan
    inherited = ChaosPlan.from_env()
    if inherited is not None:
        with _lock:
            _active_plan = inherited
    return inherited


@contextmanager
def active(new_plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Scope *new_plan* to a block; restores the previous state after."""
    global _active_plan
    previous_plan = _active_plan
    previous_env = os.environ.get(PLAN_ENV)
    activate(new_plan)
    try:
        yield new_plan
    finally:
        with _lock:
            _active_plan = previous_plan
        if previous_env is None:
            os.environ.pop(PLAN_ENV, None)
        else:
            os.environ[PLAN_ENV] = previous_env


# ----------------------------------------------------------------------
# Seam hooks


def maybe_kill_worker(key: str) -> None:
    """Die like a SIGKILL'd worker when the plan says so.

    Callers gate this on *first* execution (requeued/recovered work
    passes a different key or skips the hook), so an injected kill is
    always recoverable and campaigns terminate.
    """
    current = _active_plan
    if current is None:
        return
    if current.decide("worker_kill", key) is not None:
        _bump("worker_kills")
        os._exit(KILL_EXIT_CODE)


def mangle_write(kind: str, key: str, data: bytes) -> bytes:
    """Corrupt payload bytes bound for disk, or raise ENOSPC.

    *kind* namespaces the key space (``result-cache`` /
    ``trace-cache``) so the same logical key draws independent
    decisions per store.  Returns the (possibly mangled) bytes;
    ``enospc`` raises :class:`OSError` exactly like a full disk.
    """
    current = _active_plan
    if current is None:
        return data
    flavor = current.decide("disk_fault", f"{kind}:{key}")
    if flavor is None:
        return data
    _bump(f"disk_{flavor}")
    if flavor == "enospc":
        raise OSError(errno.ENOSPC,
                      f"chaos-injected ENOSPC writing {kind}:{key}")
    if flavor == "truncate":
        return data[:max(1, len(data) // 3)]
    # bitflip: flip one bit somewhere past any magic/header prefix.
    if not data:
        return data
    position = min(len(data) - 1,
                   8 + (current.seed % max(1, len(data) - 8)))
    mangled = bytearray(data)
    mangled[position] ^= 0x10
    return bytes(mangled)


def client_fault(key: str) -> Optional[str]:
    """Fault decision for one client HTTP attempt.

    Returns ``None`` (no fault), or one of ``refuse`` / ``reset`` /
    ``delay``.  The *caller* raises/delays, so this stays import-light;
    :class:`ChaosConnectionError` is provided for the raise.
    """
    current = _active_plan
    if current is None:
        return None
    flavor = current.decide("client_fault", key)
    if flavor is not None:
        _bump(f"client_{flavor}")
    return flavor


def maybe_stall() -> float:
    """Injected scheduler stall; returns the seconds actually slept."""
    current = _active_plan
    if current is None:
        return 0.0
    with _lock:
        tick = _counters.get("sched_ticks", 0)
        _counters["sched_ticks"] = tick + 1
    if current.decide("sched_stall", f"tick-{tick}") is None:
        return 0.0
    _bump("sched_stalls")
    time.sleep(current.stall_seconds)
    return current.stall_seconds
