"""Declarative, seeded chaos plans: seed -> reproducible fault schedule.

A :class:`ChaosPlan` describes *which system-level seams* get attacked
and *how hard*, as per-seam fault rates.  The crucial property is that
every injection decision is a **pure function** of ``(seed, seam,
key)`` — no RNG state, no ordering dependence, no cross-process
coordination.  That makes a campaign:

- **reproducible**: the same seed injects the same faults at the same
  keys, run after run, machine after machine;
- **process-transparent**: a pool worker reaches the same decisions as
  the parent because the decision needs only the plan (shipped through
  the ``REPRO_CHAOS_PLAN`` environment variable), never a shared
  counter;
- **enumerable**: a report can list the planned faults for a known key
  space without having executed anything.

Seam names (see :mod:`repro.chaos.injector` for where each fires)::

    worker_kill   SIGKILL-style os._exit inside a pool worker
    disk_fault    mangled result-cache / trace-cache writes; flavors
                  ``truncate`` | ``bitflip`` | ``enospc``
    client_fault  dropped/reset/delayed service HTTP requests; flavors
                  ``refuse`` | ``reset`` | ``delay``
    sched_stall   injected stall in the scheduler dispatch path
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Environment variable carrying the active plan's JSON into workers.
PLAN_ENV = "REPRO_CHAOS_PLAN"

#: The seams a plan can attack.
SEAMS = ("worker_kill", "disk_fault", "client_fault", "sched_stall")

#: Flavors per multi-flavor seam, in deterministic pick order.
DISK_FLAVORS = ("truncate", "bitflip", "enospc")
CLIENT_FLAVORS = ("refuse", "reset", "delay")


def _decision_fraction(seed: int, seam: str, key: str) -> float:
    """Uniform [0, 1) fraction, a pure function of (seed, seam, key)."""
    digest = hashlib.sha256(
        f"chaos:{seed}:{seam}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _flavor_pick(seed: int, seam: str, key: str,
                 flavors: Tuple[str, ...]) -> str:
    digest = hashlib.sha256(
        f"chaos-flavor:{seed}:{seam}:{key}".encode("utf-8")).digest()
    return flavors[int.from_bytes(digest[:4], "big") % len(flavors)]


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded, declarative fault schedule over the system-level seams.

    Rates are probabilities in [0, 1] evaluated independently per key.
    A rate of 0 disables that seam entirely; :meth:`quiet` (all zeros)
    is the explicit no-chaos plan.
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    disk_fault_rate: float = 0.0
    client_fault_rate: float = 0.0
    sched_stall_rate: float = 0.0
    #: Seconds one injected scheduler stall sleeps.
    stall_seconds: float = 0.002
    #: Seconds one injected client delay sleeps.
    delay_seconds: float = 0.01

    def __post_init__(self) -> None:
        for name in ("worker_kill_rate", "disk_fault_rate",
                     "client_fault_rate", "sched_stall_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.stall_seconds < 0 or self.delay_seconds < 0:
            raise ValueError("stall/delay seconds must be >= 0")

    # ------------------------------------------------------------------
    # Decisions

    def _rate(self, seam: str) -> float:
        return {
            "worker_kill": self.worker_kill_rate,
            "disk_fault": self.disk_fault_rate,
            "client_fault": self.client_fault_rate,
            "sched_stall": self.sched_stall_rate,
        }[seam]

    def decide(self, seam: str, key: str) -> Optional[str]:
        """The fault (flavor name) injected at (seam, key), or None.

        Single-flavor seams return the seam name itself.  Stateless and
        deterministic: every process reaches the same verdict.
        """
        if seam not in SEAMS:
            raise ValueError(f"unknown chaos seam {seam!r}")
        rate = self._rate(seam)
        if rate <= 0.0:
            return None
        if _decision_fraction(self.seed, seam, key) >= rate:
            return None
        if seam == "disk_fault":
            return _flavor_pick(self.seed, seam, key, DISK_FLAVORS)
        if seam == "client_fault":
            return _flavor_pick(self.seed, seam, key, CLIENT_FLAVORS)
        return seam

    def planned_faults(self, seam: str,
                       keys: Iterable[str]) -> List[Tuple[str, str]]:
        """Enumerate (key, flavor) decisions over a known key space."""
        planned = []
        for key in keys:
            flavor = self.decide(seam, key)
            if flavor is not None:
                planned.append((key, flavor))
        return planned

    @property
    def any_faults(self) -> bool:
        return any(self._rate(seam) > 0.0 for seam in SEAMS)

    # ------------------------------------------------------------------
    # Serialization (environment round-trip into pool workers)

    def to_payload(self) -> Dict[str, float]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict[str, float]) -> "ChaosPlan":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown chaos-plan fields: {unknown}")
        return cls(**payload)

    @classmethod
    def from_json(cls, document: str) -> "ChaosPlan":
        payload = json.loads(document)
        if not isinstance(payload, dict):
            raise ValueError("chaos plan must be a JSON object")
        return cls.from_payload(payload)

    def env(self) -> Dict[str, str]:
        """Environment fragment that activates this plan in children."""
        return {PLAN_ENV: self.to_json()}

    @classmethod
    def from_env(cls) -> Optional["ChaosPlan"]:
        raw = os.environ.get(PLAN_ENV)
        if not raw or not raw.strip():
            return None
        try:
            return cls.from_json(raw)
        except (ValueError, TypeError):
            return None  # a garbled plan must never take the host down

    # ------------------------------------------------------------------

    @classmethod
    def quiet(cls, seed: int = 0) -> "ChaosPlan":
        """The explicit no-faults plan (oracle runs)."""
        return cls(seed=seed)

    @classmethod
    def standard(cls, seed: int) -> "ChaosPlan":
        """The default campaign mix: every seam lit at moderate rates."""
        return cls(seed=seed,
                   worker_kill_rate=0.25,
                   disk_fault_rate=0.35,
                   client_fault_rate=0.30,
                   sched_stall_rate=0.20)
