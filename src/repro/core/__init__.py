"""The paper's primary contribution: the TMA model and its analyses."""

from .export import (SCHEMA_VERSION, from_json, result_to_dict, to_csv,
                     to_json)
from .extensions import Level3Result, compute_level3
from .hierarchy import TmaNode, build_tree, render_tree
from .perlane import (LaneApproximation, PER_LANE_EVENTS, PerLaneRates,
                      frontend_error_of_lane_approx,
                      frontend_point_error_of_lane_approx, per_lane_rates,
                      render_table5, single_lane_approximation)
from .report import (format_percent, render_bar, render_breakdown_table,
                     render_comparison, render_result)
from .tma import (BOOM_RECOVER_LENGTH, BoomTmaModel, ROCKET_RECOVER_LENGTH,
                  RocketTmaModel, TOP_LEVEL, TmaInputs, TmaResult,
                  compute_tma)

__all__ = [
    "BOOM_RECOVER_LENGTH",
    "Level3Result",
    "SCHEMA_VERSION",
    "TmaNode",
    "build_tree",
    "compute_level3",
    "render_tree",
    "BoomTmaModel",
    "LaneApproximation",
    "PER_LANE_EVENTS",
    "PerLaneRates",
    "ROCKET_RECOVER_LENGTH",
    "RocketTmaModel",
    "TOP_LEVEL",
    "TmaInputs",
    "TmaResult",
    "compute_tma",
    "format_percent",
    "from_json",
    "result_to_dict",
    "to_csv",
    "to_json",
    "frontend_error_of_lane_approx",
    "frontend_point_error_of_lane_approx",
    "per_lane_rates",
    "render_bar",
    "render_breakdown_table",
    "render_comparison",
    "render_result",
    "render_table5",
    "single_lane_approximation",
]
