"""Machine-readable exports of TMA results (JSON / CSV).

The artifact's ``tma_tool`` writes plot data alongside its figures; the
reproduction's equivalent is a stable JSON schema (one document per
result, or a list for suites) and a flat CSV for spreadsheet users.
Schema stability is covered by tests, so downstream tooling can depend
on the field names.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from .extensions import Level3Result
from .tma import TOP_LEVEL, TmaResult

SCHEMA_VERSION = 1


def result_to_dict(result: TmaResult,
                   level3: Optional[Level3Result] = None) -> Dict:
    """Serialize one TMA result to a stable JSON-compatible dict."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "workload": result.workload,
        "config": result.config_name,
        "core": result.core,
        "cycles": result.cycles,
        "commit_width": result.commit_width,
        "instret": result.inputs.count("instr_retired"),
        "ipc": result.ipc,
        "level1": dict(result.level1),
        "level2": dict(result.level2),
        "metrics": dict(result.metrics),
        "events": dict(result.inputs.events),
    }
    if level3 is not None:
        payload["level3"] = {
            "l1_bound": level3.l1_bound,
            "l2_bound": level3.l2_bound,
            "dram_bound": level3.dram_bound,
            "tlb_bound": level3.tlb_bound,
            "core_breakdown": dict(level3.core_breakdown),
        }
    return payload


def to_json(results: Sequence[TmaResult], indent: int = 2) -> str:
    """Serialize one or more results to a JSON document."""
    payload = [result_to_dict(result) for result in results]
    return json.dumps(payload[0] if len(payload) == 1 else payload,
                      indent=indent, sort_keys=True)


def from_json(document: str) -> List[Dict]:
    """Parse an exported document back into dicts (schema-checked)."""
    payload = json.loads(document)
    items = payload if isinstance(payload, list) else [payload]
    for item in items:
        version = item.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema version {version!r} "
                f"(expected {SCHEMA_VERSION})")
    return items


def to_csv(results: Sequence[TmaResult]) -> str:
    """Flat CSV: one row per result, top-level + level-2 columns."""
    if not results:
        return ""
    level2_columns = sorted(
        {name for result in results for name in result.level2})
    fieldnames = (["workload", "config", "core", "cycles", "instret",
                   "ipc"] + list(TOP_LEVEL) + level2_columns)
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=fieldnames)
    writer.writeheader()
    for result in results:
        row = {
            "workload": result.workload,
            "config": result.config_name,
            "core": result.core,
            "cycles": result.cycles,
            "instret": result.inputs.count("instr_retired"),
            "ipc": f"{result.ipc:.4f}",
        }
        for name in TOP_LEVEL:
            row[name] = f"{result.level1[name]:.6f}"
        for name in level2_columns:
            row[name] = f"{result.level2.get(name, 0.0):.6f}"
        writer.writerow(row)
    return out.getvalue()
