"""Extensions beyond the paper: third-level TMA and TLB accounting.

The paper's conclusion lists "extend the TMA hierarchy to third- and
fourth levels" and "consider the impact of TLB behavior" as future
work; this module implements both on top of the reproduction's models,
with the caveats the paper itself would attach:

- The **Memory-Bound drill-down** (L1-bound / L2-bound / DRAM-bound)
  apportions the D$-blocked slots by where the in-flight misses were
  served.  A real PMU would need per-level refill events; the model
  derives the shares from the cache-hierarchy statistics of the run.
- The **TLB-bound estimate** is deliberately bottom-up (miss count ×
  fixed walk latency).  TMA exists because static costs mislead on
  latency-hiding hardware (§II-B), so the class is reported as an
  *upper bound* carved out of Backend, not an exact attribution.
- The **Core-Bound drill-down** for Rocket reuses the interlock events
  Rocket already exposes (load-use, mul/div, long-latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cores.base import CoreResult
from ..uarch.cache import DRAM_LATENCY, L2_512K
from ..uarch.tlb import L2_TLB_HIT_LATENCY, PTW_LATENCY
from .tma import TmaResult, compute_tma


@dataclass
class Level3Result:
    """Third-level TMA classes, as fractions of total slots."""

    base: TmaResult
    l1_bound: float
    l2_bound: float
    dram_bound: float
    tlb_bound: float
    core_breakdown: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"Level-3 TMA: {self.base.workload} on "
                 f"{self.base.config_name}"]
        lines.append("  MemBound drill-down:")
        for name, value in (("L1-bound", self.l1_bound),
                            ("L2-bound", self.l2_bound),
                            ("DRAM-bound", self.dram_bound)):
            lines.append(f"    {name:<11s}{100 * value:7.2f}%")
        lines.append(f"  TLB-bound (upper bound): "
                     f"{100 * self.tlb_bound:6.2f}%")
        if self.core_breakdown:
            lines.append("  CoreBound drill-down:")
            for name, value in self.core_breakdown.items():
                lines.append(f"    {name:<11s}{100 * value:7.2f}%")
        return "\n".join(lines)


def _memory_level_shares(result: CoreResult) -> Dict[str, float]:
    """Apportion memory stalls by the service level of the misses.

    Weight = (misses served at level) x (latency of that level); the
    D$-blocked slots split proportionally.  L1 hits under misses get
    the residual (conservatively small).
    """
    l1_misses = result.l1d_stats.misses
    l2_misses = result.l2_stats.misses
    l2_hits = max(0, l1_misses - l2_misses)
    weight_l2 = l2_hits * L2_512K.hit_latency
    weight_dram = l2_misses * (L2_512K.hit_latency + DRAM_LATENCY)
    total = weight_l2 + weight_dram
    if total == 0:
        return {"l1": 1.0, "l2": 0.0, "dram": 0.0}
    # A small share covers bank conflicts / L1-latency exposure.
    l1_share = 0.05
    return {
        "l1": l1_share,
        "l2": (1 - l1_share) * weight_l2 / total,
        "dram": (1 - l1_share) * weight_dram / total,
    }


def _tlb_bound(result: CoreResult) -> float:
    """Bottom-up upper bound on slots lost to TLB walks."""
    slots = max(1, result.cycles * result.commit_width)
    l2_misses = result.event("l2_tlb_miss")
    l1_only = max(0, result.event("itlb_miss")
                  + result.event("dtlb_miss") - l2_misses)
    lost_cycles = (l1_only * L2_TLB_HIT_LATENCY
                   + l2_misses * PTW_LATENCY)
    return min(1.0, lost_cycles * result.commit_width / slots)


def compute_level3(result: CoreResult,
                   base: Optional[TmaResult] = None) -> Level3Result:
    """Drill the level-2 Memory/Core Bound classes one level deeper."""
    base = base or compute_tma(result)
    mem_bound = max(0.0, base.level2.get("mem_bound", 0.0))
    shares = _memory_level_shares(result)

    core_breakdown: Dict[str, float] = {}
    if result.core == "rocket":
        cycles = max(1, result.cycles)
        core_breakdown = {
            "load-use": result.event("load_use_interlock") / cycles,
            "mul/div": result.event("muldiv_interlock") / cycles,
            "long-lat": result.event("long_latency_interlock") / cycles,
            "serialize": result.event("csr_interlock") / cycles,
        }

    return Level3Result(
        base=base,
        l1_bound=mem_bound * shares["l1"],
        l2_bound=mem_bound * shares["l2"],
        dram_bound=mem_bound * shares["dram"],
        tlb_bound=_tlb_bound(result),
        core_breakdown=core_breakdown)
