"""Hierarchical TMA view: the Fig. 5 class tree as a data structure.

``render_result`` prints flat level-1/level-2 tables; profiling UIs
(VTune, AMD uProf) present TMA as an expandable tree instead.  This
module assembles :class:`~repro.core.tma.TmaResult` (and optionally the
level-3 extension) into a :class:`TmaNode` tree that supports drill-down
queries and an indented ASCII rendering:

    Backend  55.5%
      MemBound  56.5%
        DRAM-bound  54.8%
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .extensions import Level3Result
from .tma import TmaResult


@dataclass
class TmaNode:
    """One class in the TMA hierarchy."""

    name: str
    fraction: float
    children: List["TmaNode"] = field(default_factory=list)

    def child(self, name: str) -> "TmaNode":
        for node in self.children:
            if node.name == name:
                return node
        raise KeyError(f"{self.name} has no child {name!r}")

    def walk(self):
        """Yield (depth, node) in pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def dominant_path(self) -> List["TmaNode"]:
        """Follow the largest child at every level (the drill-down a
        performance engineer would take)."""
        path = [self]
        node = self
        while node.children:
            node = max(node.children, key=lambda n: n.fraction)
            path.append(node)
        return path

    def render(self, width: int = 28) -> str:
        lines = []
        for depth, node in self.walk():
            if depth == 0:
                continue  # skip the synthetic root
            indent = "  " * (depth - 1)
            label = f"{indent}{node.name}"
            lines.append(f"{label:<{width}s}{100 * node.fraction:7.2f}%")
        return "\n".join(lines)


def build_tree(result: TmaResult,
               level3: Optional[Level3Result] = None) -> TmaNode:
    """Assemble the Fig. 5 hierarchy (plus optional level-3 leaves)."""
    root = TmaNode("slots", 1.0)
    retiring = TmaNode("Retiring", result.level1["retiring"])
    bad_spec = TmaNode("BadSpeculation",
                       result.level1["bad_speculation"])
    frontend = TmaNode("Frontend", result.level1["frontend"])
    backend = TmaNode("Backend", result.level1["backend"])
    root.children = [retiring, bad_spec, frontend, backend]

    level2 = result.level2
    if result.core == "boom":
        bad_spec.children = [
            TmaNode("MachineClears", level2["machine_clears"]),
            TmaNode("BranchMispredicts", level2["branch_mispredicts"]),
        ]
        bad_spec.child("BranchMispredicts").children = [
            TmaNode("Resteering", level2["resteering"]),
            TmaNode("RecoveryBubbles", level2["recovery_bubbles"]),
        ]
    frontend.children = [
        TmaNode("FetchLatency", level2["fetch_latency"]),
        TmaNode("PCResolution", level2["pc_resolution"]),
    ]
    mem = TmaNode("MemBound", level2["mem_bound"])
    core = TmaNode("CoreBound", level2["core_bound"])
    backend.children = [core, mem]

    if result.core == "rocket":
        core.children = [
            TmaNode("LoadUse", level2["load_use_interlock"]),
            TmaNode("MulDiv", level2["muldiv_interlock"]),
            TmaNode("LongLatency", level2["long_latency_interlock"]),
        ]

    if level3 is not None:
        mem.children = [
            TmaNode("L1-bound", level3.l1_bound),
            TmaNode("L2-bound", level3.l2_bound),
            TmaNode("DRAM-bound", level3.dram_bound),
        ]
        backend.children.append(
            TmaNode("TLB-bound*", level3.tlb_bound))
    return root


def render_tree(result: TmaResult,
                level3: Optional[Level3Result] = None) -> str:
    """One-call hierarchical report."""
    root = build_tree(result, level3=level3)
    header = (f"TMA hierarchy: {result.workload} on "
              f"{result.config_name} (IPC {result.ipc:.3f})")
    return header + "\n" + root.render()
