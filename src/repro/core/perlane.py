"""Per-lane event study (Table V and the §V-A approximation analysis).

The paper models Fetch-bubbles, D$-blocked and Uops-issued as per-lane
events and asks how much accuracy is lost by monitoring only one lane.
Fetch-bubble lanes are correlated (lane 0 fires least — it only fires
when the frontend supplied nothing at all), so the lightweight heuristic
``total ~ W_C * lane0`` lands within about ±10% of the full per-lane
model's Frontend category.  Uops-issued and D$-blocked lanes are *not*
symmetric (only the last queue handles FP µops), so the same trick fails
for them — exactly the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cores.base import CoreResult

PER_LANE_EVENTS = ("fetch_bubbles", "dcache_blocked", "uops_issued")


@dataclass
class PerLaneRates:
    """Per-lane event rates (events per total cycle), one workload."""

    workload: str
    cycles: int
    rates: Dict[str, List[float]]

    def lane_rate(self, event: str, lane: int) -> float:
        lanes = self.rates.get(event, [])
        return lanes[lane] if lane < len(lanes) else 0.0


def per_lane_rates(result: CoreResult,
                   events: Sequence[str] = PER_LANE_EVENTS,
                   lane_counts: Optional[Dict[str, int]] = None
                   ) -> PerLaneRates:
    """Table V rows: per-lane totals normalized by total cycles."""
    cycles = max(1, result.cycles)
    lane_counts = lane_counts or {}
    rates: Dict[str, List[float]] = {}
    for event in events:
        lanes = list(result.lanes(event))
        want = lane_counts.get(event, 0)
        while len(lanes) < want:
            lanes.append(0)
        rates[event] = [count / cycles for count in lanes]
    return PerLaneRates(workload=result.workload, cycles=result.cycles,
                        rates=rates)


@dataclass
class LaneApproximation:
    """Single-lane approximation vs. the full per-lane event."""

    event: str
    exact_total: int
    approx_total: float
    lanes_used: int

    @property
    def relative_error(self) -> float:
        if self.exact_total == 0:
            return 0.0 if self.approx_total == 0 else float("inf")
        return (self.approx_total - self.exact_total) / self.exact_total


def single_lane_approximation(result: CoreResult, event: str,
                              lane: int = 0) -> LaneApproximation:
    """Approximate the event total as ``num_lanes * lane_count``.

    For ``fetch_bubbles`` on a 3-wide BOOM this is the paper's
    ``3 x Fetch-bubble1`` heuristic.
    """
    lanes = result.lanes(event)
    width = max(len(lanes), result.commit_width)
    lane_count = lanes[lane] if lane < len(lanes) else 0
    return LaneApproximation(
        event=event, exact_total=result.event(event),
        approx_total=float(width * lane_count), lanes_used=width)


def frontend_error_of_lane_approx(result: CoreResult) -> float:
    """Relative error in the Frontend TMA category when Fetch-bubbles is
    approximated from its least-firing lane (§V-A: within about ±10%)."""
    approx = single_lane_approximation(result, "fetch_bubbles", lane=0)
    exact_frontend = result.event("fetch_bubbles")
    if exact_frontend == 0:
        return 0.0
    return (approx.approx_total - exact_frontend) / exact_frontend


def frontend_point_error_of_lane_approx(result: CoreResult) -> float:
    """The same approximation error expressed in percentage points of
    total slots (how far the Frontend *category* moves)."""
    approx = single_lane_approximation(result, "fetch_bubbles", lane=0)
    slots = max(1, result.cycles * result.commit_width)
    return (approx.approx_total - result.event("fetch_bubbles")) / slots


def render_table5(rows: Sequence[PerLaneRates],
                  lane_counts: Dict[str, int]) -> str:
    """Render Table V: per-lane events per total cycles."""
    events = list(lane_counts)
    header = f"{'Benchmark':<18s}"
    for event in events:
        for lane in range(lane_counts[event]):
            header += f"{event[:4]}{lane:>2d} "
    lines = [header]
    for row in rows:
        cells = [f"{row.workload:<18.18s}"]
        for event in events:
            for lane in range(lane_counts[event]):
                cells.append(f"{row.lane_rate(event, lane):6.2f} ")
        lines.append("".join(cells))
    return "\n".join(lines)
