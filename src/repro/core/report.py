"""Rendering helpers: the ``tma_tool`` text output (tables + bars).

FireSim plots become ASCII in this reproduction: every figure in the
bench suite renders through these helpers, so the rows/series the paper
reports can be regenerated and eyeballed from a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .tma import TOP_LEVEL, TmaResult

_BAR_WIDTH = 40
_CLASS_LABELS = {
    "retiring": "Retiring",
    "bad_speculation": "BadSpec",
    "frontend": "Frontend",
    "backend": "Backend",
    "machine_clears": "MachClears",
    "branch_mispredicts": "BrMispred",
    "resteering": "Resteer",
    "recovery_bubbles": "RecovBub",
    "fetch_latency": "FetchLat",
    "pc_resolution": "PCRes",
    "mem_bound": "MemBound",
    "core_bound": "CoreBound",
    "load_use_interlock": "LdUse",
    "muldiv_interlock": "MulDiv",
    "long_latency_interlock": "LongLat",
}


def _clamp(fraction: float) -> float:
    return max(0.0, min(1.0, fraction))


def format_percent(fraction: float) -> str:
    return f"{100.0 * fraction:6.2f}%"


def render_bar(fractions: Dict[str, float], width: int = _BAR_WIDTH) -> str:
    """One stacked top-level bar: R=Retiring B=BadSpec F=Frontend D=Backend."""
    glyphs = {"retiring": "R", "bad_speculation": "B", "frontend": "F",
              "backend": "D"}
    cells: List[str] = []
    for name in TOP_LEVEL:
        count = round(_clamp(fractions.get(name, 0.0)) * width)
        cells.append(glyphs[name] * count)
    bar = "".join(cells)[:width]
    return "|" + bar.ljust(width, ".") + "|"


def render_result(result: TmaResult, show_level2: bool = True) -> str:
    """Full per-workload report (the perf-tool view)."""
    lines = [
        f"TMA: {result.workload} on {result.config_name} "
        f"({result.core}, W_C={result.commit_width})",
        f"  cycles={result.cycles}  "
        f"instret={result.inputs.count('instr_retired')}  "
        f"IPC={result.ipc:.3f}",
        "  " + render_bar(result.level1),
    ]
    for name in TOP_LEVEL:
        lines.append(f"  {_CLASS_LABELS[name]:<11s}"
                     f"{format_percent(result.level1[name])}")
    if show_level2:
        lines.append("  -- level 2 --")
        for name, value in result.level2.items():
            label = _CLASS_LABELS.get(name, name)
            lines.append(f"  {label:<11s}{format_percent(value)}")
    return "\n".join(lines)


def render_breakdown_table(results: Sequence[TmaResult],
                           classes: Optional[Sequence[str]] = None,
                           title: str = "") -> str:
    """Fig. 7-style table: one row per workload, one column per class."""
    classes = list(classes or TOP_LEVEL)
    header_cells = [f"{_CLASS_LABELS.get(c, c):>11s}" for c in classes]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'workload':<18s}" + "".join(header_cells)
                 + f"{'IPC':>8s}")
    for result in results:
        row = [f"{result.workload:<18.18s}"]
        for cls in classes:
            row.append(f"{format_percent(result.fraction(cls)):>11s}")
        row.append(f"{result.ipc:8.3f}")
        lines.append("".join(row))
    return "\n".join(lines)


def render_comparison(before: TmaResult, after: TmaResult,
                      label_before: str, label_after: str,
                      classes: Optional[Sequence[str]] = None) -> str:
    """Case-study view: two configurations side by side with deltas."""
    classes = list(classes or TOP_LEVEL)
    lines = [f"{'class':<12s}{label_before:>12s}{label_after:>12s}"
             f"{'delta':>10s}"]
    for cls in classes:
        b = before.fraction(cls)
        a = after.fraction(cls)
        lines.append(f"{_CLASS_LABELS.get(cls, cls):<12s}"
                     f"{format_percent(b):>12s}{format_percent(a):>12s}"
                     f"{100.0 * (a - b):>+9.2f}%")
    speedup = (before.cycles / after.cycles) if after.cycles else 0.0
    lines.append(f"{'cycles':<12s}{before.cycles:>12d}{after.cycles:>12d}"
                 f"{'x%.3f' % speedup:>10s}")
    return "\n".join(lines)
