"""Top-Down Microarchitectural Analysis models (Table II, Fig. 5).

Implements the paper's TMA formulas for both cores.  Inputs are the raw
event counts the PMU (or a core run) produces; outputs are the top-level
class fractions (Retiring / Bad Speculation / Frontend / Backend) and the
second-level drill-down of Fig. 5.

Notes on fidelity:

- ``C_bm`` aggregates direction mispredicts and control-flow target
  mispredicts; both flush the pipeline the same way in BOOM.
- The recovery-length constant ``M_rl = 4`` comes straight from the
  paper's temporal measurement (Fig. 8b: almost every Recovering
  sequence is exactly four cycles).
- Table II mixes slot units and cycle units between the top-level
  ``BadSpec`` term (``(C_rec + M_rl*C_bm) * W_C``) and the lower-level
  ``RecovBub`` (``C_rec / M_total``); we implement the formulas exactly
  as printed and expose the raw values so users can renormalize.
- The model deliberately *overestimates* branch-mispredict impact by
  assuming every recovery bubble comes from a mispredict, as §IV-A
  states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from ..cores.base import CoreResult
from ..pmu.harness import Measurement

#: Cycles from decode to issue: the dominant Recovering length (Fig. 8b).
BOOM_RECOVER_LENGTH = 4
ROCKET_RECOVER_LENGTH = 3

TOP_LEVEL = ("retiring", "bad_speculation", "frontend", "backend")


@dataclass
class TmaInputs:
    """Raw counter values feeding the TMA model."""

    core: str
    workload: str
    config_name: str
    cycles: int
    commit_width: int
    events: Dict[str, int] = field(default_factory=dict)

    def count(self, name: str) -> int:
        return self.events.get(name, 0)

    @staticmethod
    def from_core_result(result: CoreResult) -> "TmaInputs":
        return TmaInputs(core=result.core, workload=result.workload,
                         config_name=result.config_name,
                         cycles=result.cycles,
                         commit_width=result.commit_width,
                         events=dict(result.events))

    @staticmethod
    def from_measurement(measurement: Measurement) -> "TmaInputs":
        result = measurement.result
        commit_width = result.commit_width if result is not None else 1
        cycles = measurement.cycles or (result.cycles if result else 0)
        return TmaInputs(core=measurement.core,
                         workload=measurement.workload,
                         config_name=measurement.config_name,
                         cycles=cycles, commit_width=commit_width,
                         events=dict(measurement.events))


@dataclass
class TmaResult:
    """TMA classification for one (workload, config) pair."""

    workload: str
    config_name: str
    core: str
    cycles: int
    commit_width: int
    level1: Dict[str, float]
    level2: Dict[str, float]
    metrics: Dict[str, float]
    inputs: TmaInputs

    @property
    def ipc(self) -> float:
        retired = self.inputs.count("instr_retired")
        return retired / self.cycles if self.cycles else 0.0

    def fraction(self, name: str) -> float:
        if name in self.level1:
            return self.level1[name]
        return self.level2[name]

    def dominant_class(self) -> str:
        """The top-level class (other than retiring) with the most slots."""
        candidates = {k: v for k, v in self.level1.items()
                      if k != "retiring"}
        return max(candidates, key=candidates.get)

    def top_level_sum(self) -> float:
        return sum(self.level1.values())


def _safe_ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


class BoomTmaModel:
    """Table II, implemented verbatim."""

    def __init__(self, recover_length: int = BOOM_RECOVER_LENGTH) -> None:
        self.recover_length = recover_length

    def compute(self, inputs: TmaInputs) -> TmaResult:
        w_c = inputs.commit_width
        cycles = inputs.cycles
        m_total = cycles * w_c
        if m_total == 0:
            raise ValueError("cannot run TMA over zero cycles")

        c_ret = inputs.count("uops_retired") or inputs.count("instr_retired")
        c_issued = inputs.count("uops_issued")
        c_rec = inputs.count("recovering")
        c_fetch = inputs.count("fetch_bubbles")
        c_iblk = inputs.count("icache_blocked")
        c_db = inputs.count("dcache_blocked")
        c_flush = inputs.count("flush")
        c_bm = (inputs.count("br_mispredict")
                + inputs.count("cf_target_mispredict"))
        c_fence = inputs.count("fence_retired")

        # Derived metrics (Table II, top block).
        m_tf = c_flush + c_bm + c_fence
        m_br_mr = _safe_ratio(c_bm, m_tf)
        m_nf_r = _safe_ratio(c_bm + c_fence, m_tf)
        m_fl_r = _safe_ratio(c_flush, m_tf)
        m_rl = self.recover_length

        lost_uops = max(0, c_issued - c_ret)

        retiring = c_ret / m_total
        bad_spec = (lost_uops * m_nf_r
                    + (c_rec + m_rl * c_bm) * w_c) / m_total
        frontend = c_fetch / m_total
        backend = 1.0 - frontend - bad_spec - retiring

        # Lower-level TMA (Table II, bottom block).
        machine_clears = lost_uops * m_fl_r / m_total
        br_mispredict = (lost_uops * m_br_mr + c_rec) / m_total
        resteering = lost_uops * m_br_mr / m_total
        recovery_bubbles = c_rec / m_total
        fetch_latency = c_iblk * w_c / m_total
        pc_resolution = frontend - fetch_latency
        mem_bound = c_db / m_total
        core_bound = backend - mem_bound

        metrics = {
            "m_total": float(m_total),
            "m_tf": float(m_tf),
            "m_br_mr": m_br_mr,
            "m_nf_r": m_nf_r,
            "m_fl_r": m_fl_r,
            "m_rl": float(m_rl),
            "lost_uops": float(lost_uops),
        }
        level1 = {
            "retiring": retiring,
            "bad_speculation": bad_spec,
            "frontend": frontend,
            "backend": backend,
        }
        level2 = {
            "machine_clears": machine_clears,
            "branch_mispredicts": br_mispredict,
            "resteering": resteering,
            "recovery_bubbles": recovery_bubbles,
            "fetch_latency": fetch_latency,
            "pc_resolution": pc_resolution,
            "mem_bound": mem_bound,
            "core_bound": core_bound,
        }
        return TmaResult(workload=inputs.workload,
                         config_name=inputs.config_name, core="boom",
                         cycles=cycles, commit_width=w_c, level1=level1,
                         level2=level2, metrics=metrics, inputs=inputs)


class RocketTmaModel:
    """The Rocket TMA model (Fig. 5, left) — W_C = 1 simplifies Table II.

    Rocket resolves branches in execute and never issues wrong-path
    work, so ``C_issued - C_ret ~ 0`` and Bad Speculation reduces to the
    Recovering window (which already includes the redirect penalty).
    The backend split uses Rocket's pre-existing D$-blocked event; the
    interlock events provide a Core-Bound drill-down.
    """

    def compute(self, inputs: TmaInputs) -> TmaResult:
        cycles = inputs.cycles
        if cycles == 0:
            raise ValueError("cannot run TMA over zero cycles")

        c_ret = inputs.count("instr_retired")
        c_issued = inputs.count("instr_issued")
        c_rec = inputs.count("recovering")
        c_fetch = inputs.count("fetch_bubbles")
        c_iblk = inputs.count("icache_blocked")
        c_db = inputs.count("dcache_blocked")
        c_bm = (inputs.count("cobr_mispredict")
                + inputs.count("cf_target_mispredict"))

        lost = max(0, c_issued - c_ret)
        retiring = c_ret / cycles
        bad_spec = (lost + c_rec) / cycles
        frontend = c_fetch / cycles
        backend = 1.0 - frontend - bad_spec - retiring

        mem_bound = c_db / cycles
        core_bound = backend - mem_bound
        fetch_latency = c_iblk / cycles
        pc_resolution = frontend - fetch_latency
        load_use = inputs.count("load_use_interlock") / cycles
        muldiv = inputs.count("muldiv_interlock") / cycles
        long_latency = inputs.count("long_latency_interlock") / cycles

        metrics = {
            "m_total": float(cycles),
            "mispredicts": float(c_bm),
            "lost_instructions": float(lost),
        }
        level1 = {
            "retiring": retiring,
            "bad_speculation": bad_spec,
            "frontend": frontend,
            "backend": backend,
        }
        level2 = {
            "mem_bound": mem_bound,
            "core_bound": core_bound,
            "fetch_latency": fetch_latency,
            "pc_resolution": pc_resolution,
            "load_use_interlock": load_use,
            "muldiv_interlock": muldiv,
            "long_latency_interlock": long_latency,
        }
        return TmaResult(workload=inputs.workload,
                         config_name=inputs.config_name, core="rocket",
                         cycles=cycles, commit_width=1, level1=level1,
                         level2=level2, metrics=metrics, inputs=inputs)


def compute_tma(source: Union[CoreResult, Measurement, TmaInputs]
                ) -> TmaResult:
    """Classify slots for a core run, a PMU measurement, or raw inputs."""
    if isinstance(source, CoreResult):
        inputs = TmaInputs.from_core_result(source)
    elif isinstance(source, Measurement):
        inputs = TmaInputs.from_measurement(source)
    else:
        inputs = source
    if inputs.core == "rocket":
        return RocketTmaModel().compute(inputs)
    return BoomTmaModel().compute(inputs)


def split_slots(total: float, weight_a: float,
                weight_b: float) -> Dict[str, float]:
    """Split *total* slots between two causes with an exact float sum.

    Used by the multicore interference layer to divide Memory-Bound
    slots into self vs. neighbor-induced shares proportionally to the
    penalty weights each cause contributed.  The naive proportional
    split can miss ``total`` by an ulp under IEEE rounding; the
    correction loop below pins ``a + b == total`` *exactly* (required
    by the attribution invariant tests).  A zero weight yields an exact
    0.0 share, so "no neighbor penalty" means exactly zero
    neighbor-induced slots.
    """
    denom = weight_a + weight_b
    if weight_b <= 0.0 or denom <= 0.0:
        return {"a": total, "b": 0.0}
    if weight_a <= 0.0:
        return {"a": 0.0, "b": total}
    share_b = total * (weight_b / denom)
    share_a = total - share_b
    for _ in range(2):
        if share_a + share_b == total:
            break
        share_b = total - share_a
        share_a = total - share_b
    return {"a": share_a, "b": share_b}
