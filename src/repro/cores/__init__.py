"""Core timing models and Table IV configurations."""

from .base import (BoomConfig, CoreFaultHook, CoreResult, EventAccumulator,
                   RocketConfig, SignalObserver, check_cycle_budget,
                   check_run_completed)
from .boom import BoomCore
from .configs import (ALL_BOOM_CONFIGS, CONFIGS_BY_NAME, GIGA_BOOM,
                      LARGE_BOOM, MEDIUM_BOOM, MEGA_BOOM, ROCKET,
                      SMALL_BOOM, config_by_name)
from .rocket import RocketCore

__all__ = [
    "ALL_BOOM_CONFIGS",
    "BoomConfig",
    "BoomCore",
    "CONFIGS_BY_NAME",
    "CoreFaultHook",
    "CoreResult",
    "EventAccumulator",
    "GIGA_BOOM",
    "LARGE_BOOM",
    "MEDIUM_BOOM",
    "MEGA_BOOM",
    "ROCKET",
    "RocketConfig",
    "RocketCore",
    "SMALL_BOOM",
    "SignalObserver",
    "check_cycle_budget",
    "check_run_completed",
    "config_by_name",
]
