"""Core timing models and Table IV configurations."""

from .base import (BoomConfig, CoreFaultHook, CoreResult, EventAccumulator,
                   RocketConfig, SignalObserver, check_cycle_budget,
                   check_run_completed)
from .batch import (DEFAULT_GRID, BatchResult, BatchStats, GridPoint,
                    canonical_grid_key, parse_grid, point_from_key,
                    resolve_config_spec, run_batch)
from .boom import BoomCore
from .configs import (ALL_BOOM_CONFIGS, CONFIGS_BY_NAME, GIGA_BOOM,
                      LARGE_BOOM, MEDIUM_BOOM, MEGA_BOOM, ROCKET,
                      SMALL_BOOM, config_by_name)
from .rocket import RocketCore

__all__ = [
    "ALL_BOOM_CONFIGS",
    "BatchResult",
    "BatchStats",
    "BoomConfig",
    "BoomCore",
    "DEFAULT_GRID",
    "GridPoint",
    "CONFIGS_BY_NAME",
    "CoreFaultHook",
    "CoreResult",
    "EventAccumulator",
    "GIGA_BOOM",
    "LARGE_BOOM",
    "MEDIUM_BOOM",
    "MEGA_BOOM",
    "ROCKET",
    "RocketConfig",
    "RocketCore",
    "SMALL_BOOM",
    "SignalObserver",
    "canonical_grid_key",
    "check_cycle_budget",
    "check_run_completed",
    "config_by_name",
    "parse_grid",
    "point_from_key",
    "resolve_config_spec",
    "run_batch",
]
