"""Common core-model infrastructure: configs, signals, results, observers.

Signal convention
-----------------

Each cycle a core produces a mapping ``{event_name: lane_bitmask}`` where
bit *i* of the mask is the boolean signal of event source *i* in that
cycle (single-source events use bit 0).  This is exactly the wire-level
view the PMU counter architectures (Fig. 6) and the TracerV-style tracer
(§IV-C) tap, so the same per-cycle dictionary drives:

- the core's own aggregate event totals (fast path, always on),
- attached :class:`SignalObserver` instances — counter-architecture
  hardware models and the cycle tracer (slow path, opt-in).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Protocol

from ..isa.errors import RunTimeout
from ..uarch.branch import PredictorStats
from ..uarch.cache import CacheConfig, CacheStats, L1D_32K

#: Environment knob selecting the timing-engine implementation, the
#: timing-layer mirror of ``REPRO_EXEC_ENGINE``:
#:
#: - ``columnar`` (default) — descriptor-compiled cycle loops reading
#:   the :class:`~repro.isa.columnar.ColumnarTrace` columns directly;
#: - ``objects``  — the original ``DynInst``-walking loops, kept as the
#:   bit-identical reference oracle.
TIMING_ENGINE_ENV = "REPRO_TIMING_ENGINE"

#: Valid values for :data:`TIMING_ENGINE_ENV` / ``engine=`` arguments.
TIMING_ENGINES = ("columnar", "objects")


def resolve_timing_engine(override: Optional[str] = None) -> str:
    """Resolve the timing engine: explicit *override*, else env, else default.

    Raises ``ValueError`` on an unknown engine name so a typo in a CI
    matrix or CLI flag fails loudly instead of silently running the
    default engine.
    """
    engine = override if override is not None else os.environ.get(
        TIMING_ENGINE_ENV, TIMING_ENGINES[0])
    engine = engine.strip().lower()
    if engine not in TIMING_ENGINES:
        raise ValueError(
            f"unknown timing engine {engine!r}; expected one of "
            f"{', '.join(TIMING_ENGINES)}")
    return engine


class SignalObserver(Protocol):
    """Anything that wants the per-cycle event signals (PMU HW, tracer)."""

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        """Observe the lane bitmasks of every event for one cycle."""
        ...  # pragma: no cover - protocol


class CoreFaultHook(Protocol):
    """Injection point the fault injector uses to stall a core.

    A core consults the hook at the top of every simulated cycle; a
    ``True`` return means the whole pipeline is frozen that cycle (a
    hung memory system / clock-gated core), so the cycle passes with no
    fetch, issue, or commit and no signals.  Combined with the
    ``max_cycles`` watchdog this models — and detects — runaway runs.
    """

    def stall_cycle(self, cycle: int) -> bool:
        ...  # pragma: no cover - protocol


def check_cycle_budget(cycle: int, max_cycles: Optional[int], *,
                       workload: str, retired: int, total: int) -> None:
    """Watchdog guard for core run loops.

    Raises :class:`~repro.isa.errors.RunTimeout` once *cycle* reaches
    the optional *max_cycles* budget.  Cores call this every cycle when
    a budget is armed (the resilient runner sets one; default off).
    """
    if max_cycles is not None and cycle >= max_cycles:
        raise RunTimeout(
            f"run exceeded its cycle budget with "
            f"{retired}/{total} instructions retired",
            invariant="cycle-budget", workload=workload,
            observed=cycle, expected=max_cycles)


def check_run_completed(retired: int, total: int, cycle: int,
                        max_cycles: Optional[int], *,
                        workload: str) -> None:
    """Post-loop watchdog: a budgeted run must retire the whole trace.

    Covers the case where the core's internal safety stop fires before
    the armed ``max_cycles`` budget — still a hang, still a timeout.
    """
    if max_cycles is not None and retired < total:
        raise RunTimeout(
            f"run stopped after {cycle} cycles with only "
            f"{retired}/{total} instructions retired",
            invariant="run-completion", workload=workload,
            observed=retired, expected=total)


@dataclass(frozen=True)
class RocketConfig:
    """Rocket core parameters (Table IV column 1)."""

    name: str = "Rocket"
    fetch_width: int = 2
    ibuf_entries: int = 4
    bht_entries: int = 512
    btb_entries: int = 28
    l1d: CacheConfig = L1D_32K
    # Redirect latency after a mispredict (recovery length, cycles).
    redirect_latency: int = 3
    core: str = "rocket"

    @property
    def commit_width(self) -> int:
        return 1


@dataclass(frozen=True)
class BoomConfig:
    """BOOM core parameters (Table IV columns 2-6)."""

    name: str
    fetch_width: int
    decode_width: int            # also the commit width W_C
    rob_entries: int
    iq_int: int
    iq_mem: int
    iq_fp: int
    ldq_entries: int
    stq_entries: int
    mshrs: int
    issue_int: int               # issue ports per queue; sum = W_I
    issue_mem: int
    issue_fp: int
    fetch_buffer_entries: int = 0   # 0 -> 2 x fetch_width
    btb_entries: int = 512
    l1d: CacheConfig = L1D_32K
    # Flush-to-first-valid-fetch latency.  The Recovering window opens
    # the cycle after the flush, so 5 yields the dominant 4-cycle
    # Recovering sequence of Fig. 8b (and the model's M_rl = 4).
    redirect_latency: int = 5
    # Next-line I$ prefetch (BOOM's frontend prefetcher); the ablation
    # bench switches it off to expose straight-line fetch latency.
    icache_prefetch: bool = True
    # Direction predictor: "tage" (Table IV), "gshare", or "bimodal";
    # the predictor-sensitivity ablation sweeps this.
    branch_predictor: str = "tage"
    # Optional stride data prefetcher on the L1D (off by default to
    # match Table IV; the prefetch ablation switches it on).
    dcache_prefetch: bool = False
    core: str = "boom"

    @property
    def commit_width(self) -> int:
        return self.decode_width

    @property
    def issue_width(self) -> int:
        """Total issue width W_I."""
        return self.issue_int + self.issue_mem + self.issue_fp

    @property
    def fetch_buffer_size(self) -> int:
        return self.fetch_buffer_entries or 2 * self.fetch_width


@dataclass
class CoreResult:
    """Everything a core run produces.

    ``events`` holds total *slot* counts per event (summed over lanes and
    cycles); ``lane_events`` holds the per-lane totals used by the
    per-lane study (Table V).
    """

    workload: str
    config_name: str
    core: str
    cycles: int
    instret: int
    events: Dict[str, int]
    lane_events: Dict[str, List[int]]
    commit_width: int
    issue_width: int
    l1i_stats: CacheStats
    l1d_stats: CacheStats
    l2_stats: CacheStats
    predictor_stats: PredictorStats
    extra: Dict[str, float] = field(default_factory=dict)
    #: True when the result was *extrapolated* from periodic sample
    #: windows (``repro.cores.windowed`` sampled mode) rather than a
    #: full simulation — it must never masquerade as exact.
    sampled: bool = False
    #: Windowed-run metadata (window count, warmup, spans, per-window
    #: wall times, sampled error bars); ``None`` for plain runs.  The
    #: dict is JSON-able so it rides result serialization unchanged.
    windowed: Optional[Dict[str, object]] = None

    @property
    def ipc(self) -> float:
        return self.instret / self.cycles if self.cycles else 0.0

    def event(self, name: str) -> int:
        """Total slot count of *name* (0 when never asserted)."""
        return self.events.get(name, 0)

    def lanes(self, name: str) -> List[int]:
        """Per-lane totals of *name* ([] when never asserted)."""
        return self.lane_events.get(name, [])


class EventAccumulator:
    """Accumulates per-cycle lane bitmasks into totals and lane counts.

    Per-lane totals are only maintained for the event names listed in
    *track_lanes* (the per-lane study of Table V needs them; everything
    else only needs aggregate slot counts).
    """

    __slots__ = ("totals", "lane_totals", "_track")

    def __init__(self, track_lanes: Optional[set] = None) -> None:
        self.totals: Dict[str, int] = {}
        self.lane_totals: Dict[str, List[int]] = {}
        self._track = track_lanes or set()

    def add(self, signals: Mapping[str, int]) -> None:
        totals = self.totals
        track = self._track
        for name, mask in signals.items():
            if not mask:
                continue
            # Single-lane signals (mask == 1, the overwhelmingly common
            # case) skip the popcount.
            count = 1 if mask == 1 else mask.bit_count()
            if name in totals:
                totals[name] += count
            else:
                totals[name] = count
            if track and name in track:
                per_lane = self.lane_totals.get(name)
                if per_lane is None:
                    per_lane = []
                    self.lane_totals[name] = per_lane
                bit = 0
                m = mask
                while m:
                    if m & 1:
                        while len(per_lane) <= bit:
                            per_lane.append(0)
                        per_lane[bit] += 1
                    m >>= 1
                    bit += 1
