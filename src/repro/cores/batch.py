"""Batched multi-config timing engine: one trace pass, N core configs.

A design-space sweep replays the *same* workload trace through many
core configurations ({Rocket, BOOM-s/m/l} x cache/branch/width
variants).  Run independently, every configuration re-pays the shared
floor: fetching (or functionally re-executing) the trace, compiling
the per-family descriptor tables, and re-deriving the TAGE history
folds that are a pure function of the masked global history.  PR 5
measured that floor at ~27% of columnar wall time — a grid of four
burns it four times per trace.

:func:`run_batch` runs a whole grid in a single pass over a shared
:class:`~repro.isa.columnar.ColumnarTrace`:

- the trace is fetched/built **once** and every grid point replays the
  same immutable columns (functional state is read-only to the timing
  engines);
- the Rocket/BOOM descriptor tables are compiled **once per family**
  via ``ColumnarTrace.timing_table`` and shared by every point of that
  family (on the ``objects`` engine the lazily materialised
  ``DynInst`` list is the shared artifact instead);
- the TAGE fold memos — pure ``history -> (index fold, tag fold)``
  functions — are shared across every same-geometry table in the grid
  (:func:`repro.uarch.branch.share_fold_caches`);
- on multi-core hosts, grid points fan out over a process pool (fork
  workers inherit the parent's warm in-memory trace tier), falling
  back to the inline path on any pool failure.

What is **never** shared: core state.  Every grid point gets a fresh
core instance, because predictor/cache/TLB contents evolve under a
config-dependent interleaving of predict-at-fetch and
resolve-at-execute — sharing them would leak state between configs.
Each point's :class:`~repro.cores.base.CoreResult` is therefore
bit-identical to a standalone single-config run, which remains the
oracle (enforced by ``tests/test_batch_engine.py`` and the
``batch-equivalence`` CI job).
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import as_completed
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..uarch.branch import share_fold_caches
from ..uarch.cache import CacheConfig
from .base import BoomConfig, CoreResult, RocketConfig, resolve_timing_engine
from .boom import BoomCore
from .configs import config_by_name
from .descriptors import build_boom_table, build_rocket_table
from .rocket import RocketCore

CoreConfig = Union[RocketConfig, BoomConfig]

#: The paper's canonical evaluation grid (Table IV minus the XL cores).
DEFAULT_GRID = "rocket,small-boom,medium-boom,large-boom"

#: Variant axes a grid spec may cross with its base configs.  Axis
#: order in a canonical point key is alphabetical, so two spellings of
#: the same point collapse to one key.
VARY_AXES = ("bp", "fetch", "l1d")

_BP_KINDS = ("tage", "gshare", "bimodal")


@dataclass(frozen=True)
class GridPoint:
    """One grid coordinate: a canonical key and the config it names."""

    key: str
    config: CoreConfig


@dataclass
class BatchStats:
    """How a batch run shared (or skipped) work across its grid."""

    mode: str = "inline"  # "inline" | "process" | "mixed"
    workers: int = 1
    points_total: int = 0
    #: Points restored from a sweep checkpoint.
    restored: int = 0
    #: Points served by the on-disk result cache.
    cache_hits: int = 0
    #: Points actually simulated this run.
    executed: int = 0
    #: Trace fetches paid by this batch (1; a per-config sweep pays N).
    trace_fetches: int = 0
    #: Descriptor-table compiles amortised (points beyond the first in
    #: each core family on the columnar engine).
    tables_shared: int = 0
    #: TAGE tables adopting another same-geometry table's fold memo.
    fold_caches_shared: int = 0
    #: Set when the process pool failed and the run finished inline.
    fallback_reason: Optional[str] = None
    wall_s: float = 0.0

    def share_rate(self) -> float:
        """Fraction of points that skipped simulation entirely."""
        if not self.points_total:
            return 0.0
        return (self.restored + self.cache_hits) / self.points_total


@dataclass
class BatchResult:
    """Per-point results of one batched grid run, in grid order."""

    workload: str
    scale: float
    points: List[GridPoint]
    results: List[CoreResult]
    tma: List[object]
    stats: BatchStats = field(default_factory=BatchStats)

    def result_for(self, key: str) -> CoreResult:
        for point, result in zip(self.points, self.results):
            if point.key == key:
                return result
        raise KeyError(f"no grid point {key!r}")


# ----------------------------------------------------------------------
# Grid specs and canonical keys


def _axis_variants(config: CoreConfig, axis: str, value: str) -> CoreConfig:
    """Apply one ``axis=value`` variant; KeyError if not applicable."""
    if axis == "l1d":
        kib = int(value)
        if kib <= 0:
            raise ValueError(f"l1d size must be positive, got {value!r}")
        l1d = CacheConfig("L1D", kib * 1024, 8, 64, hit_latency=2)
        return replace(config, name=f"{config.name}+l1d={kib}KiB", l1d=l1d)
    if axis == "fetch":
        width = int(value)
        if width <= 0:
            raise ValueError(f"fetch width must be positive, got {value!r}")
        return replace(config, name=f"{config.name}+fetch={width}", fetch_width=width)
    if axis == "bp":
        if value not in _BP_KINDS:
            raise ValueError(f"unknown predictor {value!r}; choose from {_BP_KINDS}")
        if not isinstance(config, BoomConfig):
            # Rocket's BHT is not a pluggable direction predictor; the
            # axis silently skips Rocket points (mirroring the paper's
            # predictor ablation, which is BOOM-only).
            raise KeyError("bp axis applies to BOOM configs only")
        return replace(config, name=f"{config.name}+bp={value}", branch_predictor=value)
    raise ValueError(f"unknown variant axis {axis!r}; choose from {VARY_AXES}")


def _parse_vary(vary: Sequence[str]) -> List[Tuple[str, List[str]]]:
    axes: Dict[str, List[str]] = {}
    for item in vary:
        axis, sep, raw = item.partition("=")
        axis = axis.strip().lower()
        if not sep or not raw.strip():
            raise ValueError(f"variant spec {item!r} is not of the form axis=v1,v2")
        if axis not in VARY_AXES:
            raise ValueError(f"unknown variant axis {axis!r}; choose from {VARY_AXES}")
        values = [v.strip() for v in raw.split(",") if v.strip()]
        if not values:
            raise ValueError(f"variant spec {item!r} names no values")
        axes.setdefault(axis, [])
        for value in values:
            if value not in axes[axis]:
                axes[axis].append(value)
    # Alphabetical axis order makes point keys canonical regardless of
    # the order --vary flags were given in.
    return sorted(axes.items())


def parse_grid(spec: str = DEFAULT_GRID, vary: Sequence[str] = ()) -> List[GridPoint]:
    """Expand a grid spec into canonical, de-duplicated grid points.

    *spec* is a comma-separated list of Table IV config names (or
    canonical point keys such as ``large-boom+l1d=16``); *vary* is a
    sequence of ``axis=v1,v2`` strings crossed over every base config
    the axis applies to.  Duplicate points (same canonical key)
    collapse to the first occurrence, so overlapping specs merge
    cleanly.
    """
    tokens = [tok.strip().lower() for tok in spec.split(",") if tok.strip()]
    if not tokens:
        raise ValueError(f"grid spec {spec!r} names no configurations")
    axes = _parse_vary(vary)
    points: List[GridPoint] = []
    seen = set()
    for token in tokens:
        base = point_from_key(token)
        combos: List[GridPoint] = [base]
        for axis, values in axes:
            crossed: List[GridPoint] = []
            for point in combos:
                for value in values:
                    try:
                        config = _axis_variants(point.config, axis, value)
                    except KeyError:
                        # Axis not applicable to this family: the point
                        # rides through un-crossed (deduped below).
                        crossed.append(point)
                        continue
                    crossed.append(GridPoint(f"{point.key}+{axis}={value}", config))
            combos = crossed
        for point in combos:
            if point.key not in seen:
                seen.add(point.key)
                points.append(point)
    return points


def point_from_key(key: str) -> GridPoint:
    """Rebuild a grid point from its canonical key.

    Keys are self-describing (``base+axis=value+...``), so a service
    worker can resolve a variant config that is not in the registry.
    """
    parts = [part.strip() for part in key.strip().lower().split("+")]
    if not parts or not parts[0]:
        raise ValueError(f"empty grid point key {key!r}")
    config = config_by_name(parts[0])
    canonical = parts[0]
    previous = ""
    for part in parts[1:]:
        axis, sep, value = part.partition("=")
        if not sep or not value:
            raise ValueError(f"malformed axis {part!r} in grid point {key!r}")
        if axis <= previous:
            raise ValueError(
                f"grid point {key!r} axes are not in canonical "
                f"(alphabetical, unrepeated) order"
            )
        previous = axis
        try:
            config = _axis_variants(config, axis, value)
        except KeyError as exc:
            raise ValueError(f"axis {axis!r} does not apply to {parts[0]!r}") from exc
        canonical += f"+{axis}={value}"
    return GridPoint(canonical, config)


def resolve_config_spec(name: str) -> CoreConfig:
    """Registry lookup widened to canonical grid point keys."""
    try:
        return config_by_name(name)
    except KeyError:
        return point_from_key(name).config


def canonical_grid_key(workload: str, points: Sequence[GridPoint], scale: float) -> str:
    """Order-independent identity of one (workload, grid, scale).

    Two clients submitting the same grid in a different point order (or
    with duplicate points) get the same key, so grid-level records
    coalesce exactly like per-job dedup does.
    """
    digest = hashlib.sha256()
    digest.update(workload.encode())
    digest.update(f"{scale:.6f}".encode())
    for key in sorted({point.key for point in points}):
        digest.update(key.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:24]


# ----------------------------------------------------------------------
# Execution


def make_core(config: CoreConfig):
    """Fresh core for one grid point (state is never shared)."""
    if isinstance(config, RocketConfig):
        return RocketCore(config)
    return BoomCore(config)


def _resolve_workers(workers: Optional[int], pending: int) -> int:
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), pending))


def _precompile_tables(trace, pending: Sequence[GridPoint], engine: str) -> int:
    """Compile each family's descriptor table once; return shares."""
    timing_table = getattr(trace, "timing_table", None)
    if timing_table is None or engine != "columnar":
        return 0
    builders = {"rocket": build_rocket_table, "boom": build_boom_table}
    counts: Dict[str, int] = {}
    for point in pending:
        family = "rocket" if isinstance(point.config, RocketConfig) else "boom"
        counts[family] = counts.get(family, 0) + 1
    for family in sorted(counts):
        timing_table(family, builders[family])
    return sum(count - 1 for count in counts.values())


def _run_inline(
    workload: str,
    pending: Sequence[GridPoint],
    scale: float,
    engine: str,
    stats: BatchStats,
    note: Callable[[GridPoint, CoreResult], None],
) -> None:
    from ..workloads import build_trace

    trace = build_trace(workload, scale=scale)
    stats.trace_fetches = 1
    stats.tables_shared = _precompile_tables(trace, pending, engine)
    cores = [make_core(point.config) for point in pending]
    stats.fold_caches_shared = share_fold_caches(
        getattr(core, "predictor", None) for core in cores
    )
    for point, core in zip(pending, cores):
        note(point, core.run(trace, engine=engine))


def _run_point(
    workload: str, scale: float, key: str, config: CoreConfig, engine: str
) -> Tuple[str, Dict[str, object]]:
    """Pool-worker entry: one grid point, fresh core, exact codec."""
    from ..tools import cache as result_cache
    from ..workloads import build_trace

    trace = build_trace(workload, scale=scale)
    result = make_core(config).run(trace, engine=engine)
    return key, result_cache.serialize_result(result)


def _run_process(
    workload: str,
    pending: Sequence[GridPoint],
    scale: float,
    engine: str,
    stats: BatchStats,
    note: Callable[[GridPoint, CoreResult], None],
    workers: int,
    executor_factory,
) -> None:
    from ..tools import cache as result_cache
    from ..tools.pool import EXECUTOR_FACTORIES
    from ..workloads import build_trace

    # Warm the trace tiers in the parent: forked workers inherit the
    # in-memory tier, non-fork starts hit the disk tier.
    build_trace(workload, scale=scale)
    stats.trace_fetches = 1
    factory = executor_factory or EXECUTOR_FACTORIES["process"]
    remaining: Dict[str, GridPoint] = {point.key: point for point in pending}
    try:
        with factory(workers) as pool:
            futures = {
                pool.submit(
                    _run_point, workload, scale, point.key, point.config, engine
                ): point
                for point in pending
            }
            for future in as_completed(futures):
                point = futures[future]
                key, payload = future.result()
                note(point, result_cache.deserialize_result(payload))
                remaining.pop(key, None)
    except Exception as exc:  # noqa: BLE001 - any pool failure: go inline
        stats.fallback_reason = f"{type(exc).__name__}: {exc}"
        stats.mode = "mixed" if len(remaining) < len(pending) else "inline"
        if remaining:
            _run_inline(workload, list(remaining.values()), scale, engine, stats, note)


def run_batch(
    workload: str,
    points: Optional[Sequence[GridPoint]] = None,
    *,
    scale: float = 1.0,
    engine: Optional[str] = None,
    use_cache: bool = True,
    checkpoint=None,
    workers: Optional[int] = None,
    executor_factory=None,
    windows: Optional[int] = None,
    warmup: Optional[int] = None,
    sampled: bool = False,
    progress: bool = False,
) -> BatchResult:
    """Run one workload across a whole config grid in a single pass.

    Every point's :class:`CoreResult` is bit-identical to a standalone
    :func:`repro.tools.tma_tool.run_core` of the same (workload,
    config, scale) — the per-config engines stay the oracle.

    *checkpoint* (a :class:`~repro.tools.checkpoint.SweepCheckpoint`)
    records each point as it completes and restores completed points on
    a re-run, so a killed grid resumes instead of restarting; the
    caller owns ``checkpoint.clear()``.  *workers* caps the process
    fan-out (default: the machine's core count; 1 forces the inline
    shared-trace path).  *executor_factory* is injectable for tests.

    With *windows*, every pending point runs through the windowed
    engine (:func:`repro.cores.windowed.run_windowed_points`): the pool
    work unit becomes one (grid point, window) pair, so a grid of P
    points over K windows exposes P*K tasks and keeps every worker busy
    even on small grids.  Windowed results use their own cache and
    checkpoint keys (the window plan is folded in), so they never
    satisfy — or poison — plain batch entries.
    """
    from ..core.tma import compute_tma
    from ..tools import cache as result_cache
    from ..tools.checkpoint import point_key

    if points is None:
        points = parse_grid(DEFAULT_GRID)
    points = list(points)
    if not points:
        raise ValueError("empty grid: nothing to run")
    keys = [point.key for point in points]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate grid point keys in {keys}")

    engine_name = resolve_timing_engine(engine)
    stats = BatchStats(points_total=len(points))
    done: Dict[str, CoreResult] = {}
    start = time.perf_counter()

    if windows is not None:
        from .windowed import normalized_warmup

        warm = normalized_warmup(windows, warmup, sampled)

        def result_key(point: GridPoint) -> str:
            return result_cache.windowed_cache_key(
                workload, scale, point.config, windows, warm, sampled
            )

        def ckpt_key(point: GridPoint) -> str:
            return (
                point_key(workload, point.key)
                + f";windows={windows};warmup={warm};sampled={int(sampled)}"
            )

    else:

        def result_key(point: GridPoint) -> str:
            return result_cache.cache_key(workload, scale, point.config)

        def ckpt_key(point: GridPoint) -> str:
            return point_key(workload, point.key)

    if checkpoint is not None:
        for point in points:
            payload = checkpoint.get(ckpt_key(point))
            if payload is None:
                continue
            try:
                done[point.key] = result_cache.deserialize_result(payload)
                stats.restored += 1
            except Exception:  # noqa: BLE001 - damaged entry: re-run
                pass

    if use_cache:
        for point in points:
            if point.key in done:
                continue
            cached = result_cache.load(result_key(point))
            if cached is not None:
                done[point.key] = cached
                stats.cache_hits += 1
                if checkpoint is not None:
                    checkpoint.record(
                        ckpt_key(point),
                        result_cache.serialize_result(cached),
                    )

    def note(point: GridPoint, result: CoreResult) -> None:
        done[point.key] = result
        stats.executed += 1
        if use_cache:
            result_cache.store(result_key(point), result)
        if checkpoint is not None:
            checkpoint.record(
                ckpt_key(point),
                result_cache.serialize_result(result),
            )

    pending = [point for point in points if point.key not in done]
    if pending and windows is not None:
        from .windowed import run_windowed_points

        count = _resolve_workers(workers, len(pending) * max(1, windows))
        stats.workers = count
        stats.mode = "process" if count > 1 else "inline"
        stats.trace_fetches = 1
        run_windowed_points(
            workload,
            pending,
            windows=windows,
            scale=scale,
            warmup=warmup,
            sampled=sampled,
            engine=engine_name,
            workers=count,
            progress=progress,
            executor_factory=executor_factory,
            note=note,
        )
    elif pending:
        count = _resolve_workers(workers, len(pending))
        stats.workers = count
        if count > 1:
            stats.mode = "process"
            _run_process(
                workload,
                pending,
                scale,
                engine_name,
                stats,
                note,
                count,
                executor_factory,
            )
        else:
            stats.mode = "inline"
            _run_inline(workload, pending, scale, engine_name, stats, note)

    stats.wall_s = time.perf_counter() - start
    results = [done[key] for key in keys]
    return BatchResult(
        workload=workload,
        scale=scale,
        points=points,
        results=results,
        tma=[compute_tma(result) for result in results],
        stats=stats,
    )
