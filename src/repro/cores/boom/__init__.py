"""BOOM out-of-order core timing model."""

from .core import BoomCore

__all__ = ["BoomCore"]
