"""Cycle-level timing model of the BOOM superscalar OoO core (Fig. 2b).

The model replays a committed-path dynamic trace through a parameterized
out-of-order pipeline: fetch (L1I + TAGE/BTB/RAS + fetch buffer), decode/
dispatch (W_C wide, into a ROB and split int/mem/FP issue queues), issue
(per-queue ports, wakeup on producer completion), a non-blocking L1D with
MSHRs, store-to-load forwarding with memory-ordering speculation (machine
clears), and W_C-wide in-order commit.

Wrong-path work is modelled with *phantom µops*: once a mispredicted
control-flow instruction is fetched, the frontend supplies phantoms until
the mispredict resolves in execute; the resolution flushes everything
younger and starts the ``Recovering`` window.  Issued phantoms are the
reason ``Uops-issued − Uops-retired`` measures Bad Speculation slots
exactly as the paper's event pair does (§IV-A).

All seven of Icicle's new BOOM events (Table I) are emitted here, along
with the pre-existing Basic/Microarchitectural/Memory events.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ...isa.columnar import ColumnarTrace
from ...isa.dyn_trace import DynamicTrace, DynInst
from ...isa.instructions import InstrClass
from ...uarch.branch import BoomBranchPredictor, Prediction
from ...uarch.cache import MemorySystem, NonBlockingCache
from ...uarch.prefetch import StridePrefetcher
from ...uarch.tlb import L2_TLB_HIT_LATENCY, PTW_LATENCY, TlbHierarchy
from ..base import (BoomConfig, CoreFaultHook, CoreResult, EventAccumulator,
                    SignalObserver, check_cycle_budget, check_run_completed,
                    resolve_timing_engine)
from ..configs import LARGE_BOOM
from ..descriptors import build_boom_table

_SAFETY_CYCLES_PER_INST = 600

_INT_QUEUE = 0
_MEM_QUEUE = 1
_FP_QUEUE = 2

_QUEUE_OF_CLASS = {
    InstrClass.ALU: _INT_QUEUE,
    InstrClass.MUL: _INT_QUEUE,
    InstrClass.DIV: _INT_QUEUE,
    InstrClass.BRANCH: _INT_QUEUE,
    InstrClass.JUMP: _INT_QUEUE,
    InstrClass.JUMP_REG: _INT_QUEUE,
    InstrClass.CSR: _INT_QUEUE,
    InstrClass.SYSTEM: _INT_QUEUE,
    InstrClass.FENCE: _INT_QUEUE,
    InstrClass.LOAD: _MEM_QUEUE,
    InstrClass.STORE: _MEM_QUEUE,
    InstrClass.AMO: _MEM_QUEUE,
    InstrClass.FP_LOAD: _MEM_QUEUE,
    InstrClass.FP_STORE: _MEM_QUEUE,
    InstrClass.FP: _FP_QUEUE,
    InstrClass.FP_DIV: _FP_QUEUE,
}

class _Uop:
    """A micro-op in flight (real, or a phantom wrong-path stand-in)."""

    __slots__ = ("seq", "inst", "queue", "latency", "producers", "dest",
                 "is_phantom", "issued", "completed_cycle", "flushed",
                 "prediction", "indirect_prediction", "mispredicted",
                 "is_load", "is_store", "mem_addr", "mem_width",
                 "violating_load_seq")

    def __init__(self, seq: int, inst: Optional[DynInst], queue: int,
                 latency: int) -> None:
        self.seq = seq
        self.inst = inst
        self.queue = queue
        self.latency = latency
        self.producers: List["_Uop"] = []
        self.dest = inst.dest if inst is not None else -1
        self.is_phantom = inst is None
        self.issued = False
        self.completed_cycle: Optional[int] = None
        self.flushed = False
        self.prediction: Optional[Prediction] = None
        self.indirect_prediction: Optional[int] = None
        self.mispredicted = False
        self.is_load = inst.is_load if inst is not None else False
        self.is_store = inst.is_store if inst is not None else False
        self.mem_addr = inst.mem_addr if inst is not None else 0
        self.mem_width = inst.mem_width if inst is not None else 0
        # Seq of the youngest load that speculatively bypassed this store.
        self.violating_load_seq: Optional[int] = None

    def ready(self, cycle: int) -> bool:
        """Wakeup check: all producers complete by *cycle*."""
        producers = self.producers
        while producers:
            producer = producers[-1]
            done = producer.completed_cycle
            if producer.flushed or (done is not None and done <= cycle):
                producers.pop()
            else:
                return False
        return True

    @property
    def serializes(self) -> bool:
        """Fence/CSR/system µops dispatch alone with a drained ROB."""
        if self.inst is None:
            return False
        return self.inst.cls in (InstrClass.FENCE, InstrClass.CSR,
                                 InstrClass.SYSTEM)


class BoomCore:
    """Trace-driven BOOM timing model."""

    def __init__(self, config: BoomConfig = LARGE_BOOM,
                 memory: Optional[MemorySystem] = None,
                 observers: Sequence[SignalObserver] = ()) -> None:
        self.config = config
        self.memory = memory or MemorySystem.build(l1d_config=config.l1d)
        self.l1i = self.memory.l1i
        self.l1d: NonBlockingCache = self.memory.nonblocking_l1d(config.mshrs)
        self.tlbs = TlbHierarchy()
        self.predictor = BoomBranchPredictor(
            btb_entries=config.btb_entries,
            direction=config.branch_predictor)
        self.dprefetcher = (StridePrefetcher()
                            if config.dcache_prefetch else None)
        self.observers: List[SignalObserver] = list(observers)
        self.fault_hook: Optional[CoreFaultHook] = None
        self.machine_clears = 0
        #: PCs of loads that previously caused an ordering violation; the
        #: (modelled) store-set predictor makes them wait thereafter.
        self._trained_loads: Set[int] = set()
        self._stq: List[_Uop] = []

    def add_observer(self, observer: SignalObserver) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------------

    def run(self, trace: DynamicTrace,
            max_cycles: Optional[int] = None,
            fast_path: Optional[bool] = None,
            engine: Optional[str] = None) -> CoreResult:
        """Replay *trace* and return per-event totals.

        *max_cycles* arms a watchdog (default off): exceeding the budget
        raises :class:`~repro.isa.errors.RunTimeout` instead of spinning
        until the internal safety stop silently truncates the run.

        *fast_path* (default auto, like
        :meth:`repro.cores.rocket.RocketCore.run`) reuses one signal
        dictionary across cycles instead of allocating a fresh per-cycle
        record when no observer or fault hook needs to retain it; the
        results are bit-identical either way.

        *engine* selects the timing-engine implementation on the fast
        path (``None`` defers to ``REPRO_TIMING_ENGINE``, default
        ``columnar``): the columnar engine runs the slab-allocated
        descriptor loop over the trace columns, the ``objects`` engine
        walks materialized ``DynInst``/``_Uop`` records.  Both engines
        are bit-identical (``tests/test_timing_engine.py``); a
        ``DynamicTrace`` input always uses the object engine.
        """
        traceless = not self.observers and self.fault_hook is None
        engine = resolve_timing_engine(engine)
        if fast_path is None:
            fast_path = traceless
        elif fast_path and not traceless:
            raise ValueError(
                "fast_path=True reuses the per-cycle signal record, but "
                "an observer or fault hook is attached and retains it")
        self.reset_run_state()
        if fast_path and engine == "columnar" \
                and isinstance(trace, ColumnarTrace):
            return self._run_columnar(trace, max_cycles)
        return self._run_objects(trace, max_cycles, fast_path)

    def reset_run_state(self) -> None:
        """Clear every field :meth:`run` treats as per-run scratch.

        A reused core instance must not leak the machine-clear count,
        the store-set training, or the store queue of the previous run
        into this one.  Everything *not* cleared here — caches, TLBs,
        predictor — deliberately stays warm across runs on one
        instance, which is exactly why the batched grid engine
        (:mod:`repro.cores.batch`) instantiates a fresh core per grid
        point instead of reusing one: warm-structure carry-over is a
        feature within a config and state leakage across configs.
        This method is the audited, single home of that split; the
        batch-path regression test drives two configs whose results
        would differ only under cross-config leakage.
        """
        self.machine_clears = 0
        self._trained_loads.clear()
        self._stq = []

    def _run_objects(self, trace: DynamicTrace, max_cycles: Optional[int],
                     fast_path: bool) -> CoreResult:
        """The ``DynInst``/``_Uop``-walking loop (the reference oracle)."""
        config = self.config
        w_c = config.decode_width
        issue_ports = (config.issue_int, config.issue_mem, config.issue_fp)
        accumulator = EventAccumulator(track_lanes={
            "uops_issued", "fetch_bubbles", "dcache_blocked",
            "uops_retired"})
        observers = self.observers
        instructions = trace.instructions
        total = len(instructions)

        rob: Deque[_Uop] = deque()
        iqs: Tuple[List[_Uop], List[_Uop], List[_Uop]] = ([], [], [])
        iq_capacity = (config.iq_int, config.iq_mem, config.iq_fp)
        fetch_buffer: Deque[_Uop] = deque()
        fb_capacity = config.fetch_buffer_size
        self._stq = []
        stq = self._stq
        ldq_used = 0
        stq_used = 0

        reg_producers: Dict[int, List[_Uop]] = {}
        pending_resolves: List[_Uop] = []   # mispredicted CF uops in flight
        serialized_uop: Optional[_Uop] = None

        fetch_idx = 0
        seq = 0
        retired = 0
        cycle = 0

        fetch_resume_at = 0
        l1i_refill_until = 0
        recovering = False
        recovering_from = 0       # first cycle the window is visible
        wrong_path = False        # a mispredicted CF is in flight

        safety_limit = total * _SAFETY_CYCLES_PER_INST + 20_000
        budget = safety_limit + 1 if max_cycles is None else max_cycles
        fault_hook = self.fault_hook
        accumulator_add = accumulator.add
        mshr_refill_in_flight = self.l1d.mshrs.refill_in_flight
        rob_capacity = config.rob_entries
        #: Fast path: one reused record, cleared per cycle; traced path
        #: allocates per cycle because observers may retain the mapping.
        reused_signals: Dict[str, int] = {}

        while retired < total and cycle < safety_limit:
            if cycle >= budget:
                check_cycle_budget(cycle, max_cycles,
                                   workload=trace.program_name,
                                   retired=retired, total=total)
            if fault_hook is not None and fault_hook.stall_cycle(cycle):
                # Injected stall: the whole core freezes this cycle.
                cycle += 1
                continue
            if fast_path:
                signals = reused_signals
                signals.clear()
                signals["cycles"] = 1
            else:
                signals = {"cycles": 1}

            # ---------------- commit ----------------------------------
            commit_lanes = 0
            fence_flush: Optional[_Uop] = None
            while rob and commit_lanes < w_c:
                head = rob[0]
                done = head.completed_cycle
                if not head.issued or done is None or done > cycle:
                    break
                rob.popleft()
                commit_lanes += 1
                retired += 1
                if head.is_load:
                    ldq_used = max(0, ldq_used - 1)
                if head.is_store:
                    stq_used = max(0, stq_used - 1)
                    if head in stq:
                        stq.remove(head)
                if head is serialized_uop:
                    serialized_uop = None
                inst = head.inst
                if inst is not None and inst.is_fence:
                    signals["fence_retired"] = 1
                    fence_flush = head
                    break
            if commit_lanes:
                mask = (1 << commit_lanes) - 1
                signals["uops_retired"] = mask
                signals["instr_retired"] = mask

            if fence_flush is not None:
                # Intended flush: restart the frontend after the fence.
                self._flush_younger(fence_flush.seq + 1, rob, iqs,
                                    fetch_buffer, stq, pending_resolves)
                ldq_used, stq_used = self._recount_queues(rob)
                fetch_idx = fence_flush.inst.index + 1
                fetch_resume_at = cycle + config.redirect_latency
                recovering = True
                recovering_from = cycle + 1
                wrong_path = False
                if fence_flush.inst.mnemonic == "fence.i":
                    self.l1i.flush()

            # ---------------- resolve mispredicted control flow -------
            resolved: Optional[_Uop] = None
            for uop in pending_resolves:
                done = uop.completed_cycle
                if uop.issued and done is not None and done <= cycle:
                    if resolved is None or uop.seq < resolved.seq:
                        resolved = uop
            if resolved is not None:
                pending_resolves.remove(resolved)
                if resolved.inst is not None and resolved.inst.is_branch:
                    signals["br_mispredict"] = 1
                else:
                    signals["cf_target_mispredict"] = 1
                self._flush_younger(resolved.seq + 1, rob, iqs, fetch_buffer,
                                    stq, pending_resolves)
                ldq_used, stq_used = self._recount_queues(rob)
                fetch_idx = resolved.inst.index + 1
                fetch_resume_at = cycle + config.redirect_latency
                recovering = True
                recovering_from = cycle + 1
                wrong_path = False

            # ---------------- issue ------------------------------------
            issued_total = 0
            issue_lane = 0
            machine_clear_store: Optional[_Uop] = None
            any_queue_nonempty = any(iqs)
            for queue_index, queue in enumerate(iqs):
                ports = issue_ports[queue_index]
                issued_here = 0
                if queue:
                    kept: List[_Uop] = []
                    for uop in queue:
                        if uop.flushed:
                            continue
                        if issued_here < ports and uop.ready(cycle) \
                                and self._try_issue(uop, cycle, signals):
                            uop.issued = True
                            signals["uops_issued"] = (
                                signals.get("uops_issued", 0)
                                | (1 << (issue_lane + issued_here)))
                            issued_here += 1
                            if uop.mispredicted:
                                pending_resolves.append(uop)
                            if uop.violating_load_seq is not None \
                                    and machine_clear_store is None:
                                machine_clear_store = uop
                        else:
                            kept.append(uop)
                    queue[:] = kept
                issued_total += issued_here
                issue_lane += ports

            if machine_clear_store is not None:
                load_seq = machine_clear_store.violating_load_seq
                machine_clear_store.violating_load_seq = None
                refetch_index = self._index_of_seq(rob, load_seq)
                if refetch_index is not None:
                    # Memory-ordering violation: machine clear, squash
                    # from the offending load onward and refetch it.
                    signals["flush"] = 1
                    self.machine_clears += 1
                    self._flush_younger(load_seq, rob, iqs, fetch_buffer,
                                        stq, pending_resolves)
                    ldq_used, stq_used = self._recount_queues(rob)
                    fetch_idx = refetch_index
                    fetch_resume_at = cycle + config.redirect_latency
                    recovering = True
                    recovering_from = cycle + 1
                    wrong_path = False
                    if serialized_uop is not None and serialized_uop.flushed:
                        serialized_uop = None

            # D$-blocked heuristic (§IV-A): per commit-width slot, high
            # when the slot got no valid instruction, a queue is
            # non-empty, and at least one MSHR is handling a miss.
            if any_queue_nonempty and mshr_refill_in_flight(cycle):
                mask = 0
                for slot in range(w_c):
                    if issued_total <= slot:
                        mask |= 1 << slot
                if mask:
                    signals["dcache_blocked"] = mask

            # ---------------- dispatch ---------------------------------
            bubble_mask = 0
            backend_blocked = serialized_uop is not None
            for lane in range(w_c):
                if backend_blocked:
                    break
                if not fetch_buffer:
                    if not recovering and len(rob) < rob_capacity:
                        bubble_mask |= 1 << lane
                    continue
                uop = fetch_buffer[0]
                if len(rob) >= rob_capacity:
                    break
                if uop.serializes:
                    if rob:
                        break  # wait for the ROB to drain
                    fetch_buffer.popleft()
                    uop.issued = True
                    uop.completed_cycle = cycle + 1
                    # The serialized uop bypasses the issue queues but
                    # still occupies an issue slot this cycle (the ROB
                    # is empty, so lane 0 is necessarily free); without
                    # this the paper's BadSpec pair Uops-issued minus
                    # Uops-retired undercounts by one per fence/CSR.
                    signals["uops_issued"] = signals.get(
                        "uops_issued", 0) | 1
                    rob.append(uop)
                    serialized_uop = uop
                    backend_blocked = True
                    continue
                queue_index = uop.queue
                if len(iqs[queue_index]) >= iq_capacity[queue_index]:
                    break
                if not uop.is_phantom:
                    if uop.is_load and ldq_used >= config.ldq_entries:
                        break
                    if uop.is_store and stq_used >= config.stq_entries:
                        break
                fetch_buffer.popleft()
                self._rename(uop, reg_producers)
                rob.append(uop)
                iqs[queue_index].append(uop)
                if not uop.is_phantom:
                    if uop.is_load:
                        ldq_used += 1
                    if uop.is_store:
                        stq_used += 1
                        stq.append(uop)
            if bubble_mask:
                signals["fetch_bubbles"] = bubble_mask

            # ---------------- fetch ------------------------------------
            if l1i_refill_until > cycle and not fetch_buffer:
                signals["icache_blocked"] = 1

            fetched_any = False
            if len(fetch_buffer) < fb_capacity and cycle >= fetch_resume_at:
                if wrong_path:
                    seq = self._fetch_phantoms(fetch_buffer, fb_capacity,
                                               seq)
                    fetched_any = True
                elif fetch_idx < total:
                    (fetched_any, fetch_resume_at, l1i_refill_until, seq,
                     fetch_idx, wrong_path) = self._fetch(
                        instructions, fetch_idx, cycle, fetch_buffer,
                        fb_capacity, signals, seq, wrong_path,
                        l1i_refill_until)
            if recovering:
                if fetched_any:
                    recovering = False
                elif cycle >= recovering_from:
                    signals["recovering"] = 1

            accumulator_add(signals)
            for observer in observers:
                observer.on_cycle(cycle, signals)
            cycle += 1

        check_run_completed(retired, total, cycle, max_cycles,
                            workload=trace.program_name)
        return CoreResult(
            workload=trace.program_name, config_name=config.name,
            core="boom", cycles=cycle, instret=retired,
            events=accumulator.totals, lane_events=accumulator.lane_totals,
            commit_width=w_c, issue_width=config.issue_width,
            l1i_stats=self.l1i.stats, l1d_stats=self.l1d.stats,
            l2_stats=self.memory.l2.stats,
            predictor_stats=self.predictor.stats,
            extra={"machine_clears": float(self.machine_clears),
                   "decode_resteers": float(self.predictor.decode_resteers)})

    # ------------------------------------------------------------------
    # columnar engine: descriptor table + slab-allocated µop pool
    # ------------------------------------------------------------------

    def _run_columnar(self, trace: ColumnarTrace,
                      max_cycles: Optional[int]) -> CoreResult:
        """The object loop re-expressed over columns and a µop slab.

        Identical pipeline model to :meth:`_run_objects`, restructured
        for throughput:

        - static facts come from the :class:`~repro.cores.descriptors
          .BoomOpTable` compiled once per trace; dynamic facts from the
          flat trace columns — no ``DynInst`` list is materialized;
        - µops live in a slab of parallel arrays with a free list; ROB,
          issue queues, fetch buffer, store queue, and pending-resolve
          list hold integer slot indices instead of ``_Uop`` objects;
        - producer references are ``(slot << 32) | generation`` tokens:
          freeing a slot bumps its generation, so a stale token proves
          its µop already left the ROB — for an in-order-commit machine
          that is exactly the "producer complete" answer the object
          path's lazy ``_Uop.ready`` scan would have given;
        - events accumulate into local counters and lane histograms
          (per-cycle dedup flags replicate the ``|= 1`` mask signals;
          the contiguous commit/bubble/blocked lane patterns collapse
          to one histogram bump per cycle), and the
          ``EventAccumulator``-shaped totals and lane lists are rebuilt
          once after the run.

        Bit-identity with the object engine across the registry is
        pinned by ``tests/test_timing_engine.py``.
        """
        config = self.config
        w_c = config.decode_width
        issue_ports = (config.issue_int, config.issue_mem, config.issue_fp)
        issue_width = config.issue_width
        total = len(trace)

        table = trace.timing_table("boom", build_boom_table)
        d_pc = table.pc
        d_dest = table.dest
        d_srcs = table.srcs
        d_lat = table.latency
        d_memw = table.mem_width
        d_queue = table.queue
        d_serializes = table.serializes
        d_is_load = table.is_load
        d_is_store = table.is_store
        d_is_branch = table.is_branch
        d_is_fence = table.is_fence
        d_is_fence_i = table.is_fence_i
        d_is_jump = table.is_jump
        d_is_jump_reg = table.is_jump_reg
        d_is_call = table.is_call
        d_is_return = table.is_return
        sidx = trace.sidx
        col_mem = trace.mem_addr
        col_next = trace.next_pc
        col_taken = trace.taken

        # ---------------- µop slab -----------------------------------
        # Only per-µop *dynamic* state lives in the slab; everything
        # derivable from the static index (queue, latency, dest,
        # load/store-ness, memory width) is read through ``u_s`` from
        # the descriptor table, so allocating a µop is a handful of
        # list stores and reusing a freed slot recycles its (already
        # emptied) producer list in place.
        u_seq: List[int] = []
        u_dyn: List[int] = []          # dynamic index (-1 for phantoms)
        u_s: List[int] = []            # static index (-1 for phantoms)
        u_mem_addr: List[int] = []
        u_completed: List[Optional[int]] = []
        u_flushed: List[bool] = []
        u_issued: List[bool] = []
        u_mispred: List[bool] = []
        u_viol: List[Optional[int]] = []
        u_in_resolve: List[bool] = []  # parked in pending_resolves
        u_committed: List[bool] = []   # committed, free deferred to resolve
        # Current park bound (0 = not parked).  Lets a consumer blocked
        # on an *unissued but parked* producer park transitively at
        # bound+1: the producer cannot issue before its own bound, so
        # the consumer cannot become ready before the cycle after it —
        # whole dependency chains leave the scan with staggered bounds.
        u_park: List[int] = []
        u_prod: List[List[int]] = []   # producer tokens
        u_gen: List[int] = []          # generation, bumped on free
        free_slots: List[int] = []
        free_append = free_slots.append
        free_pop = free_slots.pop
        _GENMASK = 0xFFFFFFFF

        rob: Deque[int] = deque()
        rob_popleft = rob.popleft
        rob_append = rob.append
        rob_len = 0
        iqs: Tuple[List[int], List[int], List[int]] = ([], [], [])
        iq_capacity = (config.iq_int, config.iq_mem, config.iq_fp)
        # Parked issue-queue entries: a wakeup walk that blocks on an
        # *issued* producer knows that producer's exact completion
        # cycle, so the consumer leaves the scanned queue for a
        # min-heap of ``(wake_cycle, seq, slot)`` and is re-admitted in
        # age order when the bound passes.  Exact, not heuristic: a
        # live consumer's blocking producer can be neither committed
        # before its completion cycle nor flushed without the younger
        # consumer being flushed too (flush_younger purges the heaps
        # by seq).  Queue scans then touch only issue *candidates*.
        parked: Tuple[List[Tuple[int, int, int]], ...] = ([], [], [])
        fetch_buffer: Deque[int] = deque()
        fb_append = fetch_buffer.append
        fb_popleft = fetch_buffer.popleft
        fb_len = 0
        fb_capacity = config.fetch_buffer_size
        ldq_entries = config.ldq_entries
        stq_entries = config.stq_entries
        stq: List[int] = []
        stq_append = stq.append
        ldq_used = 0
        stq_used = 0

        reg_producers: Dict[int, List[int]] = {}
        reg_producers_get = reg_producers.get
        pending_resolves: List[int] = []
        pending_append = pending_resolves.append
        serialized_slot = -1
        serialized_gen = -1
        trained_loads = self._trained_loads

        fetch_idx = 0
        seq = 0
        retired = 0
        cycle = 0

        fetch_resume_at = 0
        l1i_refill_until = 0
        recovering = False
        recovering_from = 0
        wrong_path = False

        safety_limit = total * _SAFETY_CYCLES_PER_INST + 20_000
        budget = safety_limit + 1 if max_cycles is None else max_cycles

        # ---------------- hot-loop local bindings --------------------
        l1i = self.l1i
        l1i_access = l1i.access
        l1i_lookup = l1i.lookup
        l1i_stats = l1i.stats
        block_bytes = l1i.config.block_bytes
        block_shift = block_bytes.bit_length() - 1
        l1d = self.l1d
        l1d_access_ex = l1d.access_ex
        l1d_cache_lookup = l1d.cache.lookup
        mshr_refill_in_flight = l1d.mshrs.refill_in_flight
        mshr_is_full = l1d.mshrs.is_full
        tlbs = self.tlbs
        itlb_probe = tlbs.itlb.access
        dtlb_probe = tlbs.dtlb.access
        l2tlb_probe = tlbs.l2.access
        predictor = self.predictor
        predict_branch = predictor.predict_branch
        resolve_branch = predictor.resolve_branch
        predict_indirect = predictor.predict_indirect
        resolve_indirect = predictor.resolve_indirect
        ras_push = predictor.ras.push
        btb_lookup = predictor.btb.lookup
        btb_insert = predictor.btb.insert
        dprefetcher = self.dprefetcher
        fetch_width = config.fetch_width
        redirect_latency = config.redirect_latency
        icache_prefetch = config.icache_prefetch
        rob_capacity = config.rob_entries

        # Event accumulation: plain local counters instead of per-cycle
        # signal dictionaries.  The three tracked commit-width lane
        # patterns are provably contiguous (commit fills a prefix of
        # lanes; bubbles and D$-blocked fill a suffix), so one histogram
        # bump per cycle replaces the per-lane inner loops and the lane
        # lists are recovered by prefix/suffix sums after the run.
        n_fence_retired = 0
        n_br_mispredict = 0
        n_cf_mispredict = 0
        n_flush = 0
        n_icache_blocked = 0
        n_itlb_miss = 0
        n_icache_miss = 0
        n_dtlb_miss = 0
        n_l2tlb_miss = 0
        n_dcache_miss = 0
        n_recovering = 0
        lanes_issued = [0] * issue_width
        commit_hist = [0] * (w_c + 1)   # index: lanes committed (1..w_c)
        bubble_hist = [0] * w_c         # index: first bubbling lane
        blocked_hist = [0] * w_c        # index: first D$-blocked lane

        def flush_younger(from_seq: int) -> None:
            # Mirrors _flush_younger: squash the ROB tail, filter the
            # issue/store/pending queues, drain the fetch buffer.  Every
            # flushed slot is freed here — its generation bump is what
            # later identifies stale producer tokens.
            nonlocal rob_len, fb_len
            while rob and u_seq[rob[-1]] >= from_seq:
                sl = rob.pop()
                u_flushed[sl] = True
                u_gen[sl] += 1
                prod = u_prod[sl]
                if prod:
                    del prod[:]
                free_append(sl)
            rob_len = len(rob)
            for queue in iqs:
                queue[:] = [sl for sl in queue if not u_flushed[sl]]
            for parked_q in parked:
                if parked_q:
                    # Parked entries are ROB residents too: purge the
                    # flushed ones so the heaps never hold ghosts.
                    live = [p for p in parked_q if p[1] < from_seq]
                    if len(live) != len(parked_q):
                        parked_q[:] = live
                        heapify(parked_q)
            for sl in fetch_buffer:
                u_flushed[sl] = True
                u_gen[sl] += 1
                prod = u_prod[sl]
                if prod:
                    del prod[:]
                free_append(sl)
            fetch_buffer.clear()
            fb_len = 0
            stq[:] = [sl for sl in stq if not u_flushed[sl]]
            pending_resolves[:] = [sl for sl in pending_resolves
                                   if not u_flushed[sl]]

        def recount_queues() -> Tuple[int, int]:
            ld = st = 0
            for sl in rob:
                s = u_s[sl]
                if s >= 0:
                    if d_is_load[s]:
                        ld += 1
                    if d_is_store[s]:
                        st += 1
            return ld, st

        while retired < total and cycle < safety_limit:
            if cycle >= budget:
                check_cycle_budget(cycle, max_cycles,
                                   workload=trace.program_name,
                                   retired=retired, total=total)
            dtlb_counted = False
            l2tlb_counted = False
            dcache_counted = False

            # ---------------- commit ----------------------------------
            commit_lanes = 0
            fence_slot = -1
            while rob_len and commit_lanes < w_c:
                head = rob[0]
                done = u_completed[head]
                if not u_issued[head] or done is None or done > cycle:
                    break
                rob_popleft()
                rob_len -= 1
                commit_lanes += 1
                retired += 1
                s = u_s[head]
                if s >= 0:
                    if d_is_load[s]:
                        if ldq_used:
                            ldq_used -= 1
                    if d_is_store[s]:
                        if stq_used:
                            stq_used -= 1
                        if head in stq:
                            stq.remove(head)
                    if head == serialized_slot \
                            and u_gen[head] == serialized_gen:
                        serialized_slot = -1
                        serialized_gen = -1
                    if d_is_fence[s]:
                        n_fence_retired += 1
                        fence_slot = head
                        break
                # Free the slot — unless a mispredict resolution still
                # owns it (commit runs before resolve in the cycle).
                if u_in_resolve[head]:
                    u_committed[head] = True
                else:
                    u_gen[head] += 1
                    prod = u_prod[head]
                    if prod:
                        del prod[:]
                    free_append(head)
            if commit_lanes:
                commit_hist[commit_lanes] += 1

            if fence_slot >= 0:
                # Intended flush: restart the frontend after the fence.
                flush_younger(u_seq[fence_slot] + 1)
                ldq_used, stq_used = recount_queues()
                fetch_idx = u_dyn[fence_slot] + 1
                fetch_resume_at = cycle + redirect_latency
                recovering = True
                recovering_from = cycle + 1
                wrong_path = False
                if d_is_fence_i[u_s[fence_slot]]:
                    l1i.flush()
                u_gen[fence_slot] += 1
                prod = u_prod[fence_slot]
                if prod:
                    del prod[:]
                free_append(fence_slot)

            # ---------------- resolve mispredicted control flow -------
            if pending_resolves:
                resolved = -1
                resolved_seq = 0
                for sl in pending_resolves:
                    done = u_completed[sl]
                    if u_issued[sl] and done is not None and done <= cycle:
                        sq = u_seq[sl]
                        if resolved < 0 or sq < resolved_seq:
                            resolved = sl
                            resolved_seq = sq
                if resolved >= 0:
                    pending_resolves.remove(resolved)
                    u_in_resolve[resolved] = False
                    if d_is_branch[u_s[resolved]]:
                        n_br_mispredict += 1
                    else:
                        n_cf_mispredict += 1
                    flush_younger(resolved_seq + 1)
                    ldq_used, stq_used = recount_queues()
                    fetch_idx = u_dyn[resolved] + 1
                    fetch_resume_at = cycle + redirect_latency
                    recovering = True
                    recovering_from = cycle + 1
                    wrong_path = False
                    if u_committed[resolved]:
                        u_gen[resolved] += 1
                        prod = u_prod[resolved]
                        if prod:
                            del prod[:]
                        free_append(resolved)

            # ---------------- issue ------------------------------------
            issued_total = 0
            issue_lane = 0
            machine_clear_slot = -1
            any_queue_nonempty = bool(iqs[0] or iqs[1] or iqs[2]
                                      or parked[0] or parked[1] or parked[2])
            if any_queue_nonempty:
                for queue_index in (0, 1, 2):
                    queue = iqs[queue_index]
                    parked_q = parked[queue_index]
                    # Re-admit parked entries whose bound has passed, at
                    # their age-ordered position (queues stay seq-sorted
                    # because dispatch appends in seq order).
                    while parked_q and parked_q[0][0] <= cycle:
                        _, pseq, pslot = heappop(parked_q)
                        u_park[pslot] = 0
                        lo_i = 0
                        hi_i = len(queue)
                        while lo_i < hi_i:
                            mid = (lo_i + hi_i) >> 1
                            if u_seq[queue[mid]] < pseq:
                                lo_i = mid + 1
                            else:
                                hi_i = mid
                        queue.insert(lo_i, pslot)
                    ports = issue_ports[queue_index]
                    issued_here = 0
                    if queue:
                        # ``kept`` stays None (no list rebuild) on the
                        # common all-waiting cycle.
                        kept: Optional[List[int]] = None
                        pos = 0
                        for slot in queue:
                            ok = False
                            park_at = 0
                            if issued_here >= ports:
                                # Ports exhausted: the rest of the queue
                                # is untouched this cycle.
                                break
                            # ---- inlined _Uop.ready --------------
                            prod = u_prod[slot]
                            is_ready = True
                            while prod:
                                ref = prod[-1]
                                psl = ref >> 32
                                if u_gen[psl] != ref & _GENMASK:
                                    # Stale token: the producer left
                                    # the ROB (committed or flushed)
                                    # — either way it no longer
                                    # gates wakeup.
                                    prod.pop()
                                    continue
                                pdone = u_completed[psl]
                                if pdone is not None:
                                    if pdone <= cycle:
                                        prod.pop()
                                        continue
                                    # Completion cycle is known and
                                    # final: park until then.
                                    park_at = pdone
                                else:
                                    ppark = u_park[psl]
                                    if ppark:
                                        # Producer itself parked: it
                                        # cannot issue before its bound,
                                        # so this µop cannot wake before
                                        # the cycle after it.
                                        park_at = ppark + 1
                                is_ready = False
                                break
                            if is_ready:
                                # ---- inlined _try_issue ----------
                                s = u_s[slot]
                                if s < 0:
                                    u_completed[slot] = cycle + 1
                                    ok = True
                                elif d_is_load[s]:
                                    # ---- inlined _issue_load -----
                                    lo = u_mem_addr[slot]
                                    hi = lo + d_memw[s]
                                    myseq = u_seq[slot]
                                    blocking = -1
                                    for st in stq:
                                        if u_seq[st] >= myseq \
                                                or u_issued[st] \
                                                or u_flushed[st]:
                                            continue
                                        sa = u_mem_addr[st]
                                        if sa < hi and lo < sa \
                                                + d_memw[u_s[st]]:
                                            blocking = st
                                            break
                                    if blocking >= 0:
                                        pc = d_pc[s]
                                        if pc in trained_loads:
                                            ok = False
                                        else:
                                            v = u_viol[blocking]
                                            if v is None or myseq < v:
                                                u_viol[blocking] = myseq
                                            trained_loads.add(pc)
                                            u_completed[slot] = cycle + 2
                                            ok = True
                                    else:
                                        fwd = -1
                                        fwd_seq = -1
                                        lw = d_memw[s]
                                        for st in stq:
                                            if u_seq[st] >= myseq \
                                                    or not u_issued[st] \
                                                    or u_flushed[st]:
                                                continue
                                            if u_mem_addr[st] == lo and \
                                                    d_memw[u_s[st]] \
                                                    >= lw:
                                                if u_seq[st] > fwd_seq:
                                                    fwd = st
                                                    fwd_seq = u_seq[st]
                                        if fwd >= 0:
                                            # store-to-load forward
                                            u_completed[slot] = cycle + 2
                                            ok = True
                                        else:
                                            if dtlb_probe(lo):
                                                tlb_extra = 0
                                            else:
                                                if not dtlb_counted:
                                                    n_dtlb_miss += 1
                                                    dtlb_counted = True
                                                if l2tlb_probe(lo):
                                                    tlb_extra = \
                                                        L2_TLB_HIT_LATENCY
                                                else:
                                                    tlb_extra = \
                                                        PTW_LATENCY
                                                    if not l2tlb_counted:
                                                        n_l2tlb_miss += 1
                                                        l2tlb_counted = \
                                                            True
                                            if mshr_is_full(cycle) and \
                                                    not l1d_cache_lookup(
                                                        lo):
                                                # no MSHR for a
                                                # would-be miss
                                                ok = False
                                            else:
                                                hit, ready_at, primary = \
                                                    l1d_access_ex(
                                                        lo, cycle)
                                                if primary:
                                                    if not \
                                                            dcache_counted:
                                                        n_dcache_miss += 1
                                                        dcache_counted = \
                                                            True
                                                if dprefetcher \
                                                        is not None:
                                                    targets = \
                                                        dprefetcher.train(
                                                            d_pc[s], lo)
                                                    if targets:
                                                        dprefetcher.issue(
                                                            l1d, targets,
                                                            cycle)
                                                u_completed[slot] = \
                                                    ready_at + tlb_extra
                                                ok = True
                                elif d_is_store[s]:
                                    # ---- inlined _issue_store ----
                                    addr = u_mem_addr[slot]
                                    if dtlb_probe(addr):
                                        tlb_extra = 0
                                    else:
                                        if not dtlb_counted:
                                            n_dtlb_miss += 1
                                            dtlb_counted = True
                                        # L2 probe for latency/state
                                        # only: stores don't assert
                                        # l2_tlb_miss (matching
                                        # _issue_store).
                                        if l2tlb_probe(addr):
                                            tlb_extra = \
                                                L2_TLB_HIT_LATENCY
                                        else:
                                            tlb_extra = PTW_LATENCY
                                    _, _, primary = l1d_access_ex(
                                        addr, cycle, is_store=True)
                                    if primary and not dcache_counted:
                                        n_dcache_miss += 1
                                        dcache_counted = True
                                    u_completed[slot] = \
                                        cycle + 1 + tlb_extra
                                    ok = True
                                else:
                                    u_completed[slot] = \
                                        cycle + d_lat[s]
                                    ok = True
                            if ok:
                                u_issued[slot] = True
                                lanes_issued[issue_lane + issued_here] += 1
                                issued_here += 1
                                if u_mispred[slot]:
                                    pending_append(slot)
                                    u_in_resolve[slot] = True
                                if u_viol[slot] is not None \
                                        and machine_clear_slot < 0:
                                    machine_clear_slot = slot
                                if kept is None:
                                    kept = queue[:pos]
                            elif park_at:
                                # Blocked with a known wake bound: leave
                                # the scanned queue until it passes.
                                u_park[slot] = park_at
                                heappush(parked_q,
                                         (park_at, u_seq[slot], slot))
                                if kept is None:
                                    kept = queue[:pos]
                            elif kept is not None:
                                kept.append(slot)
                            pos += 1
                        if kept is not None:
                            if pos < len(queue):
                                # Early port-exhaustion break: the
                                # unscanned tail stays queued.
                                kept.extend(queue[pos:])
                            queue[:] = kept
                    issued_total += issued_here
                    issue_lane += ports

            if machine_clear_slot >= 0:
                load_seq = u_viol[machine_clear_slot]
                u_viol[machine_clear_slot] = None
                refetch_index = -1
                for sl in rob:
                    if u_seq[sl] == load_seq and u_s[sl] >= 0:
                        refetch_index = u_dyn[sl]
                        break
                if refetch_index >= 0:
                    # Memory-ordering violation: machine clear, squash
                    # from the offending load onward and refetch it.
                    n_flush += 1
                    self.machine_clears += 1
                    flush_younger(load_seq)
                    ldq_used, stq_used = recount_queues()
                    fetch_idx = refetch_index
                    fetch_resume_at = cycle + redirect_latency
                    recovering = True
                    recovering_from = cycle + 1
                    wrong_path = False
                    if serialized_slot >= 0 \
                            and u_gen[serialized_slot] != serialized_gen:
                        # The serialized µop was flushed (and freed).
                        serialized_slot = -1
                        serialized_gen = -1

            # D$-blocked heuristic (§IV-A): per commit-width slot, high
            # when the slot got no valid instruction, a queue is
            # non-empty, and at least one MSHR is handling a miss.  The
            # blocked slots [issued_total, w_c) form a suffix, so one
            # histogram bump records them all.
            if any_queue_nonempty and issued_total < w_c \
                    and mshr_refill_in_flight(cycle):
                blocked_hist[issued_total] += 1

            # ---------------- dispatch ---------------------------------
            lane = 0 if serialized_slot < 0 else w_c
            while lane < w_c:
                if not fb_len:
                    # No µop for this lane — and every remaining lane is
                    # in the same state, so one histogram bump records
                    # the whole bubble suffix.
                    if not recovering and rob_len < rob_capacity:
                        bubble_hist[lane] += 1
                    break
                if rob_len >= rob_capacity:
                    break
                slot = fetch_buffer[0]
                s = u_s[slot]
                if s >= 0 and d_serializes[s]:
                    if rob_len:
                        break  # wait for the ROB to drain
                    fb_popleft()
                    fb_len -= 1
                    u_issued[slot] = True
                    u_completed[slot] = cycle + 1
                    # The serialized uop bypasses the issue queues but
                    # still occupies issue slot 0 this cycle (the ROB is
                    # empty, so nothing issued from the queues).
                    lanes_issued[0] += 1
                    rob_append(slot)
                    rob_len += 1
                    serialized_slot = slot
                    serialized_gen = u_gen[slot]
                    break  # backend blocked for the remaining lanes
                if s >= 0:
                    queue_index = d_queue[s]
                else:
                    queue_index = (_MEM_QUEUE if u_seq[slot] & 3 == 3
                                   else _INT_QUEUE)
                queue = iqs[queue_index]
                if len(queue) + len(parked[queue_index]) \
                        >= iq_capacity[queue_index]:
                    break
                if s >= 0:
                    if d_is_load[s] and ldq_used >= ldq_entries:
                        break
                    if d_is_store[s] and stq_used >= stq_entries:
                        break
                fb_popleft()
                fb_len -= 1
                # ---- inlined _rename ---------------------------------
                if s >= 0:
                    srcs = d_srcs[s]
                    if srcs:
                        myprod = u_prod[slot]
                        for src in srcs:
                            plist = reg_producers_get(src)
                            if plist:
                                while plist:
                                    ref = plist[-1]
                                    if u_gen[ref >> 32] != ref & _GENMASK:
                                        plist.pop()
                                    else:
                                        break
                                if plist:
                                    myprod.append(plist[-1])
                    dest = d_dest[s]
                    if dest >= 0:
                        plist = reg_producers_get(dest)
                        token = (slot << 32) | u_gen[slot]
                        if plist is None:
                            reg_producers[dest] = [token]
                        else:
                            plist.append(token)
                    if d_is_load[s]:
                        ldq_used += 1
                    if d_is_store[s]:
                        stq_used += 1
                        stq_append(slot)
                rob_append(slot)
                rob_len += 1
                queue.append(slot)
                lane += 1

            # ---------------- fetch ------------------------------------
            if l1i_refill_until > cycle and not fb_len:
                n_icache_blocked += 1

            fetched_any = False
            if fb_len < fb_capacity and cycle >= fetch_resume_at:
                if wrong_path:
                    # ---- inlined _fetch_phantoms ---------------------
                    for _ in range(min(fetch_width, fb_capacity - fb_len)):
                        if free_slots:
                            slot = free_pop()
                            u_seq[slot] = seq
                            u_dyn[slot] = -1
                            u_s[slot] = -1
                            u_completed[slot] = None
                            u_flushed[slot] = False
                            u_issued[slot] = False
                            u_mispred[slot] = False
                            u_viol[slot] = None
                            u_in_resolve[slot] = False
                            u_committed[slot] = False
                            u_park[slot] = 0
                        else:
                            slot = len(u_seq)
                            u_seq.append(seq)
                            u_dyn.append(-1)
                            u_s.append(-1)
                            u_mem_addr.append(0)
                            u_completed.append(None)
                            u_flushed.append(False)
                            u_issued.append(False)
                            u_mispred.append(False)
                            u_viol.append(None)
                            u_in_resolve.append(False)
                            u_committed.append(False)
                            u_park.append(0)
                            u_prod.append([])
                            u_gen.append(0)
                        fb_append(slot)
                        fb_len += 1
                        seq += 1
                    fetched_any = True
                elif fetch_idx < total:
                    # ---- inlined _fetch ------------------------------
                    pc = d_pc[sidx[fetch_idx]]
                    if itlb_probe(pc):
                        tlb_extra = 0
                    else:
                        n_itlb_miss += 1
                        if l2tlb_probe(pc):
                            tlb_extra = L2_TLB_HIT_LATENCY
                        else:
                            tlb_extra = PTW_LATENCY
                            if not l2tlb_counted:
                                n_l2tlb_miss += 1
                    hit, latency = l1i_access(pc, False, cycle)
                    if not hit:
                        n_icache_miss += 1
                        if icache_prefetch:
                            # Next-line prefetch: pull the following
                            # block alongside (stat-neutral).
                            next_block = ((pc >> block_shift)
                                          << block_shift) + block_bytes
                            if not l1i_lookup(next_block):
                                l1i_access(next_block)
                                l1i_stats.accesses -= 1
                                l1i_stats.misses -= 1
                    latency += tlb_extra
                    if not hit or tlb_extra:
                        fetch_resume_at = cycle + latency
                        l1i_refill_until = cycle + latency
                    else:
                        block = pc >> block_shift
                        fetched = 0
                        prev_pc = None
                        resume_at = cycle + 1
                        while (fetch_idx < total and fetched < fetch_width
                               and fb_len < fb_capacity):
                            dyn = fetch_idx
                            s = sidx[dyn]
                            pc = d_pc[s]
                            if prev_pc is not None and pc != prev_pc + 4:
                                break
                            if pc >> block_shift != block:
                                break
                            if free_slots:
                                slot = free_pop()
                                u_seq[slot] = seq
                                u_dyn[slot] = dyn
                                u_s[slot] = s
                                u_mem_addr[slot] = col_mem[dyn]
                                u_completed[slot] = None
                                u_flushed[slot] = False
                                u_issued[slot] = False
                                u_mispred[slot] = False
                                u_viol[slot] = None
                                u_in_resolve[slot] = False
                                u_committed[slot] = False
                                u_park[slot] = 0
                            else:
                                slot = len(u_seq)
                                u_seq.append(seq)
                                u_dyn.append(dyn)
                                u_s.append(s)
                                u_mem_addr.append(col_mem[dyn])
                                u_completed.append(None)
                                u_flushed.append(False)
                                u_issued.append(False)
                                u_mispred.append(False)
                                u_viol.append(None)
                                u_in_resolve.append(False)
                                u_committed.append(False)
                                u_park.append(0)
                                u_prod.append([])
                                u_gen.append(0)
                            seq += 1
                            end_packet = False
                            if d_is_branch[s]:
                                taken = col_taken[dyn]
                                prediction = predict_branch(pc)
                                mispredicted = prediction.taken != taken
                                u_mispred[slot] = mispredicted
                                resolve_branch(pc, taken, col_next[dyn],
                                               prediction)
                                if mispredicted:
                                    wrong_path = True
                                    end_packet = True
                                elif taken:
                                    end_packet = True
                                    if not prediction.btb_hit:
                                        resume_at = cycle + 2
                            elif d_is_jump[s]:
                                if d_is_call[s]:
                                    ras_push(pc + 4)
                                if btb_lookup(pc) is None:
                                    resume_at = cycle + 2
                                    btb_insert(pc, col_next[dyn])
                                end_packet = True
                            elif d_is_jump_reg[s]:
                                predicted = predict_indirect(
                                    pc, is_return=d_is_return[s])
                                mispredicted = resolve_indirect(
                                    pc, col_next[dyn], predicted)
                                u_mispred[slot] = mispredicted
                                if mispredicted:
                                    wrong_path = True
                                end_packet = True
                            fb_append(slot)
                            fb_len += 1
                            fetched += 1
                            prev_pc = pc
                            fetch_idx += 1
                            if end_packet:
                                break
                        fetch_resume_at = resume_at
                        if fetched:
                            fetched_any = True
            if recovering:
                if fetched_any:
                    recovering = False
                elif cycle >= recovering_from:
                    n_recovering += 1

            cycle += 1

        check_run_completed(retired, total, cycle, max_cycles,
                            workload=trace.program_name)

        # Rebuild the EventAccumulator view: totals only for events that
        # were ever asserted, lane lists ending at the highest lane ever
        # asserted.  ``retired`` doubles as both retire totals because
        # the object loop adds ``commit_lanes`` to each exactly when it
        # advances ``retired`` by the same amount (phantoms included).
        events: Dict[str, int] = {"cycles": cycle} if cycle else {}
        lane_events: Dict[str, List[int]] = {}
        uops_issued = sum(lanes_issued)
        if uops_issued:
            events["uops_issued"] = uops_issued
            while lanes_issued and not lanes_issued[-1]:
                lanes_issued.pop()
            lane_events["uops_issued"] = lanes_issued
        if retired:
            events["uops_retired"] = retired
            events["instr_retired"] = retired
            # Commit fills a lane prefix: lane i is asserted by every
            # cycle that committed more than i µops (suffix sums).
            lanes = [0] * w_c
            acc = 0
            for width in range(w_c, 0, -1):
                acc += commit_hist[width]
                lanes[width - 1] = acc
            while lanes and not lanes[-1]:
                lanes.pop()
            lane_events["uops_retired"] = lanes
        for name, hist in (("fetch_bubbles", bubble_hist),
                           ("dcache_blocked", blocked_hist)):
            # Suffix patterns: a cycle recorded at *start* asserts every
            # lane from start to w_c-1 (prefix sums), so lane w_c-1 is
            # asserted whenever the event fired at all — no trim needed.
            total_slots = 0
            lanes = [0] * w_c
            acc = 0
            for start in range(w_c):
                acc += hist[start]
                lanes[start] = acc
                total_slots += hist[start] * (w_c - start)
            if total_slots:
                events[name] = total_slots
                lane_events[name] = lanes
        for name, count in (("fence_retired", n_fence_retired),
                            ("br_mispredict", n_br_mispredict),
                            ("cf_target_mispredict", n_cf_mispredict),
                            ("flush", n_flush),
                            ("icache_blocked", n_icache_blocked),
                            ("itlb_miss", n_itlb_miss),
                            ("icache_miss", n_icache_miss),
                            ("dtlb_miss", n_dtlb_miss),
                            ("l2_tlb_miss", n_l2tlb_miss),
                            ("dcache_miss", n_dcache_miss),
                            ("recovering", n_recovering)):
            if count:
                events[name] = count
        return CoreResult(
            workload=trace.program_name, config_name=config.name,
            core="boom", cycles=cycle, instret=retired,
            events=events, lane_events=lane_events,
            commit_width=w_c, issue_width=issue_width,
            l1i_stats=self.l1i.stats, l1d_stats=self.l1d.stats,
            l2_stats=self.memory.l2.stats,
            predictor_stats=self.predictor.stats,
            extra={"machine_clears": float(self.machine_clears),
                   "decode_resteers": float(self.predictor.decode_resteers)})

    # ------------------------------------------------------------------
    # issue helpers
    # ------------------------------------------------------------------

    def _try_issue(self, uop: _Uop, cycle: int,
                   signals: Dict[str, int]) -> bool:
        """Attempt to issue *uop*; returns False on a structural stall."""
        if uop.is_phantom:
            uop.completed_cycle = cycle + uop.latency
            return True
        if uop.is_load:
            return self._issue_load(uop, cycle, signals)
        if uop.is_store:
            self._issue_store(uop, cycle, signals)
            return True
        uop.completed_cycle = cycle + uop.latency
        return True

    def _issue_load(self, uop: _Uop, cycle: int,
                    signals: Dict[str, int]) -> bool:
        blocking_store = self._older_overlapping_store(uop)
        if blocking_store is not None:
            if uop.inst.pc in self._trained_loads:
                return False  # store-set predictor holds this load back
            # Speculate past the store; the store will machine-clear us.
            if blocking_store.violating_load_seq is None \
                    or uop.seq < blocking_store.violating_load_seq:
                blocking_store.violating_load_seq = uop.seq
            self._trained_loads.add(uop.inst.pc)
            uop.completed_cycle = cycle + 2
            return True
        if self._forwarding_store(uop) is not None:
            uop.completed_cycle = cycle + 2  # store-to-load forwarding
            return True
        hit_tlb, tlb_extra = self.tlbs.access_data(uop.mem_addr)
        if not hit_tlb:
            signals["dtlb_miss"] = signals.get("dtlb_miss", 0) | 1
            if tlb_extra > 10:
                signals["l2_tlb_miss"] = signals.get("l2_tlb_miss", 0) | 1
        if self.l1d.mshrs.is_full(cycle) \
                and not self.l1d.cache.lookup(uop.mem_addr):
            return False  # no MSHR for a would-be miss: retry later
        hit, ready, primary = self.l1d.access_ex(uop.mem_addr, cycle)
        if primary:
            signals["dcache_miss"] = signals.get("dcache_miss", 0) | 1
        if self.dprefetcher is not None:
            targets = self.dprefetcher.train(uop.inst.pc, uop.mem_addr)
            if targets:
                self.dprefetcher.issue(self.l1d, targets, cycle)
        uop.completed_cycle = ready + tlb_extra
        return True

    def _issue_store(self, uop: _Uop, cycle: int,
                     signals: Dict[str, int]) -> None:
        hit_tlb, tlb_extra = self.tlbs.access_data(uop.mem_addr)
        if not hit_tlb:
            signals["dtlb_miss"] = signals.get("dtlb_miss", 0) | 1
        _, _, primary = self.l1d.access_ex(uop.mem_addr, cycle,
                                           is_store=True)
        if primary:
            signals["dcache_miss"] = signals.get("dcache_miss", 0) | 1
        uop.completed_cycle = cycle + 1 + tlb_extra

    def _older_overlapping_store(self, load: _Uop) -> Optional[_Uop]:
        lo, hi = load.mem_addr, load.mem_addr + load.mem_width
        for store in self._stq:
            if store.seq >= load.seq or store.issued or store.flushed:
                continue
            if store.mem_addr < hi and lo < store.mem_addr + store.mem_width:
                return store
        return None

    def _forwarding_store(self, load: _Uop) -> Optional[_Uop]:
        best: Optional[_Uop] = None
        for store in self._stq:
            if store.seq >= load.seq or not store.issued or store.flushed:
                continue
            if store.mem_addr == load.mem_addr \
                    and store.mem_width >= load.mem_width:
                if best is None or store.seq > best.seq:
                    best = store
        return best

    # ------------------------------------------------------------------
    # dispatch helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _rename(uop: _Uop, reg_producers: Dict[int, List["_Uop"]]) -> None:
        inst = uop.inst
        if inst is None:
            return
        for src in inst.srcs:
            producers = reg_producers.get(src)
            if producers:
                while producers and producers[-1].flushed:
                    producers.pop()
                if producers:
                    uop.producers.append(producers[-1])
        if uop.dest >= 0:
            reg_producers.setdefault(uop.dest, []).append(uop)

    # ------------------------------------------------------------------
    # flush machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _flush_younger(seq: int, rob: Deque[_Uop],
                       iqs: Tuple[List[_Uop], ...],
                       fetch_buffer: Deque[_Uop], stq: List[_Uop],
                       pending_resolves: List[_Uop]) -> None:
        while rob and rob[-1].seq >= seq:
            rob.pop().flushed = True
        for queue in iqs:
            queue[:] = [u for u in queue if not u.flushed]
        for uop in fetch_buffer:
            uop.flushed = True
        fetch_buffer.clear()
        stq[:] = [u for u in stq if not u.flushed]
        pending_resolves[:] = [u for u in pending_resolves if not u.flushed]

    @staticmethod
    def _recount_queues(rob: Deque[_Uop]) -> Tuple[int, int]:
        ldq = sum(1 for u in rob if u.is_load and not u.is_phantom)
        stq = sum(1 for u in rob if u.is_store and not u.is_phantom)
        return ldq, stq

    @staticmethod
    def _index_of_seq(rob: Deque[_Uop], seq: int) -> Optional[int]:
        for uop in rob:
            if uop.seq == seq and uop.inst is not None:
                return uop.inst.index
        return None

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_phantoms(self, fetch_buffer: Deque[_Uop], capacity: int,
                        seq: int) -> int:
        """Supply wrong-path phantom µops at full fetch bandwidth."""
        count = min(self.config.fetch_width, capacity - len(fetch_buffer))
        for _ in range(count):
            queue = _MEM_QUEUE if (seq & 3) == 3 else _INT_QUEUE
            fetch_buffer.append(_Uop(seq, None, queue, 1))
            seq += 1
        return seq

    def _fetch(self, instructions: List[DynInst], fetch_idx: int,
               cycle: int, fetch_buffer: Deque[_Uop], capacity: int,
               signals: Dict[str, int], seq: int, wrong_path: bool,
               l1i_refill_until: int
               ) -> Tuple[bool, int, int, int, int, bool]:
        """Fetch one packet; returns updated frontend state."""
        first = instructions[fetch_idx]
        pc = first.pc

        tlb_hit, tlb_extra = self.tlbs.access_instruction(pc)
        if not tlb_hit:
            signals["itlb_miss"] = 1
            if tlb_extra > 10:
                signals["l2_tlb_miss"] = signals.get("l2_tlb_miss", 0) | 1
        hit, latency = self.l1i.access(pc, cycle=cycle)
        if not hit:
            signals["icache_miss"] = 1
            if self.config.icache_prefetch:
                # Next-line prefetch: pull the following block alongside.
                block_bytes = self.l1i.config.block_bytes
                next_block = self.l1i.block_address(pc) + block_bytes
                if not self.l1i.lookup(next_block):
                    self.l1i.access(next_block)
                    self.l1i.stats.accesses -= 1
                    self.l1i.stats.misses -= 1
        latency += tlb_extra
        if not hit or tlb_extra:
            stall_until = cycle + latency
            return (False, stall_until, stall_until, seq, fetch_idx,
                    wrong_path)

        total = len(instructions)
        block = self.l1i.block_address(pc)
        fetched = 0
        prev_pc = None
        resume_at = cycle + 1
        while (fetch_idx < total and fetched < self.config.fetch_width
               and len(fetch_buffer) < capacity):
            inst = instructions[fetch_idx]
            if prev_pc is not None and inst.pc != prev_pc + 4:
                break
            if self.l1i.block_address(inst.pc) != block:
                break
            uop = _Uop(seq, inst, _QUEUE_OF_CLASS[inst.cls], inst.latency)
            seq += 1
            end_packet = False
            if inst.is_branch:
                prediction = self.predictor.predict_branch(inst.pc)
                uop.prediction = prediction
                mispredicted = prediction.taken != inst.taken
                uop.mispredicted = mispredicted
                self.predictor.resolve_branch(inst.pc, inst.taken,
                                              inst.next_pc, prediction)
                if mispredicted:
                    wrong_path = True
                    end_packet = True
                elif inst.taken:
                    end_packet = True
                    if not prediction.btb_hit:
                        resume_at = cycle + 2  # decode resteer
            elif inst.cls == InstrClass.JUMP:
                if inst.dest == 1:  # call: push the return address
                    self.predictor.ras.push(inst.pc + 4)
                if self.predictor.btb.lookup(inst.pc) is None:
                    resume_at = cycle + 2  # decode computes the jal target
                    self.predictor.btb.insert(inst.pc, inst.next_pc)
                end_packet = True
            elif inst.cls == InstrClass.JUMP_REG:
                is_return = (inst.dest < 0 and inst.srcs == (1,))
                predicted = self.predictor.predict_indirect(
                    inst.pc, is_return=is_return)
                uop.indirect_prediction = predicted
                mispredicted = self.predictor.resolve_indirect(
                    inst.pc, inst.next_pc, predicted)
                uop.mispredicted = mispredicted
                if mispredicted:
                    wrong_path = True
                end_packet = True
            fetch_buffer.append(uop)
            fetched += 1
            prev_pc = inst.pc
            fetch_idx += 1
            if end_packet:
                break
        return (fetched > 0, resume_at, l1i_refill_until, seq, fetch_idx,
                wrong_path)
