"""Cycle-level timing model of the BOOM superscalar OoO core (Fig. 2b).

The model replays a committed-path dynamic trace through a parameterized
out-of-order pipeline: fetch (L1I + TAGE/BTB/RAS + fetch buffer), decode/
dispatch (W_C wide, into a ROB and split int/mem/FP issue queues), issue
(per-queue ports, wakeup on producer completion), a non-blocking L1D with
MSHRs, store-to-load forwarding with memory-ordering speculation (machine
clears), and W_C-wide in-order commit.

Wrong-path work is modelled with *phantom µops*: once a mispredicted
control-flow instruction is fetched, the frontend supplies phantoms until
the mispredict resolves in execute; the resolution flushes everything
younger and starts the ``Recovering`` window.  Issued phantoms are the
reason ``Uops-issued − Uops-retired`` measures Bad Speculation slots
exactly as the paper's event pair does (§IV-A).

All seven of Icicle's new BOOM events (Table I) are emitted here, along
with the pre-existing Basic/Microarchitectural/Memory events.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ...isa.dyn_trace import DynamicTrace, DynInst
from ...isa.instructions import InstrClass
from ...uarch.branch import BoomBranchPredictor, Prediction
from ...uarch.cache import MemorySystem, NonBlockingCache
from ...uarch.prefetch import StridePrefetcher
from ...uarch.tlb import TlbHierarchy
from ..base import (BoomConfig, CoreFaultHook, CoreResult, EventAccumulator,
                    SignalObserver, check_cycle_budget, check_run_completed)
from ..configs import LARGE_BOOM

_SAFETY_CYCLES_PER_INST = 600

_INT_QUEUE = 0
_MEM_QUEUE = 1
_FP_QUEUE = 2

_QUEUE_OF_CLASS = {
    InstrClass.ALU: _INT_QUEUE,
    InstrClass.MUL: _INT_QUEUE,
    InstrClass.DIV: _INT_QUEUE,
    InstrClass.BRANCH: _INT_QUEUE,
    InstrClass.JUMP: _INT_QUEUE,
    InstrClass.JUMP_REG: _INT_QUEUE,
    InstrClass.CSR: _INT_QUEUE,
    InstrClass.SYSTEM: _INT_QUEUE,
    InstrClass.FENCE: _INT_QUEUE,
    InstrClass.LOAD: _MEM_QUEUE,
    InstrClass.STORE: _MEM_QUEUE,
    InstrClass.AMO: _MEM_QUEUE,
    InstrClass.FP_LOAD: _MEM_QUEUE,
    InstrClass.FP_STORE: _MEM_QUEUE,
    InstrClass.FP: _FP_QUEUE,
    InstrClass.FP_DIV: _FP_QUEUE,
}


class _Uop:
    """A micro-op in flight (real, or a phantom wrong-path stand-in)."""

    __slots__ = ("seq", "inst", "queue", "latency", "producers", "dest",
                 "is_phantom", "issued", "completed_cycle", "flushed",
                 "prediction", "indirect_prediction", "mispredicted",
                 "is_load", "is_store", "mem_addr", "mem_width",
                 "violating_load_seq")

    def __init__(self, seq: int, inst: Optional[DynInst], queue: int,
                 latency: int) -> None:
        self.seq = seq
        self.inst = inst
        self.queue = queue
        self.latency = latency
        self.producers: List["_Uop"] = []
        self.dest = inst.dest if inst is not None else -1
        self.is_phantom = inst is None
        self.issued = False
        self.completed_cycle: Optional[int] = None
        self.flushed = False
        self.prediction: Optional[Prediction] = None
        self.indirect_prediction: Optional[int] = None
        self.mispredicted = False
        self.is_load = inst.is_load if inst is not None else False
        self.is_store = inst.is_store if inst is not None else False
        self.mem_addr = inst.mem_addr if inst is not None else 0
        self.mem_width = inst.mem_width if inst is not None else 0
        # Seq of the youngest load that speculatively bypassed this store.
        self.violating_load_seq: Optional[int] = None

    def ready(self, cycle: int) -> bool:
        """Wakeup check: all producers complete by *cycle*."""
        producers = self.producers
        while producers:
            producer = producers[-1]
            done = producer.completed_cycle
            if producer.flushed or (done is not None and done <= cycle):
                producers.pop()
            else:
                return False
        return True

    @property
    def serializes(self) -> bool:
        """Fence/CSR/system µops dispatch alone with a drained ROB."""
        if self.inst is None:
            return False
        return self.inst.cls in (InstrClass.FENCE, InstrClass.CSR,
                                 InstrClass.SYSTEM)


class BoomCore:
    """Trace-driven BOOM timing model."""

    def __init__(self, config: BoomConfig = LARGE_BOOM,
                 memory: Optional[MemorySystem] = None,
                 observers: Sequence[SignalObserver] = ()) -> None:
        self.config = config
        self.memory = memory or MemorySystem.build(l1d_config=config.l1d)
        self.l1i = self.memory.l1i
        self.l1d: NonBlockingCache = self.memory.nonblocking_l1d(config.mshrs)
        self.tlbs = TlbHierarchy()
        self.predictor = BoomBranchPredictor(
            btb_entries=config.btb_entries,
            direction=config.branch_predictor)
        self.dprefetcher = (StridePrefetcher()
                            if config.dcache_prefetch else None)
        self.observers: List[SignalObserver] = list(observers)
        self.fault_hook: Optional[CoreFaultHook] = None
        self.machine_clears = 0
        #: PCs of loads that previously caused an ordering violation; the
        #: (modelled) store-set predictor makes them wait thereafter.
        self._trained_loads: Set[int] = set()
        self._stq: List[_Uop] = []

    def add_observer(self, observer: SignalObserver) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------------

    def run(self, trace: DynamicTrace,
            max_cycles: Optional[int] = None,
            fast_path: Optional[bool] = None) -> CoreResult:
        """Replay *trace* and return per-event totals.

        *max_cycles* arms a watchdog (default off): exceeding the budget
        raises :class:`~repro.isa.errors.RunTimeout` instead of spinning
        until the internal safety stop silently truncates the run.

        *fast_path* (default auto, like
        :meth:`repro.cores.rocket.RocketCore.run`) reuses one signal
        dictionary across cycles instead of allocating a fresh per-cycle
        record when no observer or fault hook needs to retain it; the
        results are bit-identical either way.
        """
        traceless = not self.observers and self.fault_hook is None
        if fast_path is None:
            fast_path = traceless
        elif fast_path and not traceless:
            raise ValueError(
                "fast_path=True reuses the per-cycle signal record, but "
                "an observer or fault hook is attached and retains it")
        config = self.config
        w_c = config.decode_width
        issue_ports = (config.issue_int, config.issue_mem, config.issue_fp)
        accumulator = EventAccumulator(track_lanes={
            "uops_issued", "fetch_bubbles", "dcache_blocked",
            "uops_retired"})
        observers = self.observers
        instructions = trace.instructions
        total = len(instructions)

        rob: Deque[_Uop] = deque()
        iqs: Tuple[List[_Uop], List[_Uop], List[_Uop]] = ([], [], [])
        iq_capacity = (config.iq_int, config.iq_mem, config.iq_fp)
        fetch_buffer: Deque[_Uop] = deque()
        fb_capacity = config.fetch_buffer_size
        self._stq = []
        stq = self._stq
        ldq_used = 0
        stq_used = 0

        reg_producers: Dict[int, List[_Uop]] = {}
        pending_resolves: List[_Uop] = []   # mispredicted CF uops in flight
        serialized_uop: Optional[_Uop] = None

        fetch_idx = 0
        seq = 0
        retired = 0
        cycle = 0

        fetch_resume_at = 0
        l1i_refill_until = 0
        recovering = False
        recovering_from = 0       # first cycle the window is visible
        wrong_path = False        # a mispredicted CF is in flight

        safety_limit = total * _SAFETY_CYCLES_PER_INST + 20_000
        budget = safety_limit + 1 if max_cycles is None else max_cycles
        fault_hook = self.fault_hook
        accumulator_add = accumulator.add
        mshr_refill_in_flight = self.l1d.mshrs.refill_in_flight
        rob_capacity = config.rob_entries
        #: Fast path: one reused record, cleared per cycle; traced path
        #: allocates per cycle because observers may retain the mapping.
        reused_signals: Dict[str, int] = {}

        while retired < total and cycle < safety_limit:
            if cycle >= budget:
                check_cycle_budget(cycle, max_cycles,
                                   workload=trace.program_name,
                                   retired=retired, total=total)
            if fault_hook is not None and fault_hook.stall_cycle(cycle):
                # Injected stall: the whole core freezes this cycle.
                cycle += 1
                continue
            if fast_path:
                signals = reused_signals
                signals.clear()
                signals["cycles"] = 1
            else:
                signals = {"cycles": 1}

            # ---------------- commit ----------------------------------
            commit_lanes = 0
            fence_flush: Optional[_Uop] = None
            while rob and commit_lanes < w_c:
                head = rob[0]
                done = head.completed_cycle
                if not head.issued or done is None or done > cycle:
                    break
                rob.popleft()
                commit_lanes += 1
                retired += 1
                if head.is_load:
                    ldq_used = max(0, ldq_used - 1)
                if head.is_store:
                    stq_used = max(0, stq_used - 1)
                    if head in stq:
                        stq.remove(head)
                if head is serialized_uop:
                    serialized_uop = None
                inst = head.inst
                if inst is not None and inst.is_fence:
                    signals["fence_retired"] = 1
                    fence_flush = head
                    break
            if commit_lanes:
                mask = (1 << commit_lanes) - 1
                signals["uops_retired"] = mask
                signals["instr_retired"] = mask

            if fence_flush is not None:
                # Intended flush: restart the frontend after the fence.
                self._flush_younger(fence_flush.seq + 1, rob, iqs,
                                    fetch_buffer, stq, pending_resolves)
                ldq_used, stq_used = self._recount_queues(rob)
                fetch_idx = fence_flush.inst.index + 1
                fetch_resume_at = cycle + config.redirect_latency
                recovering = True
                recovering_from = cycle + 1
                wrong_path = False
                if fence_flush.inst.mnemonic == "fence.i":
                    self.l1i.flush()

            # ---------------- resolve mispredicted control flow -------
            resolved: Optional[_Uop] = None
            for uop in pending_resolves:
                done = uop.completed_cycle
                if uop.issued and done is not None and done <= cycle:
                    if resolved is None or uop.seq < resolved.seq:
                        resolved = uop
            if resolved is not None:
                pending_resolves.remove(resolved)
                if resolved.inst is not None and resolved.inst.is_branch:
                    signals["br_mispredict"] = 1
                else:
                    signals["cf_target_mispredict"] = 1
                self._flush_younger(resolved.seq + 1, rob, iqs, fetch_buffer,
                                    stq, pending_resolves)
                ldq_used, stq_used = self._recount_queues(rob)
                fetch_idx = resolved.inst.index + 1
                fetch_resume_at = cycle + config.redirect_latency
                recovering = True
                recovering_from = cycle + 1
                wrong_path = False

            # ---------------- issue ------------------------------------
            issued_total = 0
            issue_lane = 0
            machine_clear_store: Optional[_Uop] = None
            any_queue_nonempty = any(iqs)
            for queue_index, queue in enumerate(iqs):
                ports = issue_ports[queue_index]
                issued_here = 0
                if queue:
                    kept: List[_Uop] = []
                    for uop in queue:
                        if uop.flushed:
                            continue
                        if issued_here < ports and uop.ready(cycle) \
                                and self._try_issue(uop, cycle, signals):
                            uop.issued = True
                            signals["uops_issued"] = (
                                signals.get("uops_issued", 0)
                                | (1 << (issue_lane + issued_here)))
                            issued_here += 1
                            if uop.mispredicted:
                                pending_resolves.append(uop)
                            if uop.violating_load_seq is not None \
                                    and machine_clear_store is None:
                                machine_clear_store = uop
                        else:
                            kept.append(uop)
                    queue[:] = kept
                issued_total += issued_here
                issue_lane += ports

            if machine_clear_store is not None:
                load_seq = machine_clear_store.violating_load_seq
                machine_clear_store.violating_load_seq = None
                refetch_index = self._index_of_seq(rob, load_seq)
                if refetch_index is not None:
                    # Memory-ordering violation: machine clear, squash
                    # from the offending load onward and refetch it.
                    signals["flush"] = 1
                    self.machine_clears += 1
                    self._flush_younger(load_seq, rob, iqs, fetch_buffer,
                                        stq, pending_resolves)
                    ldq_used, stq_used = self._recount_queues(rob)
                    fetch_idx = refetch_index
                    fetch_resume_at = cycle + config.redirect_latency
                    recovering = True
                    recovering_from = cycle + 1
                    wrong_path = False
                    if serialized_uop is not None and serialized_uop.flushed:
                        serialized_uop = None

            # D$-blocked heuristic (§IV-A): per commit-width slot, high
            # when the slot got no valid instruction, a queue is
            # non-empty, and at least one MSHR is handling a miss.
            if any_queue_nonempty and mshr_refill_in_flight(cycle):
                mask = 0
                for slot in range(w_c):
                    if issued_total <= slot:
                        mask |= 1 << slot
                if mask:
                    signals["dcache_blocked"] = mask

            # ---------------- dispatch ---------------------------------
            bubble_mask = 0
            backend_blocked = serialized_uop is not None
            for lane in range(w_c):
                if backend_blocked:
                    break
                if not fetch_buffer:
                    if not recovering and len(rob) < rob_capacity:
                        bubble_mask |= 1 << lane
                    continue
                uop = fetch_buffer[0]
                if len(rob) >= rob_capacity:
                    break
                if uop.serializes:
                    if rob:
                        break  # wait for the ROB to drain
                    fetch_buffer.popleft()
                    uop.issued = True
                    uop.completed_cycle = cycle + 1
                    # The serialized uop bypasses the issue queues but
                    # still occupies an issue slot this cycle (the ROB
                    # is empty, so lane 0 is necessarily free); without
                    # this the paper's BadSpec pair Uops-issued minus
                    # Uops-retired undercounts by one per fence/CSR.
                    signals["uops_issued"] = signals.get(
                        "uops_issued", 0) | 1
                    rob.append(uop)
                    serialized_uop = uop
                    backend_blocked = True
                    continue
                queue_index = uop.queue
                if len(iqs[queue_index]) >= iq_capacity[queue_index]:
                    break
                if not uop.is_phantom:
                    if uop.is_load and ldq_used >= config.ldq_entries:
                        break
                    if uop.is_store and stq_used >= config.stq_entries:
                        break
                fetch_buffer.popleft()
                self._rename(uop, reg_producers)
                rob.append(uop)
                iqs[queue_index].append(uop)
                if not uop.is_phantom:
                    if uop.is_load:
                        ldq_used += 1
                    if uop.is_store:
                        stq_used += 1
                        stq.append(uop)
            if bubble_mask:
                signals["fetch_bubbles"] = bubble_mask

            # ---------------- fetch ------------------------------------
            if l1i_refill_until > cycle and not fetch_buffer:
                signals["icache_blocked"] = 1

            fetched_any = False
            if len(fetch_buffer) < fb_capacity and cycle >= fetch_resume_at:
                if wrong_path:
                    seq = self._fetch_phantoms(fetch_buffer, fb_capacity,
                                               seq)
                    fetched_any = True
                elif fetch_idx < total:
                    (fetched_any, fetch_resume_at, l1i_refill_until, seq,
                     fetch_idx, wrong_path) = self._fetch(
                        instructions, fetch_idx, cycle, fetch_buffer,
                        fb_capacity, signals, seq, wrong_path,
                        l1i_refill_until)
            if recovering:
                if fetched_any:
                    recovering = False
                elif cycle >= recovering_from:
                    signals["recovering"] = 1

            accumulator_add(signals)
            for observer in observers:
                observer.on_cycle(cycle, signals)
            cycle += 1

        check_run_completed(retired, total, cycle, max_cycles,
                            workload=trace.program_name)
        return CoreResult(
            workload=trace.program_name, config_name=config.name,
            core="boom", cycles=cycle, instret=retired,
            events=accumulator.totals, lane_events=accumulator.lane_totals,
            commit_width=w_c, issue_width=config.issue_width,
            l1i_stats=self.l1i.stats, l1d_stats=self.l1d.stats,
            l2_stats=self.memory.l2.stats,
            predictor_stats=self.predictor.stats,
            extra={"machine_clears": float(self.machine_clears),
                   "decode_resteers": float(self.predictor.decode_resteers)})

    # ------------------------------------------------------------------
    # issue helpers
    # ------------------------------------------------------------------

    def _try_issue(self, uop: _Uop, cycle: int,
                   signals: Dict[str, int]) -> bool:
        """Attempt to issue *uop*; returns False on a structural stall."""
        if uop.is_phantom:
            uop.completed_cycle = cycle + uop.latency
            return True
        if uop.is_load:
            return self._issue_load(uop, cycle, signals)
        if uop.is_store:
            self._issue_store(uop, cycle, signals)
            return True
        uop.completed_cycle = cycle + uop.latency
        return True

    def _issue_load(self, uop: _Uop, cycle: int,
                    signals: Dict[str, int]) -> bool:
        blocking_store = self._older_overlapping_store(uop)
        if blocking_store is not None:
            if uop.inst.pc in self._trained_loads:
                return False  # store-set predictor holds this load back
            # Speculate past the store; the store will machine-clear us.
            if blocking_store.violating_load_seq is None \
                    or uop.seq < blocking_store.violating_load_seq:
                blocking_store.violating_load_seq = uop.seq
            self._trained_loads.add(uop.inst.pc)
            uop.completed_cycle = cycle + 2
            return True
        if self._forwarding_store(uop) is not None:
            uop.completed_cycle = cycle + 2  # store-to-load forwarding
            return True
        hit_tlb, tlb_extra = self.tlbs.access_data(uop.mem_addr)
        if not hit_tlb:
            signals["dtlb_miss"] = signals.get("dtlb_miss", 0) | 1
            if tlb_extra > 10:
                signals["l2_tlb_miss"] = signals.get("l2_tlb_miss", 0) | 1
        if self.l1d.mshrs.is_full(cycle) \
                and not self.l1d.cache.lookup(uop.mem_addr):
            return False  # no MSHR for a would-be miss: retry later
        hit, ready, primary = self.l1d.access_ex(uop.mem_addr, cycle)
        if primary:
            signals["dcache_miss"] = signals.get("dcache_miss", 0) | 1
        if self.dprefetcher is not None:
            targets = self.dprefetcher.train(uop.inst.pc, uop.mem_addr)
            if targets:
                self.dprefetcher.issue(self.l1d, targets, cycle)
        uop.completed_cycle = ready + tlb_extra
        return True

    def _issue_store(self, uop: _Uop, cycle: int,
                     signals: Dict[str, int]) -> None:
        hit_tlb, tlb_extra = self.tlbs.access_data(uop.mem_addr)
        if not hit_tlb:
            signals["dtlb_miss"] = signals.get("dtlb_miss", 0) | 1
        _, _, primary = self.l1d.access_ex(uop.mem_addr, cycle,
                                           is_store=True)
        if primary:
            signals["dcache_miss"] = signals.get("dcache_miss", 0) | 1
        uop.completed_cycle = cycle + 1 + tlb_extra

    def _older_overlapping_store(self, load: _Uop) -> Optional[_Uop]:
        lo, hi = load.mem_addr, load.mem_addr + load.mem_width
        for store in self._stq:
            if store.seq >= load.seq or store.issued or store.flushed:
                continue
            if store.mem_addr < hi and lo < store.mem_addr + store.mem_width:
                return store
        return None

    def _forwarding_store(self, load: _Uop) -> Optional[_Uop]:
        best: Optional[_Uop] = None
        for store in self._stq:
            if store.seq >= load.seq or not store.issued or store.flushed:
                continue
            if store.mem_addr == load.mem_addr \
                    and store.mem_width >= load.mem_width:
                if best is None or store.seq > best.seq:
                    best = store
        return best

    # ------------------------------------------------------------------
    # dispatch helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _rename(uop: _Uop, reg_producers: Dict[int, List["_Uop"]]) -> None:
        inst = uop.inst
        if inst is None:
            return
        for src in inst.srcs:
            producers = reg_producers.get(src)
            if producers:
                while producers and producers[-1].flushed:
                    producers.pop()
                if producers:
                    uop.producers.append(producers[-1])
        if uop.dest >= 0:
            reg_producers.setdefault(uop.dest, []).append(uop)

    # ------------------------------------------------------------------
    # flush machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _flush_younger(seq: int, rob: Deque[_Uop],
                       iqs: Tuple[List[_Uop], ...],
                       fetch_buffer: Deque[_Uop], stq: List[_Uop],
                       pending_resolves: List[_Uop]) -> None:
        while rob and rob[-1].seq >= seq:
            rob.pop().flushed = True
        for queue in iqs:
            queue[:] = [u for u in queue if not u.flushed]
        for uop in fetch_buffer:
            uop.flushed = True
        fetch_buffer.clear()
        stq[:] = [u for u in stq if not u.flushed]
        pending_resolves[:] = [u for u in pending_resolves if not u.flushed]

    @staticmethod
    def _recount_queues(rob: Deque[_Uop]) -> Tuple[int, int]:
        ldq = sum(1 for u in rob if u.is_load and not u.is_phantom)
        stq = sum(1 for u in rob if u.is_store and not u.is_phantom)
        return ldq, stq

    @staticmethod
    def _index_of_seq(rob: Deque[_Uop], seq: int) -> Optional[int]:
        for uop in rob:
            if uop.seq == seq and uop.inst is not None:
                return uop.inst.index
        return None

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_phantoms(self, fetch_buffer: Deque[_Uop], capacity: int,
                        seq: int) -> int:
        """Supply wrong-path phantom µops at full fetch bandwidth."""
        count = min(self.config.fetch_width, capacity - len(fetch_buffer))
        for _ in range(count):
            queue = _MEM_QUEUE if (seq & 3) == 3 else _INT_QUEUE
            fetch_buffer.append(_Uop(seq, None, queue, 1))
            seq += 1
        return seq

    def _fetch(self, instructions: List[DynInst], fetch_idx: int,
               cycle: int, fetch_buffer: Deque[_Uop], capacity: int,
               signals: Dict[str, int], seq: int, wrong_path: bool,
               l1i_refill_until: int
               ) -> Tuple[bool, int, int, int, int, bool]:
        """Fetch one packet; returns updated frontend state."""
        first = instructions[fetch_idx]
        pc = first.pc

        tlb_hit, tlb_extra = self.tlbs.access_instruction(pc)
        if not tlb_hit:
            signals["itlb_miss"] = 1
            if tlb_extra > 10:
                signals["l2_tlb_miss"] = signals.get("l2_tlb_miss", 0) | 1
        hit, latency = self.l1i.access(pc, cycle=cycle)
        if not hit:
            signals["icache_miss"] = 1
            if self.config.icache_prefetch:
                # Next-line prefetch: pull the following block alongside.
                block_bytes = self.l1i.config.block_bytes
                next_block = self.l1i.block_address(pc) + block_bytes
                if not self.l1i.lookup(next_block):
                    self.l1i.access(next_block)
                    self.l1i.stats.accesses -= 1
                    self.l1i.stats.misses -= 1
        latency += tlb_extra
        if not hit or tlb_extra:
            stall_until = cycle + latency
            return (False, stall_until, stall_until, seq, fetch_idx,
                    wrong_path)

        total = len(instructions)
        block = self.l1i.block_address(pc)
        fetched = 0
        prev_pc = None
        resume_at = cycle + 1
        while (fetch_idx < total and fetched < self.config.fetch_width
               and len(fetch_buffer) < capacity):
            inst = instructions[fetch_idx]
            if prev_pc is not None and inst.pc != prev_pc + 4:
                break
            if self.l1i.block_address(inst.pc) != block:
                break
            uop = _Uop(seq, inst, _QUEUE_OF_CLASS[inst.cls], inst.latency)
            seq += 1
            end_packet = False
            if inst.is_branch:
                prediction = self.predictor.predict_branch(inst.pc)
                uop.prediction = prediction
                mispredicted = prediction.taken != inst.taken
                uop.mispredicted = mispredicted
                self.predictor.resolve_branch(inst.pc, inst.taken,
                                              inst.next_pc, prediction)
                if mispredicted:
                    wrong_path = True
                    end_packet = True
                elif inst.taken:
                    end_packet = True
                    if not prediction.btb_hit:
                        resume_at = cycle + 2  # decode resteer
            elif inst.cls == InstrClass.JUMP:
                if inst.dest == 1:  # call: push the return address
                    self.predictor.ras.push(inst.pc + 4)
                if self.predictor.btb.lookup(inst.pc) is None:
                    resume_at = cycle + 2  # decode computes the jal target
                    self.predictor.btb.insert(inst.pc, inst.next_pc)
                end_packet = True
            elif inst.cls == InstrClass.JUMP_REG:
                is_return = (inst.dest < 0 and inst.srcs == (1,))
                predicted = self.predictor.predict_indirect(
                    inst.pc, is_return=is_return)
                uop.indirect_prediction = predicted
                mispredicted = self.predictor.resolve_indirect(
                    inst.pc, inst.next_pc, predicted)
                uop.mispredicted = mispredicted
                if mispredicted:
                    wrong_path = True
                end_packet = True
            fetch_buffer.append(uop)
            fetched += 1
            prev_pc = inst.pc
            fetch_idx += 1
            if end_packet:
                break
        return (fetched > 0, resume_at, l1i_refill_until, seq, fetch_idx,
                wrong_path)
