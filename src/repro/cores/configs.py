"""Core configurations from Table IV.

The issue-width split across the integer, memory, and floating-point
queues is not given explicitly in the table; we split the published total
W_I in the same proportions as BOOM's standard configs (the FP queue gets
the final port — the per-lane study of §V-A relies on queue asymmetry).
"""

from __future__ import annotations

from typing import Dict, Union

from .base import BoomConfig, RocketConfig

ROCKET = RocketConfig()

SMALL_BOOM = BoomConfig(
    name="SmallBOOMV3", fetch_width=4, decode_width=1, rob_entries=32,
    iq_int=8, iq_mem=8, iq_fp=8, ldq_entries=8, stq_entries=8, mshrs=2,
    issue_int=1, issue_mem=1, issue_fp=1)

MEDIUM_BOOM = BoomConfig(
    name="MediumBOOMV3", fetch_width=4, decode_width=2, rob_entries=64,
    iq_int=12, iq_mem=20, iq_fp=16, ldq_entries=16, stq_entries=16, mshrs=2,
    issue_int=2, issue_mem=1, issue_fp=1)

LARGE_BOOM = BoomConfig(
    name="LargeBOOMV3", fetch_width=8, decode_width=3, rob_entries=96,
    iq_int=16, iq_mem=32, iq_fp=24, ldq_entries=24, stq_entries=24, mshrs=4,
    issue_int=2, issue_mem=2, issue_fp=1)

MEGA_BOOM = BoomConfig(
    name="MegaBOOMV3", fetch_width=8, decode_width=4, rob_entries=128,
    iq_int=24, iq_mem=40, iq_fp=32, ldq_entries=32, stq_entries=32, mshrs=8,
    issue_int=3, issue_mem=3, issue_fp=2)

GIGA_BOOM = BoomConfig(
    name="GigaBOOMV3", fetch_width=8, decode_width=5, rob_entries=130,
    iq_int=24, iq_mem=40, iq_fp=32, ldq_entries=32, stq_entries=32, mshrs=8,
    issue_int=4, issue_mem=3, issue_fp=2)

ALL_BOOM_CONFIGS = (SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM, MEGA_BOOM,
                    GIGA_BOOM)

CONFIGS_BY_NAME: Dict[str, Union[RocketConfig, BoomConfig]] = {
    "rocket": ROCKET,
    "small-boom": SMALL_BOOM,
    "medium-boom": MEDIUM_BOOM,
    "large-boom": LARGE_BOOM,
    "mega-boom": MEGA_BOOM,
    "giga-boom": GIGA_BOOM,
}


def config_by_name(name: str) -> Union[RocketConfig, BoomConfig]:
    """Look up a Table IV configuration by its short name."""
    key = name.strip().lower()
    if key not in CONFIGS_BY_NAME:
        raise KeyError(
            f"unknown config {name!r}; choose from {sorted(CONFIGS_BY_NAME)}")
    return CONFIGS_BY_NAME[key]
