"""Timing-descriptor tables: per-static-op facts compiled to flat arrays.

The columnar timing engines (``REPRO_TIMING_ENGINE=columnar``) never
touch ``DynInst`` objects: the cycle loops read the dynamic columns of a
:class:`~repro.isa.columnar.ColumnarTrace` (``sidx``/``mem_addr``/
``next_pc``/``taken``) and look every *static* fact up in the tables
below — ``descriptor[sidx[i]]`` instead of attribute chains on a
materialized object.  Each table is compiled once per trace per core
family and cached on the trace (:meth:`ColumnarTrace.timing_table`), so
a TMA sweep pays the compilation for its few-hundred static ops exactly
once, not once per dynamic instruction per config point.

Everything here is *derived* from ``StaticOp`` — the tables introduce no
new semantics, which is what keeps the columnar loops bit-identical to
the ``DynInst``-walking oracle loops (pinned by
``tests/test_timing_engine.py``).
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from ..isa.columnar import StaticOp
from ..isa.instructions import InstrClass

# Issue-queue indices shared with the BOOM model.
INT_QUEUE = 0
MEM_QUEUE = 1
FP_QUEUE = 2

_QUEUE_OF_CLASS = {
    InstrClass.ALU: INT_QUEUE,
    InstrClass.MUL: INT_QUEUE,
    InstrClass.DIV: INT_QUEUE,
    InstrClass.BRANCH: INT_QUEUE,
    InstrClass.JUMP: INT_QUEUE,
    InstrClass.JUMP_REG: INT_QUEUE,
    InstrClass.CSR: INT_QUEUE,
    InstrClass.SYSTEM: INT_QUEUE,
    InstrClass.FENCE: INT_QUEUE,
    InstrClass.LOAD: MEM_QUEUE,
    InstrClass.STORE: MEM_QUEUE,
    InstrClass.AMO: MEM_QUEUE,
    InstrClass.FP_LOAD: MEM_QUEUE,
    InstrClass.FP_STORE: MEM_QUEUE,
    InstrClass.FP: FP_QUEUE,
    InstrClass.FP_DIV: FP_QUEUE,
}

_SERIALIZING_CLASSES = (InstrClass.FENCE, InstrClass.CSR, InstrClass.SYSTEM)

#: Commit-class event name per functional class ("arith" for the rest),
#: mirroring ``cores/rocket/core.py``.
_CLASS_SIGNAL = {
    InstrClass.LOAD: "load", InstrClass.FP_LOAD: "load",
    InstrClass.STORE: "store", InstrClass.FP_STORE: "store",
    InstrClass.AMO: "atomic",
    InstrClass.BRANCH: "branch",
    InstrClass.FENCE: "fence",
    InstrClass.SYSTEM: "system", InstrClass.CSR: "system",
}


class RocketOpTable(NamedTuple):
    """Rocket timing descriptors, one entry per static op."""

    pc: List[int]
    dest: List[int]
    srcs: Tuple[Tuple[int, ...], ...]
    latency: List[int]
    signal: List[str]           # commit-class event name
    is_mem: List[bool]
    is_store: List[bool]
    is_branch: List[bool]
    is_fence: List[bool]
    is_fence_i: List[bool]
    is_div: List[bool]
    is_mul: List[bool]
    is_csr: List[bool]
    is_fp: List[bool]           # FP or FP_DIV
    is_jump: List[bool]
    is_jump_reg: List[bool]
    is_call: List[bool]         # jal with rd == ra
    is_return: List[bool]       # jalr with no dest reading ra
    is_cf: List[bool]           # branch/jump/jump_reg


class BoomOpTable(NamedTuple):
    """BOOM timing descriptors, one entry per static op."""

    pc: List[int]
    dest: List[int]
    srcs: Tuple[Tuple[int, ...], ...]
    latency: List[int]
    mem_width: List[int]
    queue: List[int]            # issue-queue index
    serializes: List[bool]      # fence/CSR/system: lone dispatch
    is_load: List[bool]
    is_store: List[bool]
    is_branch: List[bool]
    is_fence: List[bool]
    is_fence_i: List[bool]
    is_jump: List[bool]
    is_jump_reg: List[bool]
    is_call: List[bool]
    is_return: List[bool]


def build_rocket_table(static_ops: Tuple[StaticOp, ...]) -> RocketOpTable:
    """Compile the Rocket descriptor columns from a static-op tuple."""
    JUMP, JUMP_REG = InstrClass.JUMP, InstrClass.JUMP_REG
    return RocketOpTable(
        pc=[op.pc for op in static_ops],
        dest=[op.dest for op in static_ops],
        srcs=tuple(op.srcs for op in static_ops),
        latency=[op.latency for op in static_ops],
        signal=[_CLASS_SIGNAL.get(op.cls, "arith") for op in static_ops],
        is_mem=[op.is_load or op.is_store for op in static_ops],
        is_store=[op.is_store for op in static_ops],
        is_branch=[op.is_branch for op in static_ops],
        is_fence=[op.is_fence for op in static_ops],
        is_fence_i=[op.mnemonic == "fence.i" for op in static_ops],
        is_div=[op.cls is InstrClass.DIV for op in static_ops],
        is_mul=[op.cls is InstrClass.MUL for op in static_ops],
        is_csr=[op.cls is InstrClass.CSR for op in static_ops],
        is_fp=[op.cls in (InstrClass.FP, InstrClass.FP_DIV)
               for op in static_ops],
        is_jump=[op.cls is JUMP for op in static_ops],
        is_jump_reg=[op.cls is JUMP_REG for op in static_ops],
        is_call=[op.cls is JUMP and op.dest == 1 for op in static_ops],
        is_return=[op.cls is JUMP_REG and op.dest < 0 and op.srcs == (1,)
                   for op in static_ops],
        is_cf=[op.is_branch or op.cls is JUMP or op.cls is JUMP_REG
               for op in static_ops],
    )


def build_boom_table(static_ops: Tuple[StaticOp, ...]) -> BoomOpTable:
    """Compile the BOOM descriptor columns from a static-op tuple."""
    JUMP, JUMP_REG = InstrClass.JUMP, InstrClass.JUMP_REG
    return BoomOpTable(
        pc=[op.pc for op in static_ops],
        dest=[op.dest for op in static_ops],
        srcs=tuple(op.srcs for op in static_ops),
        latency=[op.latency for op in static_ops],
        mem_width=[op.mem_width for op in static_ops],
        queue=[_QUEUE_OF_CLASS[op.cls] for op in static_ops],
        serializes=[op.cls in _SERIALIZING_CLASSES for op in static_ops],
        is_load=[op.is_load for op in static_ops],
        is_store=[op.is_store for op in static_ops],
        is_branch=[op.is_branch for op in static_ops],
        is_fence=[op.is_fence for op in static_ops],
        is_fence_i=[op.mnemonic == "fence.i" for op in static_ops],
        is_jump=[op.cls is JUMP for op in static_ops],
        is_jump_reg=[op.cls is JUMP_REG for op in static_ops],
        is_call=[op.cls is JUMP and op.dest == 1 for op in static_ops],
        is_return=[op.cls is JUMP_REG and op.dest < 0 and op.srcs == (1,)
                   for op in static_ops],
    )
