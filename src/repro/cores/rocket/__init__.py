"""Rocket in-order core timing model."""

from .core import RocketCore

__all__ = ["RocketCore"]
