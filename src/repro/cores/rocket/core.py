"""Cycle-level timing model of the Rocket in-order core (Fig. 2a).

The model replays a committed-path dynamic trace through a 5-stage
in-order pipeline abstraction:

- a fetch engine with an L1 I-cache, ITLB, BHT+BTB predictor, and an
  instruction buffer speaking ready/valid to decode (signal taps ③ of
  the motivating example);
- a single-issue execute stage with a register scoreboard (load-use,
  long-latency, mul/div, and CSR interlocks), a blocking L1 D-cache and
  DTLB, and execute-stage branch resolution with frontend flush and
  redirect on mispredicts (①②④⑤ in Fig. 2a).

Every cycle the model emits the lane-bitmask signal dictionary described
in :mod:`repro.cores.base`; the Rocket rows of Table I plus the two raw
handshake taps ``ibuf_valid``/``ibuf_ready`` (which the paper adds to the
trace, not the PMU) are all produced here.

Two execution paths produce bit-identical results (docs/performance.md):

- the *traced* path materializes the per-cycle signal dictionary and
  feeds it to attached :class:`SignalObserver` instances — required by
  the PMU counter models and the cycle tracer;
- the *fast* path (used automatically when no observer or fault hook is
  attached, forceable via ``run(..., fast_path=...)``) skips the
  per-cycle record allocation entirely and accumulates event totals
  in place, which roughly halves single-run wall-clock time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ...isa.columnar import ColumnarTrace
from ...isa.dyn_trace import DynamicTrace, DynInst
from ...isa.instructions import InstrClass
from ...uarch.branch import Prediction, RocketBranchPredictor
from ...uarch.cache import Cache, MemorySystem
from ...uarch.tlb import L2_TLB_HIT_LATENCY, PTW_LATENCY, TlbHierarchy
from ..base import (CoreFaultHook, CoreResult, EventAccumulator,
                    RocketConfig, SignalObserver, check_cycle_budget,
                    check_run_completed, resolve_timing_engine)
from ..descriptors import build_rocket_table

_SAFETY_CYCLES_PER_INST = 400

#: Commit-class event name per functional class ("arith" for the rest).
_CLASS_SIGNAL = {
    InstrClass.LOAD: "load", InstrClass.FP_LOAD: "load",
    InstrClass.STORE: "store", InstrClass.FP_STORE: "store",
    InstrClass.AMO: "atomic",
    InstrClass.BRANCH: "branch",
    InstrClass.FENCE: "fence",
    InstrClass.SYSTEM: "system", InstrClass.CSR: "system",
}

#: Total mapping (no ``.get`` default needed in the hot loop).
_CLASS_SIGNAL_FULL = {cls: _CLASS_SIGNAL.get(cls, "arith")
                      for cls in InstrClass}

#: Every event name the fast path can assert, pre-seeded to zero so the
#: hot loop is a bare ``totals[name] += 1`` (zero entries are stripped
#: before the result is built, matching the traced accumulator).
_FAST_EVENT_NAMES = (
    "cycles", "csr_interlock", "dcache_blocked", "muldiv_interlock",
    "load_use_interlock", "long_latency_interlock", "instr_issued",
    "instr_retired", "load", "store", "atomic", "branch", "fence",
    "system", "arith", "dtlb_miss", "l2_tlb_miss", "dcache_miss",
    "branch_resolved", "cf_target_mispredict", "cobr_mispredict",
    "recovering", "fetch_bubbles", "icache_blocked", "itlb_miss",
    "icache_miss", "ibuf_valid", "ibuf_ready",
)


class _FetchedInst:
    """An instruction sitting in the instruction buffer."""

    __slots__ = ("inst", "prediction", "indirect_prediction")

    def __init__(self, inst: DynInst, prediction: Optional[Prediction],
                 indirect_prediction: Optional[int]) -> None:
        self.inst = inst
        self.prediction = prediction
        self.indirect_prediction = indirect_prediction


class RocketCore:
    """Trace-driven Rocket timing model."""

    def __init__(self, config: RocketConfig = RocketConfig(),
                 memory: Optional[MemorySystem] = None,
                 observers: Sequence[SignalObserver] = ()) -> None:
        self.config = config
        self.memory = memory or MemorySystem.build(l1d_config=config.l1d)
        self.l1i = self.memory.l1i
        self.l1d: Cache = self.memory.blocking_l1d()
        self.tlbs = TlbHierarchy()
        self.predictor = RocketBranchPredictor(
            bht_entries=config.bht_entries, btb_entries=config.btb_entries)
        self.observers: List[SignalObserver] = list(observers)
        self.fault_hook: Optional[CoreFaultHook] = None

    def add_observer(self, observer: SignalObserver) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------------

    def run(self, trace: DynamicTrace,
            max_cycles: Optional[int] = None,
            fast_path: Optional[bool] = None,
            engine: Optional[str] = None) -> CoreResult:
        """Replay *trace* and return per-event totals.

        *max_cycles* arms a watchdog (default off): exceeding the budget
        raises :class:`~repro.isa.errors.RunTimeout` instead of spinning
        until the internal safety stop silently truncates the run.

        *fast_path* selects the execution path: ``None`` (default) picks
        the fast accumulate-in-place loop exactly when no observer and
        no fault hook is attached, ``False`` forces the traced loop, and
        ``True`` forces the fast loop (an error when an observer or
        fault hook needs the per-cycle records it skips).  Both paths
        produce bit-identical :class:`CoreResult` values.

        *engine* selects the timing-engine implementation on the fast
        path (``None`` defers to ``REPRO_TIMING_ENGINE``, default
        ``columnar``): the columnar engine reads the trace columns
        through a compiled descriptor table, the ``objects`` engine
        walks materialized ``DynInst`` records.  Both engines are
        bit-identical (``tests/test_timing_engine.py``); a
        ``DynamicTrace`` input always uses the object engine.
        """
        traceless = not self.observers and self.fault_hook is None
        engine = resolve_timing_engine(engine)
        if fast_path is None:
            fast_path = traceless
        elif fast_path and not traceless:
            raise ValueError(
                "fast_path=True skips per-cycle signal records, but an "
                "observer or fault hook is attached and needs them")
        self.reset_run_state()
        if fast_path:
            if engine == "columnar" and isinstance(trace, ColumnarTrace):
                return self._run_columnar(trace, max_cycles)
            return self._run_fast(trace, max_cycles)
        return self._run_traced(trace, max_cycles)

    def reset_run_state(self) -> None:
        """Clear per-run scratch state (audited batch-path contract).

        Rocket's loops keep all transient pipeline state in run-local
        variables, so today this is a no-op — it exists so the per-run
        vs. warm-structure split is explicit and auditable in both
        cores (see :meth:`repro.cores.boom.BoomCore.reset_run_state`).
        The caches, TLBs, and predictor deliberately stay warm across
        runs on one instance; the batched grid engine therefore builds
        a fresh core per grid point so no state crosses configs.
        """

    # ------------------------------------------------------------------
    # traced path: per-cycle signal dictionaries, observers, fault hooks
    # ------------------------------------------------------------------

    def _run_traced(self, trace: DynamicTrace,
                    max_cycles: Optional[int]) -> CoreResult:
        config = self.config
        accumulator = EventAccumulator()
        observers = self.observers
        total = len(trace)
        instructions = trace.instructions

        ibuf: Deque[_FetchedInst] = deque()
        ibuf_capacity = config.ibuf_entries

        fetch_idx = 0
        retired = 0
        cycle = 0
        safety_limit = total * _SAFETY_CYCLES_PER_INST + 10_000
        budget = safety_limit + 1 if max_cycles is None else max_cycles
        fault_hook = self.fault_hook

        # Scoreboard: unified reg id -> (ready_cycle, producer_kind)
        reg_ready = [0] * 64
        reg_producer = [""] * 64

        fetch_resume_at = 0       # frontend may fetch from this cycle on
        icache_refill_until = 0   # an I$ refill is in flight until then
        recovering = False        # flush happened, no valid packet yet
        recovering_from = 0       # first cycle the window is visible
        dcache_busy_until = 0     # blocking D$ refill in flight
        div_busy_until = 0
        serialize_until = 0       # CSR/fence pipeline drain

        while retired < total and cycle < safety_limit:
            if cycle >= budget:
                check_cycle_budget(cycle, max_cycles,
                                   workload=trace.program_name,
                                   retired=retired, total=total)
            if fault_hook is not None and fault_hook.stall_cycle(cycle):
                # Injected stall: the whole core freezes this cycle.
                cycle += 1
                continue
            signals: Dict[str, int] = {"cycles": 1}

            # ---------------- execute / retire ------------------------
            issued_this_cycle = False
            if ibuf:
                entry = ibuf[0]
                inst = entry.inst
                stall = False

                if serialize_until > cycle:
                    stall = True
                    signals["csr_interlock"] = 1
                if not stall and inst.is_mem and dcache_busy_until > cycle:
                    stall = True
                    signals["dcache_blocked"] = 1
                if not stall and inst.cls == InstrClass.DIV \
                        and div_busy_until > cycle:
                    stall = True
                    signals["muldiv_interlock"] = 1
                if not stall:
                    for src in inst.srcs:
                        if reg_ready[src] > cycle:
                            stall = True
                            producer = reg_producer[src]
                            if producer == "load":
                                if reg_ready[src] - cycle > 4:
                                    signals["dcache_blocked"] = 1
                                    signals["long_latency_interlock"] = 1
                                else:
                                    signals["load_use_interlock"] = 1
                            elif producer in ("mul", "div"):
                                signals["muldiv_interlock"] = 1
                            else:
                                signals["long_latency_interlock"] = 1
                            break

                if not stall:
                    ibuf.popleft()
                    issued_this_cycle = True
                    retired += 1
                    signals["instr_issued"] = 1
                    signals["instr_retired"] = 1
                    signals[_CLASS_SIGNAL.get(inst.cls, "arith")] = 1
                    cycle_after, dcache_refill_until = self._execute(
                        inst, entry, cycle, signals, reg_ready, reg_producer)
                    if cycle_after is not None:
                        # Control-flow mispredict: flush + redirect.  The
                        # Recovering window opens on the next cycle (the
                        # flush cycle itself still retired the branch).
                        ibuf.clear()
                        fetch_idx = inst.index + 1
                        fetch_resume_at = cycle_after
                        recovering = True
                        recovering_from = cycle + 1
                    if inst.cls == InstrClass.DIV:
                        div_busy_until = cycle + inst.latency
                    elif inst.cls == InstrClass.CSR:
                        serialize_until = cycle + 2
                    elif inst.is_fence:
                        # Fence drains the pipeline and refetches.
                        serialize_until = cycle + 3
                        if inst.mnemonic == "fence.i":
                            self.l1i.flush()
                    elif inst.is_mem:
                        dcache_busy_until = max(dcache_busy_until,
                                                dcache_refill_until)
            else:
                backend_ready = (serialize_until <= cycle
                                 and dcache_busy_until <= cycle)
                if recovering and cycle >= recovering_from:
                    signals["recovering"] = 1
                elif backend_ready and not recovering:
                    signals["fetch_bubbles"] = 1
                elif dcache_busy_until > cycle:
                    signals["dcache_blocked"] = 1

            # ---------------- fetch -----------------------------------
            if icache_refill_until > cycle and not ibuf:
                signals["icache_blocked"] = 1

            fetched_any = False
            if (fetch_idx < total and cycle >= fetch_resume_at
                    and len(ibuf) < ibuf_capacity):
                fetched_any, fetch_resume_at, icache_refill_until = \
                    self._fetch(instructions, fetch_idx, cycle, ibuf,
                                ibuf_capacity, signals,
                                icache_refill_until)
                if fetched_any:
                    fetch_idx = ibuf[-1].inst.index + 1
            if recovering:
                if fetched_any:
                    recovering = False
                elif cycle >= recovering_from:
                    signals["recovering"] = 1

            # Raw handshake taps for the motivating example (Fig. 3).
            if ibuf:
                signals["ibuf_valid"] = 1
            if not issued_this_cycle and serialize_until <= cycle \
                    and dcache_busy_until <= cycle:
                signals["ibuf_ready"] = 1

            accumulator.add(signals)
            for observer in observers:
                observer.on_cycle(cycle, signals)
            cycle += 1

        check_run_completed(retired, total, cycle, max_cycles,
                            workload=trace.program_name)
        return CoreResult(
            workload=trace.program_name, config_name=self.config.name,
            core="rocket", cycles=cycle, instret=retired,
            events=accumulator.totals, lane_events=accumulator.lane_totals,
            commit_width=1, issue_width=1,
            l1i_stats=self.l1i.stats, l1d_stats=self.l1d.stats,
            l2_stats=self.memory.l2.stats,
            predictor_stats=self.predictor.stats)

    # ------------------------------------------------------------------
    # fast path: no per-cycle records, totals accumulated in place
    # ------------------------------------------------------------------

    def _run_fast(self, trace: DynamicTrace,
                  max_cycles: Optional[int]) -> CoreResult:
        """The traced loop with the per-cycle signal dictionary, the
        accumulator call, and the helper-method dispatch flattened away.

        The model itself is identical — ``tests/test_core_fastpath.py``
        pins both paths to bit-identical results over the whole suite.
        Signals that two pipeline stages may assert in the same cycle
        (``l2_tlb_miss``, ``recovering``) are deduplicated with per-cycle
        flags, exactly as the shared per-cycle dictionary did.
        """
        config = self.config
        total = len(trace)
        instructions = trace.instructions

        ibuf: Deque[_FetchedInst] = deque()
        ibuf_popleft = ibuf.popleft
        ibuf_append = ibuf.append
        ibuf_clear = ibuf.clear
        ibuf_capacity = config.ibuf_entries

        totals: Dict[str, int] = dict.fromkeys(_FAST_EVENT_NAMES, 0)

        fetch_idx = 0
        retired = 0
        cycle = 0
        safety_limit = total * _SAFETY_CYCLES_PER_INST + 10_000
        budget = safety_limit + 1 if max_cycles is None else max_cycles

        reg_ready = [0] * 64
        reg_producer = [""] * 64

        fetch_resume_at = 0
        icache_refill_until = 0
        recovering = False
        recovering_from = 0
        dcache_busy_until = 0
        div_busy_until = 0
        serialize_until = 0

        # Hot-loop local bindings (attribute lookups hoisted).
        l1i = self.l1i
        l1i_access = l1i.access
        # Block compare via the config-derived shift instead of two
        # ``block_address`` calls per fetched instruction.
        block_shift = l1i.config.block_bytes.bit_length() - 1
        l1d_access = self.l1d.access
        tlbs = self.tlbs
        # The TlbHierarchy._access chain is flattened: L1 TLB probe,
        # then L2 probe on a miss (hit: short refill, miss: full walk).
        itlb_probe = tlbs.itlb.access
        dtlb_probe = tlbs.dtlb.access
        l2tlb_probe = tlbs.l2.access
        predictor = self.predictor
        predict_branch = predictor.predict_branch
        resolve_branch = predictor.resolve_branch
        predict_indirect = predictor.predict_indirect
        resolve_indirect = predictor.resolve_indirect
        ras_push = predictor.ras.push
        fetch_width = config.fetch_width
        redirect_latency = config.redirect_latency
        class_signal = _CLASS_SIGNAL_FULL
        DIV = InstrClass.DIV
        MUL = InstrClass.MUL
        CSR = InstrClass.CSR
        FP = InstrClass.FP
        FP_DIV = InstrClass.FP_DIV
        JUMP = InstrClass.JUMP
        JUMP_REG = InstrClass.JUMP_REG

        while retired < total and cycle < safety_limit:
            if cycle >= budget:
                check_cycle_budget(cycle, max_cycles,
                                   workload=trace.program_name,
                                   retired=retired, total=total)
            issued_this_cycle = False
            l2_tlb_counted = False
            recovering_counted = False

            # ---------------- execute / retire ------------------------
            if ibuf:
                entry = ibuf[0]
                inst = entry.inst
                cls = inst.cls
                stall = False

                if serialize_until > cycle:
                    stall = True
                    totals["csr_interlock"] += 1
                if not stall and inst.is_mem and dcache_busy_until > cycle:
                    stall = True
                    totals["dcache_blocked"] += 1
                if not stall and cls is DIV and div_busy_until > cycle:
                    stall = True
                    totals["muldiv_interlock"] += 1
                if not stall:
                    for src in inst.srcs:
                        if reg_ready[src] > cycle:
                            stall = True
                            producer = reg_producer[src]
                            if producer == "load":
                                if reg_ready[src] - cycle > 4:
                                    totals["dcache_blocked"] += 1
                                    totals["long_latency_interlock"] += 1
                                else:
                                    totals["load_use_interlock"] += 1
                            elif producer in ("mul", "div"):
                                totals["muldiv_interlock"] += 1
                            else:
                                totals["long_latency_interlock"] += 1
                            break

                if not stall:
                    ibuf_popleft()
                    issued_this_cycle = True
                    retired += 1
                    totals[class_signal[cls]] += 1

                    # ---- inlined _execute ----------------------------
                    dcache_refill_until = 0
                    redirect = None
                    dest = inst.dest
                    if inst.is_mem:
                        if dtlb_probe(inst.mem_addr):
                            tlb_extra = 0
                        else:
                            totals["dtlb_miss"] += 1
                            if l2tlb_probe(inst.mem_addr):
                                tlb_extra = L2_TLB_HIT_LATENCY
                            else:
                                tlb_extra = PTW_LATENCY
                                totals["l2_tlb_miss"] += 1
                                l2_tlb_counted = True
                        hit, latency = l1d_access(inst.mem_addr,
                                                  inst.is_store, cycle)
                        latency += tlb_extra
                        if not hit:
                            totals["dcache_miss"] += 1
                            dcache_refill_until = cycle + latency
                        if dest >= 0:
                            reg_ready[dest] = cycle + latency
                            reg_producer[dest] = "load"
                    elif cls is MUL:
                        if dest >= 0:
                            reg_ready[dest] = cycle + inst.latency
                            reg_producer[dest] = "mul"
                    elif cls is DIV:
                        if dest >= 0:
                            reg_ready[dest] = cycle + inst.latency
                            reg_producer[dest] = "div"
                    elif cls is FP or cls is FP_DIV:
                        if dest >= 0:
                            reg_ready[dest] = cycle + inst.latency
                            reg_producer[dest] = "fp"
                    elif inst.is_branch:
                        totals["branch_resolved"] += 1
                        prediction = entry.prediction
                        if resolve_branch(inst.pc, inst.taken,
                                          inst.next_pc, prediction):
                            if prediction is not None \
                                    and prediction.taken == inst.taken:
                                totals["cf_target_mispredict"] += 1
                            else:
                                totals["cobr_mispredict"] += 1
                            redirect = cycle + redirect_latency
                    elif cls is JUMP_REG:
                        if resolve_indirect(inst.pc, inst.next_pc,
                                            entry.indirect_prediction):
                            totals["cf_target_mispredict"] += 1
                            redirect = cycle + redirect_latency
                    elif dest >= 0:
                        reg_ready[dest] = cycle + inst.latency
                        reg_producer[dest] = "alu"
                    # ---- end inlined _execute ------------------------

                    if redirect is not None:
                        ibuf_clear()
                        fetch_idx = inst.index + 1
                        fetch_resume_at = redirect
                        recovering = True
                        recovering_from = cycle + 1
                    if cls is DIV:
                        div_busy_until = cycle + inst.latency
                    elif cls is CSR:
                        serialize_until = cycle + 2
                    elif inst.is_fence:
                        serialize_until = cycle + 3
                        if inst.mnemonic == "fence.i":
                            l1i.flush()
                    elif inst.is_mem:
                        dcache_busy_until = max(dcache_busy_until,
                                                dcache_refill_until)
            else:
                backend_ready = (serialize_until <= cycle
                                 and dcache_busy_until <= cycle)
                if recovering and cycle >= recovering_from:
                    totals["recovering"] += 1
                    recovering_counted = True
                elif backend_ready and not recovering:
                    totals["fetch_bubbles"] += 1
                elif dcache_busy_until > cycle:
                    totals["dcache_blocked"] += 1

            # ---------------- fetch -----------------------------------
            if icache_refill_until > cycle and not ibuf:
                totals["icache_blocked"] += 1

            fetched_any = False
            if (fetch_idx < total and cycle >= fetch_resume_at
                    and len(ibuf) < ibuf_capacity):
                # ---- inlined _fetch ----------------------------------
                pc = instructions[fetch_idx].pc
                if itlb_probe(pc):
                    tlb_extra = 0
                else:
                    totals["itlb_miss"] += 1
                    if l2tlb_probe(pc):
                        tlb_extra = L2_TLB_HIT_LATENCY
                    else:
                        tlb_extra = PTW_LATENCY
                        if not l2_tlb_counted:
                            totals["l2_tlb_miss"] += 1
                hit, latency = l1i_access(pc, False, cycle)
                latency += tlb_extra
                if not hit or tlb_extra:
                    if not hit:
                        totals["icache_miss"] += 1
                    # Frontend blocks until the refill/walk completes.
                    fetch_resume_at = cycle + latency
                    icache_refill_until = cycle + latency
                else:
                    block = pc >> block_shift
                    fetched = 0
                    idx = fetch_idx
                    prev_pc = None
                    resume_at = cycle + 1
                    while (idx < total and fetched < fetch_width
                           and len(ibuf) < ibuf_capacity):
                        inst = instructions[idx]
                        pc = inst.pc
                        if prev_pc is not None and pc != prev_pc + 4:
                            break
                        if pc >> block_shift != block:
                            break
                        prediction = None
                        indirect = None
                        if inst.is_branch:
                            prediction = predict_branch(pc)
                        elif inst.cls is JUMP:
                            if inst.dest == 1:
                                ras_push(pc + 4)
                        elif inst.cls is JUMP_REG:
                            is_return = (inst.dest < 0
                                         and inst.srcs == (1,))
                            indirect = predict_indirect(
                                pc, is_return=is_return)
                        ibuf_append(_FetchedInst(inst, prediction, indirect))
                        fetched += 1
                        prev_pc = pc
                        idx += 1
                        if inst.is_control_flow and inst.taken:
                            # Taken redirect from the fetch-data stage.
                            resume_at = cycle + 2
                            break
                    fetch_resume_at = resume_at
                    if fetched:
                        fetched_any = True
                        fetch_idx = idx
                # ---- end inlined _fetch ------------------------------
            if recovering:
                if fetched_any:
                    recovering = False
                elif cycle >= recovering_from and not recovering_counted:
                    totals["recovering"] += 1

            # Raw handshake taps for the motivating example (Fig. 3).
            if ibuf:
                totals["ibuf_valid"] += 1
            if not issued_this_cycle and serialize_until <= cycle \
                    and dcache_busy_until <= cycle:
                totals["ibuf_ready"] += 1

            cycle += 1

        check_run_completed(retired, total, cycle, max_cycles,
                            workload=trace.program_name)
        totals["cycles"] = cycle
        # Single-issue Rocket asserts instr_issued/instr_retired together
        # on exactly the retire cycles, so both equal the retire count —
        # batched here instead of two dict increments per issue cycle.
        totals["instr_issued"] = retired
        totals["instr_retired"] = retired
        events = {name: count for name, count in totals.items() if count}
        return CoreResult(
            workload=trace.program_name, config_name=self.config.name,
            core="rocket", cycles=cycle, instret=retired,
            events=events, lane_events={},
            commit_width=1, issue_width=1,
            l1i_stats=self.l1i.stats, l1d_stats=self.l1d.stats,
            l2_stats=self.memory.l2.stats,
            predictor_stats=self.predictor.stats)

    # ------------------------------------------------------------------
    # columnar engine: descriptor table + trace columns, no DynInst
    # ------------------------------------------------------------------

    def _run_columnar(self, trace: ColumnarTrace,
                      max_cycles: Optional[int]) -> CoreResult:
        """The fast loop re-expressed over trace columns.

        Identical pipeline model to :meth:`_run_fast`, but every static
        fact comes from the :class:`~repro.cores.descriptors
        .RocketOpTable` compiled once per trace, and every dynamic fact
        from the flat trace columns — no ``DynInst`` list is ever
        materialized.  Instruction-buffer entries are plain
        ``(dyn_index, static_index, prediction, indirect)`` tuples.
        Bit-identity with the object engine is pinned by
        ``tests/test_timing_engine.py``.
        """
        config = self.config
        total = len(trace)

        table: "RocketOpTable" = trace.timing_table(  # noqa: F821
            "rocket", build_rocket_table)
        d_pc = table.pc
        d_dest = table.dest
        d_srcs = table.srcs
        d_lat = table.latency
        d_signal = table.signal
        d_is_mem = table.is_mem
        d_is_store = table.is_store
        d_is_branch = table.is_branch
        d_is_fence = table.is_fence
        d_is_fence_i = table.is_fence_i
        d_is_div = table.is_div
        d_is_mul = table.is_mul
        d_is_csr = table.is_csr
        d_is_fp = table.is_fp
        d_is_jump = table.is_jump
        d_is_jump_reg = table.is_jump_reg
        d_is_call = table.is_call
        d_is_return = table.is_return
        d_is_cf = table.is_cf
        sidx = trace.sidx
        col_mem = trace.mem_addr
        col_next = trace.next_pc
        col_taken = trace.taken

        ibuf: Deque[tuple] = deque()
        ibuf_popleft = ibuf.popleft
        ibuf_append = ibuf.append
        ibuf_clear = ibuf.clear
        ibuf_capacity = config.ibuf_entries

        totals: Dict[str, int] = dict.fromkeys(_FAST_EVENT_NAMES, 0)

        fetch_idx = 0
        retired = 0
        cycle = 0
        safety_limit = total * _SAFETY_CYCLES_PER_INST + 10_000
        budget = safety_limit + 1 if max_cycles is None else max_cycles

        reg_ready = [0] * 64
        reg_producer = [""] * 64

        fetch_resume_at = 0
        icache_refill_until = 0
        recovering = False
        recovering_from = 0
        dcache_busy_until = 0
        div_busy_until = 0
        serialize_until = 0

        l1i = self.l1i
        l1i_access = l1i.access
        block_shift = l1i.config.block_bytes.bit_length() - 1
        l1d_access = self.l1d.access
        tlbs = self.tlbs
        itlb_probe = tlbs.itlb.access
        dtlb_probe = tlbs.dtlb.access
        l2tlb_probe = tlbs.l2.access
        predictor = self.predictor
        predict_branch = predictor.predict_branch
        resolve_branch = predictor.resolve_branch
        predict_indirect = predictor.predict_indirect
        resolve_indirect = predictor.resolve_indirect
        ras_push = predictor.ras.push
        fetch_width = config.fetch_width
        redirect_latency = config.redirect_latency

        while retired < total and cycle < safety_limit:
            if cycle >= budget:
                check_cycle_budget(cycle, max_cycles,
                                   workload=trace.program_name,
                                   retired=retired, total=total)
            issued_this_cycle = False
            l2_tlb_counted = False
            recovering_counted = False

            # ---------------- execute / retire ------------------------
            if ibuf:
                entry = ibuf[0]
                dyn = entry[0]
                s = entry[1]
                stall = False

                if serialize_until > cycle:
                    stall = True
                    totals["csr_interlock"] += 1
                if not stall and d_is_mem[s] and dcache_busy_until > cycle:
                    stall = True
                    totals["dcache_blocked"] += 1
                if not stall and d_is_div[s] and div_busy_until > cycle:
                    stall = True
                    totals["muldiv_interlock"] += 1
                if not stall:
                    for src in d_srcs[s]:
                        if reg_ready[src] > cycle:
                            stall = True
                            producer = reg_producer[src]
                            if producer == "load":
                                if reg_ready[src] - cycle > 4:
                                    totals["dcache_blocked"] += 1
                                    totals["long_latency_interlock"] += 1
                                else:
                                    totals["load_use_interlock"] += 1
                            elif producer in ("mul", "div"):
                                totals["muldiv_interlock"] += 1
                            else:
                                totals["long_latency_interlock"] += 1
                            break

                if not stall:
                    ibuf_popleft()
                    issued_this_cycle = True
                    retired += 1
                    totals[d_signal[s]] += 1

                    dcache_refill_until = 0
                    redirect = None
                    dest = d_dest[s]
                    if d_is_mem[s]:
                        mem_addr = col_mem[dyn]
                        if dtlb_probe(mem_addr):
                            tlb_extra = 0
                        else:
                            totals["dtlb_miss"] += 1
                            if l2tlb_probe(mem_addr):
                                tlb_extra = L2_TLB_HIT_LATENCY
                            else:
                                tlb_extra = PTW_LATENCY
                                totals["l2_tlb_miss"] += 1
                                l2_tlb_counted = True
                        hit, latency = l1d_access(mem_addr,
                                                  d_is_store[s], cycle)
                        latency += tlb_extra
                        if not hit:
                            totals["dcache_miss"] += 1
                            dcache_refill_until = cycle + latency
                        if dest >= 0:
                            reg_ready[dest] = cycle + latency
                            reg_producer[dest] = "load"
                    elif d_is_mul[s]:
                        if dest >= 0:
                            reg_ready[dest] = cycle + d_lat[s]
                            reg_producer[dest] = "mul"
                    elif d_is_div[s]:
                        if dest >= 0:
                            reg_ready[dest] = cycle + d_lat[s]
                            reg_producer[dest] = "div"
                    elif d_is_fp[s]:
                        if dest >= 0:
                            reg_ready[dest] = cycle + d_lat[s]
                            reg_producer[dest] = "fp"
                    elif d_is_branch[s]:
                        totals["branch_resolved"] += 1
                        prediction = entry[2]
                        taken = col_taken[dyn]
                        if resolve_branch(d_pc[s], taken,
                                          col_next[dyn], prediction):
                            if prediction is not None \
                                    and prediction.taken == taken:
                                totals["cf_target_mispredict"] += 1
                            else:
                                totals["cobr_mispredict"] += 1
                            redirect = cycle + redirect_latency
                    elif d_is_jump_reg[s]:
                        if resolve_indirect(d_pc[s], col_next[dyn],
                                            entry[3]):
                            totals["cf_target_mispredict"] += 1
                            redirect = cycle + redirect_latency
                    elif dest >= 0:
                        reg_ready[dest] = cycle + d_lat[s]
                        reg_producer[dest] = "alu"

                    if redirect is not None:
                        ibuf_clear()
                        fetch_idx = dyn + 1
                        fetch_resume_at = redirect
                        recovering = True
                        recovering_from = cycle + 1
                    if d_is_div[s]:
                        div_busy_until = cycle + d_lat[s]
                    elif d_is_csr[s]:
                        serialize_until = cycle + 2
                    elif d_is_fence[s]:
                        serialize_until = cycle + 3
                        if d_is_fence_i[s]:
                            l1i.flush()
                    elif d_is_mem[s]:
                        dcache_busy_until = max(dcache_busy_until,
                                                dcache_refill_until)
            else:
                backend_ready = (serialize_until <= cycle
                                 and dcache_busy_until <= cycle)
                if recovering and cycle >= recovering_from:
                    totals["recovering"] += 1
                    recovering_counted = True
                elif backend_ready and not recovering:
                    totals["fetch_bubbles"] += 1
                elif dcache_busy_until > cycle:
                    totals["dcache_blocked"] += 1

            # ---------------- fetch -----------------------------------
            if icache_refill_until > cycle and not ibuf:
                totals["icache_blocked"] += 1

            fetched_any = False
            if (fetch_idx < total and cycle >= fetch_resume_at
                    and len(ibuf) < ibuf_capacity):
                pc = d_pc[sidx[fetch_idx]]
                if itlb_probe(pc):
                    tlb_extra = 0
                else:
                    totals["itlb_miss"] += 1
                    if l2tlb_probe(pc):
                        tlb_extra = L2_TLB_HIT_LATENCY
                    else:
                        tlb_extra = PTW_LATENCY
                        if not l2_tlb_counted:
                            totals["l2_tlb_miss"] += 1
                hit, latency = l1i_access(pc, False, cycle)
                latency += tlb_extra
                if not hit or tlb_extra:
                    if not hit:
                        totals["icache_miss"] += 1
                    fetch_resume_at = cycle + latency
                    icache_refill_until = cycle + latency
                else:
                    block = pc >> block_shift
                    fetched = 0
                    idx = fetch_idx
                    prev_pc = None
                    resume_at = cycle + 1
                    while (idx < total and fetched < fetch_width
                           and len(ibuf) < ibuf_capacity):
                        s = sidx[idx]
                        pc = d_pc[s]
                        if prev_pc is not None and pc != prev_pc + 4:
                            break
                        if pc >> block_shift != block:
                            break
                        prediction = None
                        indirect = None
                        if d_is_branch[s]:
                            prediction = predict_branch(pc)
                        elif d_is_jump[s]:
                            if d_is_call[s]:
                                ras_push(pc + 4)
                        elif d_is_jump_reg[s]:
                            indirect = predict_indirect(
                                pc, is_return=d_is_return[s])
                        ibuf_append((idx, s, prediction, indirect))
                        fetched += 1
                        prev_pc = pc
                        if d_is_cf[s] and col_taken[idx]:
                            idx += 1
                            resume_at = cycle + 2
                            break
                        idx += 1
                    fetch_resume_at = resume_at
                    if fetched:
                        fetched_any = True
                        fetch_idx = idx
            if recovering:
                if fetched_any:
                    recovering = False
                elif cycle >= recovering_from and not recovering_counted:
                    totals["recovering"] += 1

            # Raw handshake taps for the motivating example (Fig. 3).
            if ibuf:
                totals["ibuf_valid"] += 1
            if not issued_this_cycle and serialize_until <= cycle \
                    and dcache_busy_until <= cycle:
                totals["ibuf_ready"] += 1

            cycle += 1

        check_run_completed(retired, total, cycle, max_cycles,
                            workload=trace.program_name)
        totals["cycles"] = cycle
        totals["instr_issued"] = retired
        totals["instr_retired"] = retired
        events = {name: count for name, count in totals.items() if count}
        return CoreResult(
            workload=trace.program_name, config_name=self.config.name,
            core="rocket", cycles=cycle, instret=retired,
            events=events, lane_events={},
            commit_width=1, issue_width=1,
            l1i_stats=self.l1i.stats, l1d_stats=self.l1d.stats,
            l2_stats=self.memory.l2.stats,
            predictor_stats=self.predictor.stats)

    # ------------------------------------------------------------------

    def _execute(self, inst: DynInst, entry: _FetchedInst, cycle: int,
                 signals: Dict[str, int], reg_ready: List[int],
                 reg_producer: List[str]
                 ) -> Tuple[Optional[int], int]:
        """Execute one instruction.

        Returns ``(redirect_cycle, dcache_refill_until)``: the former is
        set on a control-flow mispredict, the latter is non-zero while a
        blocking D$ refill started by this instruction is in flight.
        """
        dcache_refill_until = 0
        redirect: Optional[int] = None

        if inst.is_mem:
            hit_tlb, tlb_extra = self.tlbs.access_data(inst.mem_addr)
            if not hit_tlb:
                signals["dtlb_miss"] = 1
                if tlb_extra > 10:
                    signals["l2_tlb_miss"] = 1
            hit, latency = self.l1d.access(inst.mem_addr,
                                           is_store=inst.is_store,
                                           cycle=cycle)
            latency += tlb_extra
            if not hit:
                signals["dcache_miss"] = 1
                dcache_refill_until = cycle + latency
            if inst.dest >= 0:
                reg_ready[inst.dest] = cycle + latency
                reg_producer[inst.dest] = "load"
        elif inst.cls == InstrClass.MUL:
            if inst.dest >= 0:
                reg_ready[inst.dest] = cycle + inst.latency
                reg_producer[inst.dest] = "mul"
        elif inst.cls == InstrClass.DIV:
            if inst.dest >= 0:
                reg_ready[inst.dest] = cycle + inst.latency
                reg_producer[inst.dest] = "div"
        elif inst.cls in (InstrClass.FP, InstrClass.FP_DIV):
            if inst.dest >= 0:
                reg_ready[inst.dest] = cycle + inst.latency
                reg_producer[inst.dest] = "fp"
        elif inst.is_branch:
            signals["branch_resolved"] = 1
            prediction = entry.prediction
            mispredicted = self.predictor.resolve_branch(
                inst.pc, inst.taken, inst.next_pc, prediction)
            if mispredicted:
                if prediction is not None and prediction.taken == inst.taken:
                    signals["cf_target_mispredict"] = 1
                else:
                    signals["cobr_mispredict"] = 1
                redirect = cycle + self.config.redirect_latency
        elif inst.cls == InstrClass.JUMP_REG:
            mispredicted = self.predictor.resolve_indirect(
                inst.pc, inst.next_pc, entry.indirect_prediction)
            if mispredicted:
                signals["cf_target_mispredict"] = 1
                redirect = cycle + self.config.redirect_latency
        elif inst.dest >= 0:
            reg_ready[inst.dest] = cycle + inst.latency
            reg_producer[inst.dest] = "alu"
        return redirect, dcache_refill_until

    # ------------------------------------------------------------------

    def _fetch(self, instructions: List[DynInst], fetch_idx: int, cycle: int,
               ibuf: Deque[_FetchedInst], capacity: int,
               signals: Dict[str, int],
               icache_refill_until: int) -> Tuple[bool, int, int]:
        """Fetch one packet (up to fetch_width sequential instructions).

        A predicted-taken control-flow instruction ends the packet *and*
        costs one dead fetch cycle: Rocket's BTB redirects from the
        fetch-data stage, killing the in-flight sequential fetch.  This
        is the source of the warm-I$ fetch bubbles the motivating
        example highlights (§III, Fig. 3b).
        """
        first = instructions[fetch_idx]
        pc = first.pc

        tlb_hit, tlb_extra = self.tlbs.access_instruction(pc)
        if not tlb_hit:
            signals["itlb_miss"] = 1
            if tlb_extra > 10:
                signals["l2_tlb_miss"] = 1
        hit, latency = self.l1i.access(pc, cycle=cycle)
        latency += tlb_extra
        if not hit or tlb_extra:
            if not hit:
                signals["icache_miss"] = 1
            # Frontend blocks until the refill/walk completes.
            return False, cycle + latency, cycle + latency

        total = len(instructions)
        block = self.l1i.block_address(pc)
        fetched = 0
        idx = fetch_idx
        prev_pc = None
        resume_at = cycle + 1
        while (idx < total and fetched < self.config.fetch_width
               and len(ibuf) < capacity):
            inst = instructions[idx]
            if prev_pc is not None and inst.pc != prev_pc + 4:
                break  # discontinuity: redirected packet starts next cycle
            if self.l1i.block_address(inst.pc) != block:
                break  # next cache block, next cycle
            prediction: Optional[Prediction] = None
            indirect: Optional[int] = None
            if inst.is_branch:
                prediction = self.predictor.predict_branch(inst.pc)
            elif inst.cls == InstrClass.JUMP:
                if inst.dest == 1:  # call: remember the return address
                    self.predictor.ras.push(inst.pc + 4)
            elif inst.cls == InstrClass.JUMP_REG:
                is_return = (inst.dest < 0 and inst.srcs == (1,))
                indirect = self.predictor.predict_indirect(
                    inst.pc, is_return=is_return)
            ibuf.append(_FetchedInst(inst, prediction, indirect))
            fetched += 1
            prev_pc = inst.pc
            idx += 1
            if inst.is_control_flow and inst.taken:
                # Taken redirect from the fetch-data stage: the packet
                # ends and the next fetch loses one cycle.
                resume_at = cycle + 2
                break
        return fetched > 0, resume_at, icache_refill_until
