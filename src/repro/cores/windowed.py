"""Time-sliced intra-trace parallelism + sampled simulation.

Every earlier wall-clock lever parallelizes *across* (workload, config)
pairs; one long trace is still one serial timing run.  This module
shards a single :class:`~repro.isa.columnar.ColumnarTrace` into K
instruction windows, simulates the windows in parallel (on either
timing engine), and stitches the per-window
:class:`~repro.cores.base.CoreResult` totals back into a whole-run
result.

Warmup: run-and-subtract
------------------------

A window ``[start, stop)`` cannot start from the true microarchitectural
state at ``start`` without simulating everything before it.  Instead,
each window is measured as the *difference of two runs* over shared
immutable columns:

- the **full** run simulates ``trace[start-W : stop)`` (W warmup
  instructions prepended), and
- the **warm** run simulates only the warmup prefix ``trace[start-W :
  start)``;

``measured = full - warm``.  The simulation is trace-driven and
deterministic, so both runs are cycle-identical until the warm run
exhausts its fetch stream: every per-committed-instruction event (the
:data:`EXACT_EVENTS` class — retire counts, instruction-class counts)
subtracts *exactly*, leaving precisely the window's own instructions.
Per-cycle occupancy events (cycles, fetch bubbles, interlocks, buffer
occupancy) differ only in the warm run's drain tail and in residual
state divergence at window boundaries — those are tolerance-gated per
window (:func:`assert_stitch_equivalent`), and rare negative deltas
clamp to zero.  ``windows=1, warmup=0`` degenerates to the plain run
and stitches bit-identically.

Modes
-----

**exact** simulates every instruction (contiguous spans covering the
whole trace); stitched totals are gated against the ``run_core`` oracle
by ``tests/test_windowed.py`` and the bench ``timing.windowed`` section.
**sampled** simulates periodic sample spans only (SimPoint-style) and
extrapolates totals by the coverage factor, attaching per-TMA-slot
error bars from the cross-window variance; sampled results always carry
``sampled=True`` so they can never masquerade as exact.
"""

from __future__ import annotations

import math
import os
import sys
import time
from concurrent.futures import as_completed
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..isa.columnar import ColumnarTrace, unpack_window
from .base import BoomConfig, CoreResult, RocketConfig, resolve_timing_engine
from .batch import GridPoint, make_core

CoreConfig = Union[RocketConfig, BoomConfig]

#: Environment defaults picked up by ``run_core`` when no explicit
#: window arguments are given (lets CI force a windowed tier-1 pass).
ENV_WINDOWS = "REPRO_WINDOWS"
ENV_WARMUP = "REPRO_WINDOW_WARMUP"

#: Default warmup length (instructions) prepended to every window that
#: does not start at the beginning of the trace.  See docs/windowed.md
#: for the calibration behind this value.
DEFAULT_WARMUP = 2048

#: Sampled mode: minimum sample-span length, and the fraction of each
#: period that is sampled (1/10th, floored at the minimum).
MIN_SAMPLE_LEN = 256
SAMPLE_FRACTION = 10

#: Events counted once per committed instruction (or per architectural
#: instance in the trace): identical in the warm prefix of the full and
#: warm runs, so run-and-subtract recovers the window's own counts
#: *exactly* and stitched totals must equal the oracle bit-for-bit.
#: Everything else (cycles and per-cycle occupancy/stall counts, and
#: any state-dependent counts such as cache misses or mispredicts) is
#: tolerance-gated: boundary drain tails and residual cold-state
#: divergence perturb them by a bounded per-window amount.
EXACT_EVENTS = frozenset({
    "fence_retired",
    "load", "store", "atomic", "branch", "fence", "system", "arith",
    "branch_resolved",
})

#: Retire counters are exact *up to end-of-stream phantom commits*: a
#: BOOM trace that ends while a mispredict recovery is in flight can
#: commit up to a commit-group of wrong-path phantom uops before the
#: flush lands, so the serial oracle itself over-retires by one or two
#: uops on some workloads.  Stitched results pin every window to its
#: architectural length (the architecturally correct count), which
#: leaves a bounded residual |delta| <= RETIRE_EDGE_SLACK against the
#: oracle's raw counters (observed worst case -2 across the registry;
#: see docs/windowed.md).  ``instret`` is gated with the same slack.
RETIRE_EVENTS = frozenset({"instr_retired", "uops_retired"})
RETIRE_EDGE_SLACK = 4

#: Tolerance-gate constants for the remaining event classes (cycles,
#: per-cycle occupancy/stall counts, state-dependent counts such as
#: cache misses or mispredicts), calibrated over the full registry x
#: {Rocket, BOOM-s/m/l} at ``windows=4, warmup=8192`` (see
#: docs/windowed.md): the allowed absolute deviation of a stitched
#: total is ``max(REL_TOL * oracle, ABS_PER_WINDOW * K)``.  The
#: constants assume warmup large enough to cover the cold-cache
#: footprint (>= GATE_WARMUP); shorter warmups trade accuracy for
#: speed and are not covered by this gate.
REL_TOL = 0.12
ABS_PER_WINDOW = 1024

#: The warmup the calibration (and the equivalence gate tests) use:
#: large enough that per-window cold-start divergence on the
#: cache-capacity-bound registry workloads drops inside the tolerance
#: class above.
GATE_WARMUP = 8192


@dataclass(frozen=True)
class WindowPlan:
    """The window decomposition of one trace."""

    n: int
    windows: int
    warmup: int
    sampled: bool
    #: Measured spans ``(start, stop)``; exact plans tile ``[0, n)``.
    spans: Tuple[Tuple[int, int], ...]

    @property
    def measured_instructions(self) -> int:
        return sum(stop - start for start, stop in self.spans)

    @property
    def coverage(self) -> float:
        return self.measured_instructions / self.n if self.n else 0.0


def resolve_windows_env() -> Tuple[Optional[int], Optional[int]]:
    """(windows, warmup) defaults from the environment, or ``None``s."""

    def read(name: str) -> Optional[int]:
        raw = os.environ.get(name)
        if raw is None or not raw.strip():
            return None
        try:
            value = int(raw)
        except ValueError as exc:
            raise ValueError(f"{name} must be an integer, got {raw!r}") from exc
        return value

    return read(ENV_WINDOWS), read(ENV_WARMUP)


def normalized_warmup(windows: int, warmup: Optional[int],
                      sampled: bool) -> int:
    """The warmup a plan will resolve ``warmup=None`` to.

    Pure function of the request (no trace length), so cache and
    checkpoint keys can be computed before any trace is built and stay
    consistent between :func:`run_windowed` and the batch engine.
    """
    if warmup is not None:
        return int(warmup)
    return DEFAULT_WARMUP if windows > 1 or sampled else 0


def plan_windows(n: int, windows: int, warmup: Optional[int] = None,
                 sampled: bool = False) -> WindowPlan:
    """Decompose a trace of *n* instructions into a window plan.

    Exact plans tile ``[0, n)`` with K near-equal contiguous spans.
    Sampled plans place one sample span at the head of each of K equal
    periods (``max(MIN_SAMPLE_LEN, period // SAMPLE_FRACTION)``
    instructions, clipped to the period).  *warmup* of ``None`` picks
    :data:`DEFAULT_WARMUP`; the first window never needs warmup (its
    true initial state *is* the reset state).
    """
    if n <= 0:
        raise ValueError(f"cannot window an empty trace (n={n})")
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    warmup = normalized_warmup(windows, warmup, sampled)
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    count = min(windows, n)
    spans: List[Tuple[int, int]] = []
    if sampled:
        period = n // count
        sample_len = min(period, max(MIN_SAMPLE_LEN, period // SAMPLE_FRACTION))
        for i in range(count):
            start = i * period
            spans.append((start, min(start + sample_len, n)))
    else:
        base, rem = divmod(n, count)
        start = 0
        for i in range(count):
            stop = start + base + (1 if i < rem else 0)
            spans.append((start, stop))
            start = stop
    return WindowPlan(n=n, windows=count, warmup=warmup, sampled=sampled,
                      spans=tuple(spans))


# ----------------------------------------------------------------------
# Measurement: run-and-subtract per window


def _subtract_counts(full: Dict[str, int], warm: Dict[str, int]
                     ) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for name in full.keys() | warm.keys():
        value = full.get(name, 0) - warm.get(name, 0)
        if value > 0:
            out[name] = value
    return out


def _subtract_lanes(full: Dict[str, List[int]], warm: Dict[str, List[int]]
                    ) -> Dict[str, List[int]]:
    out: Dict[str, List[int]] = {}
    for name in full.keys() | warm.keys():
        f = full.get(name, [])
        w = warm.get(name, [])
        lanes = [max(0, (f[i] if i < len(f) else 0)
                     - (w[i] if i < len(w) else 0))
                 for i in range(max(len(f), len(w)))]
        if any(lanes):
            out[name] = lanes
    return out


def _subtract_stats(full, warm):
    kwargs = {f.name: max(0, getattr(full, f.name) - getattr(warm, f.name))
              for f in dataclass_fields(full)}
    return type(full)(**kwargs)


def subtract_results(full: CoreResult, warm: CoreResult) -> CoreResult:
    """``full - warm``: the warm prefix's contribution removed.

    Exact for :data:`EXACT_EVENTS` (the warm prefix commits identically
    in both runs); per-cycle counts carry the warm run's drain tail as
    a bounded error, and rare negatives clamp to zero.
    """
    extra = {name: max(0.0, value - warm.extra.get(name, 0.0))
             for name, value in full.extra.items()}
    return CoreResult(
        workload=full.workload,
        config_name=full.config_name,
        core=full.core,
        cycles=max(0, full.cycles - warm.cycles),
        instret=full.instret - warm.instret,
        events=_subtract_counts(full.events, warm.events),
        lane_events=_subtract_lanes(full.lane_events, warm.lane_events),
        commit_width=full.commit_width,
        issue_width=full.issue_width,
        l1i_stats=_subtract_stats(full.l1i_stats, warm.l1i_stats),
        l1d_stats=_subtract_stats(full.l1d_stats, warm.l1d_stats),
        l2_stats=_subtract_stats(full.l2_stats, warm.l2_stats),
        predictor_stats=_subtract_stats(full.predictor_stats,
                                        warm.predictor_stats),
        extra=extra,
    )


def _pin_retire_counts(result: CoreResult, n_instr: int) -> CoreResult:
    """Correct end-of-stream phantom-commit inflation on window runs.

    A trace sliced mid-stream can end while a mispredict recovery is in
    flight; BOOM's frontend then fetches wrong-path *phantom* µops
    (``u_dyn = -1``) that reach commit before the flush and inflate the
    retire counters past the trace length.  A full registry trace ends
    at its exit ``ecall``, so the ``run_core`` oracle never sees this —
    it is purely a window-truncation artifact.  The window's
    architectural instruction count is known by construction, so pin
    ``instret`` (and the retire-count events) to it.
    """
    delta = result.instret - n_instr
    if delta > 0:
        events = dict(result.events)
        for name in ("instr_retired", "uops_retired"):
            if name in events:
                events[name] = max(0, events[name] - delta)
        result.events = events
        result.instret = n_instr
    return result


def measure_window(window_trace: ColumnarTrace, warm_len: int,
                   config: CoreConfig,
                   engine: Optional[str] = None) -> CoreResult:
    """Measure one window whose first *warm_len* instructions are warmup.

    *window_trace* spans ``[start - warm_len, stop)`` of the parent
    trace.  Both runs use fresh cores (state is never shared between
    windows) over the same shared columns.
    """
    full = _pin_retire_counts(
        make_core(config).run(window_trace, engine=engine),
        len(window_trace))
    if warm_len <= 0:
        return full
    warm_trace = window_trace.slice(0, warm_len)
    warm = _pin_retire_counts(
        make_core(config).run(warm_trace, engine=engine), warm_len)
    return subtract_results(full, warm)


# ----------------------------------------------------------------------
# Stitching and extrapolation


def _sum_stats(parts):
    first = parts[0]
    kwargs = {f.name: sum(getattr(p, f.name) for p in parts)
              for f in dataclass_fields(first)}
    return type(first)(**kwargs)


def _scale_stats(stats, factor: float):
    kwargs = {f.name: int(round(getattr(stats, f.name) * factor))
              for f in dataclass_fields(stats)}
    return type(stats)(**kwargs)


def stitch_results(workload: str, parts: Sequence[CoreResult]) -> CoreResult:
    """Sum per-window measurements into a whole-run :class:`CoreResult`."""
    if not parts:
        raise ValueError("nothing to stitch")
    first = parts[0]
    events: Dict[str, int] = {}
    lane_events: Dict[str, List[int]] = {}
    extra: Dict[str, float] = {}
    for part in parts:
        for name, value in part.events.items():
            events[name] = events.get(name, 0) + value
        for name, lanes in part.lane_events.items():
            merged = lane_events.setdefault(name, [])
            while len(merged) < len(lanes):
                merged.append(0)
            for i, value in enumerate(lanes):
                merged[i] += value
        for name, value in part.extra.items():
            extra[name] = extra.get(name, 0.0) + value
    return CoreResult(
        workload=workload,
        config_name=first.config_name,
        core=first.core,
        cycles=sum(p.cycles for p in parts),
        instret=sum(p.instret for p in parts),
        events={k: v for k, v in events.items() if v},
        lane_events=lane_events,
        commit_width=first.commit_width,
        issue_width=first.issue_width,
        l1i_stats=_sum_stats([p.l1i_stats for p in parts]),
        l1d_stats=_sum_stats([p.l1d_stats for p in parts]),
        l2_stats=_sum_stats([p.l2_stats for p in parts]),
        predictor_stats=_sum_stats([p.predictor_stats for p in parts]),
        extra=extra,
    )


def _error_bars(parts: Sequence[CoreResult]) -> Dict[str, Dict[str, float]]:
    """Per-TMA-slot mean/stderr/95% bounds from cross-window variance."""
    from ..core.tma import TOP_LEVEL, compute_tma

    fractions: Dict[str, List[float]] = {}
    for part in parts:
        if part.cycles <= 0 or part.instret <= 0:
            continue
        tma = compute_tma(part)
        for name in TOP_LEVEL:
            fractions.setdefault(name, []).append(tma.level1[name])
    bars: Dict[str, Dict[str, float]] = {}
    for name, values in fractions.items():
        k = len(values)
        mean = sum(values) / k
        var = (sum((v - mean) ** 2 for v in values) / (k - 1)
               if k > 1 else 0.0)
        stderr = math.sqrt(var / k)
        bars[name] = {
            "mean": mean,
            "stderr": stderr,
            "low": max(0.0, mean - 1.96 * stderr),
            "high": min(1.0, mean + 1.96 * stderr),
        }
    return bars


def extrapolate_sampled(stitched: CoreResult, plan: WindowPlan,
                        parts: Sequence[CoreResult]) -> CoreResult:
    """Scale sampled-span totals to whole-trace estimates.

    ``instret`` is pinned to the true trace length; every other count
    scales by the coverage factor.  The result is labeled
    ``sampled=True`` and carries per-slot error bars in ``windowed``.
    """
    measured = plan.measured_instructions
    if measured <= 0:
        raise ValueError("sampled plan measured no instructions")
    factor = plan.n / measured
    events = {k: int(round(v * factor)) for k, v in stitched.events.items()}
    lane_events = {k: [int(round(x * factor)) for x in v]
                   for k, v in stitched.lane_events.items()}
    extra = {k: v * factor for k, v in stitched.extra.items()}
    return CoreResult(
        workload=stitched.workload,
        config_name=stitched.config_name,
        core=stitched.core,
        cycles=int(round(stitched.cycles * factor)),
        instret=plan.n,
        events={k: v for k, v in events.items() if v},
        lane_events=lane_events,
        commit_width=stitched.commit_width,
        issue_width=stitched.issue_width,
        l1i_stats=_scale_stats(stitched.l1i_stats, factor),
        l1d_stats=_scale_stats(stitched.l1d_stats, factor),
        l2_stats=_scale_stats(stitched.l2_stats, factor),
        predictor_stats=_scale_stats(stitched.predictor_stats, factor),
        extra=extra,
        sampled=True,
        windowed=None,  # attached by the caller with the full metadata
    )


# ----------------------------------------------------------------------
# Stitch-identity gate


def stitch_deviations(stitched: CoreResult, oracle: CoreResult
                      ) -> Dict[str, Dict[str, int]]:
    """Per-counter ``{stitched, oracle, delta}`` report (cycles included)."""
    report: Dict[str, Dict[str, int]] = {}
    names = stitched.events.keys() | oracle.events.keys()
    for name in sorted(names):
        s = stitched.events.get(name, 0)
        o = oracle.events.get(name, 0)
        report[name] = {"stitched": s, "oracle": o, "delta": s - o}
    report["cycles"] = {"stitched": stitched.cycles, "oracle": oracle.cycles,
                        "delta": stitched.cycles - oracle.cycles}
    return report


def assert_stitch_equivalent(stitched: CoreResult, oracle: CoreResult,
                             windows: int, *, rel_tol: float = REL_TOL,
                             abs_per_window: int = ABS_PER_WINDOW) -> None:
    """Gate a stitched result against the full-run oracle.

    Every :data:`EXACT_EVENTS` counter must match bit-for-bit;
    ``instret`` and the :data:`RETIRE_EVENTS` counters must match
    within :data:`RETIRE_EDGE_SLACK` (the oracle's own end-of-stream
    phantom commits); cycles and all other events must sit within
    ``max(rel_tol * oracle, abs_per_window * windows)``.  Raises
    ``AssertionError`` naming every violated counter.
    """
    errors: List[str] = []
    if abs(stitched.instret - oracle.instret) > RETIRE_EDGE_SLACK:
        errors.append(f"instret: stitched {stitched.instret} != "
                      f"oracle {oracle.instret} "
                      f"(slack {RETIRE_EDGE_SLACK})")
    for name, row in stitch_deviations(stitched, oracle).items():
        delta = row["delta"]
        if name in EXACT_EVENTS:
            if delta:
                errors.append(
                    f"{name}: exact-class event off by {delta} "
                    f"(stitched {row['stitched']}, oracle {row['oracle']})")
            continue
        if name in RETIRE_EVENTS:
            if abs(delta) > RETIRE_EDGE_SLACK:
                errors.append(
                    f"{name}: retire-class event off by {delta}, beyond "
                    f"the end-of-stream phantom slack {RETIRE_EDGE_SLACK} "
                    f"(stitched {row['stitched']}, oracle {row['oracle']})")
            continue
        bound = max(rel_tol * row["oracle"], abs_per_window * windows)
        if abs(delta) > bound:
            errors.append(
                f"{name}: |{delta}| exceeds tolerance {bound:.1f} "
                f"(stitched {row['stitched']}, oracle {row['oracle']})")
    if errors:
        raise AssertionError(
            "stitched result diverged from the oracle:\n  "
            + "\n  ".join(errors))


# ----------------------------------------------------------------------
# Parallel execution


def _tick(progress, message: str) -> None:
    # ``progress`` is either the CLI's boolean (print ticks to stderr)
    # or a callable sink — the service streams per-window ticks to SSE
    # subscribers by passing its event-journal hook here.
    if callable(progress):
        progress(message)
    elif progress:
        print(message, file=sys.stderr, flush=True)


def _window_task(tag, static_blob: bytes, window_blob: bytes, warm_len: int,
                 config: CoreConfig, engine: str):
    """Pool-worker entry: one window, run-and-subtract, exact codec.

    *tag* is any picklable identity the caller uses to route the result
    (a window index, or a ``(point key, index)`` pair for grid runs).
    The static blob is parsed once per worker and shared across every
    window of the same trace (digest-keyed cache in the codec).
    """
    from ..tools.cache import serialize_result

    begin = time.perf_counter()
    trace = unpack_window(static_blob, window_blob)
    result = measure_window(trace, warm_len, config, engine=engine)
    return tag, serialize_result(result), time.perf_counter() - begin


def _resolve_workers(workers: Optional[int], tasks: int) -> int:
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), tasks))


def _run_window_tasks(
    trace: ColumnarTrace,
    tasks: Sequence[Tuple[object, int, int, int, CoreConfig]],
    engine: str,
    workers: Optional[int],
    progress: bool,
    executor_factory=None,
    on_result: Optional[Callable[[object, CoreResult, float], None]] = None,
) -> Dict[object, Tuple[CoreResult, float]]:
    """Execute window tasks, in a pool when it pays, inline otherwise.

    Each task is ``(tag, warm_start, start, stop, config)``.  Pool
    failures fall back to finishing the remaining tasks inline, like
    the batch engine.  Returns ``{tag: (measured result, wall_s)}``.
    """
    from ..tools import cache as result_cache
    from ..tools.pool import EXECUTOR_FACTORIES

    done: Dict[object, Tuple[CoreResult, float]] = {}
    total = len(tasks)

    def note(tag, result: CoreResult, wall: float, start: int,
             stop: int) -> None:
        done[tag] = (result, wall)
        _tick(progress,
              f"[windowed] window {len(done)}/{total} ({tag}): "
              f"{stop - start} instr, {wall:.2f}s")
        if on_result is not None:
            on_result(tag, result, wall)

    count = _resolve_workers(workers, total)
    remaining = list(tasks)
    if count > 1:
        static_blob = trace.pack_static()
        factory = executor_factory or EXECUTOR_FACTORIES["process"]
        try:
            with factory(count) as pool:
                futures = {
                    pool.submit(
                        _window_task, tag,
                        static_blob, trace.pack_window(warm_start, stop),
                        start - warm_start, config, engine): (tag, start, stop)
                    for tag, warm_start, start, stop, config in tasks
                }
                for future in as_completed(futures):
                    tag, start, stop = futures[future]
                    _, payload, wall = future.result()
                    note(tag, result_cache.deserialize_result(payload),
                         wall, start, stop)
        except Exception:  # noqa: BLE001 - any pool failure: go inline
            remaining = [t for t in tasks if t[0] not in done]
        else:
            remaining = []
    for tag, warm_start, start, stop, config in remaining:
        begin = time.perf_counter()
        window_trace = trace.slice(warm_start, stop)
        result = measure_window(window_trace, start - warm_start, config,
                                engine=engine)
        note(tag, result, time.perf_counter() - begin, start, stop)
    return done


def _window_tasks(plan: WindowPlan, config: CoreConfig,
                  tag: Callable[[int], object]
                  ) -> List[Tuple[object, int, int, int, CoreConfig]]:
    return [
        (tag(i), max(0, start - plan.warmup), start, stop, config)
        for i, (start, stop) in enumerate(plan.spans)
    ]


def windowed_metadata(plan: WindowPlan, walls: Sequence[float]
                      ) -> Dict[str, object]:
    """The JSON-able ``CoreResult.windowed`` metadata block."""
    return {
        "windows": plan.windows,
        "warmup": plan.warmup,
        "sampled": plan.sampled,
        "spans": [[start, stop] for start, stop in plan.spans],
        "window_wall_s": [round(w, 6) for w in walls],
        "coverage": round(plan.coverage, 6),
    }


def run_windowed(workload: str, config: CoreConfig, *, windows: int,
                 scale: float = 1.0, warmup: Optional[int] = None,
                 sampled: bool = False, engine: Optional[str] = None,
                 use_cache: bool = True, workers: Optional[int] = None,
                 progress: bool = False, executor_factory=None) -> CoreResult:
    """Windowed (or sampled) replacement for a single ``run_core``.

    Returns a whole-run :class:`CoreResult` carrying ``windowed``
    metadata (plan, per-window wall times, coverage; error bars when
    sampled).  Results are cached under
    :func:`repro.tools.cache.windowed_cache_key`, which folds the
    window plan so windowed entries never collide with plain runs or
    with each other across plans/modes.
    """
    from ..tools import cache as result_cache
    from ..workloads import build_trace

    engine_name = resolve_timing_engine(engine)
    # The key normalizes the request without touching the trace, so a
    # cache hit skips even the functional-execution/trace-fetch cost.
    key = result_cache.windowed_cache_key(
        workload, scale, config, windows,
        normalized_warmup(windows, warmup, sampled), sampled)
    if use_cache:
        cached = result_cache.load(key)
        if cached is not None:
            return cached
    trace = build_trace(workload, scale=scale)
    plan = plan_windows(len(trace), windows, warmup=warmup, sampled=sampled)

    begin = time.perf_counter()
    done = _run_window_tasks(
        trace, _window_tasks(plan, config, tag=lambda i: i), engine_name,
        workers, progress, executor_factory)
    parts = [done[i][0] for i in range(len(plan.spans))]
    walls = [done[i][1] for i in range(len(plan.spans))]

    stitched = stitch_results(workload, parts)
    metadata = windowed_metadata(plan, walls)
    metadata["wall_s"] = round(time.perf_counter() - begin, 6)
    if plan.sampled:
        result = extrapolate_sampled(stitched, plan, parts)
        metadata["error_bars"] = _error_bars(parts)
    else:
        result = stitched
    result.windowed = metadata
    if use_cache:
        result_cache.store(key, result)
    return result


def run_windowed_points(
    workload: str, points: Sequence[GridPoint], *, windows: int,
    scale: float = 1.0, warmup: Optional[int] = None, sampled: bool = False,
    engine: Optional[str] = None, workers: Optional[int] = None,
    progress: bool = False, executor_factory=None,
    note: Optional[Callable[[GridPoint, CoreResult], None]] = None,
) -> Dict[str, CoreResult]:
    """Grid x windows: every (point, window) pair is one pool work unit.

    This is the scheduling unit that finally saturates multi-core
    runners on small grids: a grid of P points over K windows exposes
    P*K independent tasks instead of P, so the pool never idles behind
    one long serial simulation.  The static blob ships once per worker
    regardless of P or K.  *note* fires as each point's stitched result
    completes (the batch engine uses it for cache/checkpoint writes).
    """
    from ..workloads import build_trace

    engine_name = resolve_timing_engine(engine)
    trace = build_trace(workload, scale=scale)
    plan = plan_windows(len(trace), windows, warmup=warmup, sampled=sampled)
    by_point = {point.key: point for point in points}

    tasks: List[Tuple[object, int, int, int, CoreConfig]] = []
    for point in points:
        tasks.extend(_window_tasks(
            plan, point.config, tag=lambda i, key=point.key: (key, i)))

    begin = time.perf_counter()
    done = _run_window_tasks(trace, tasks, engine_name, workers, progress,
                             executor_factory)
    results: Dict[str, CoreResult] = {}
    for point in points:
        parts = [done[(point.key, i)][0] for i in range(len(plan.spans))]
        walls = [done[(point.key, i)][1] for i in range(len(plan.spans))]
        stitched = stitch_results(workload, parts)
        metadata = windowed_metadata(plan, walls)
        metadata["wall_s"] = round(time.perf_counter() - begin, 6)
        if plan.sampled:
            result = extrapolate_sampled(stitched, plan, parts)
            metadata["error_bars"] = _error_bars(parts)
        else:
            result = stitched
        result.windowed = metadata
        results[point.key] = result
        if note is not None:
            note(by_point[point.key], result)
    return results
