"""RV64-subset ISA model: registers, instructions, assembler, executor.

This package provides everything needed to express the paper's workload
suite as real RISC-V-style programs and to obtain committed-path dynamic
traces that the Rocket and BOOM timing models replay.
"""

from .assembler import Assembler, assemble
from .builder import AsmBuilder
from .columnar import ColumnarTrace, StaticOp, unpack
from .compiler import (CompiledProgram, CompileError, compile_program,
                       execute_compiled)
from .dyn_trace import DynamicTrace, DynInst, FP_REG_BASE, NO_REG
from .encoding import (EncodingError, decode, encodable, encode,
                       encode_program)
from .errors import AssemblerError, ExecutionError, IsaError
from .executor import FunctionalExecutor, execute
from .instructions import InstrClass, Instruction, OPCODES, OpSpec
from .memory import SparseMemory
from .program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program

__all__ = [
    "AsmBuilder",
    "Assembler",
    "AssemblerError",
    "ColumnarTrace",
    "CompileError",
    "CompiledProgram",
    "DEFAULT_DATA_BASE",
    "DEFAULT_TEXT_BASE",
    "DynamicTrace",
    "DynInst",
    "EncodingError",
    "ExecutionError",
    "FP_REG_BASE",
    "FunctionalExecutor",
    "InstrClass",
    "Instruction",
    "IsaError",
    "NO_REG",
    "OPCODES",
    "OpSpec",
    "Program",
    "SparseMemory",
    "StaticOp",
    "assemble",
    "compile_program",
    "decode",
    "encodable",
    "encode",
    "encode_program",
    "execute",
    "execute_compiled",
    "unpack",
]
