"""Two-pass assembler for the RV64 subset.

Supports the usual bare-metal assembly shape the workload suite is written
in: ``.text``/``.data`` sections, labels, data directives, a practical set
of pseudo-instructions (``li``, ``la``, ``mv``, ``call``, ``ret``,
``beqz``…), and symbolic branch/jump targets.

Pass 1 expands pseudo-instructions into proto-instructions (operands may
still be unresolved symbols) and lays out the data section.  Pass 2
resolves every symbol to its byte address and materializes
:class:`~repro.isa.instructions.Instruction` objects inside a
:class:`~repro.isa.program.Program`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .csrs import CSR_ADDRS
from .errors import AssemblerError
from .instructions import OPCODES, Instruction, OperandFormat
from .program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, INSTR_BYTES, Program
from .registers import parse_fp_reg, parse_int_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)$")


@dataclass
class _Symbol:
    """Unresolved symbol reference with an optional constant offset."""

    name: str
    offset: int = 0


Operand = Union[int, _Symbol]


@dataclass
class _Proto:
    """A proto-instruction: mnemonic + operands, target may be symbolic."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: Operand = 0
    csr: int = 0
    line: int = -1
    # Relocation kind for symbolic imm: "abs", "branch", "jal",
    # "pcrel_hi" or "pcrel_lo" (for la's auipc+addi pair).
    reloc: str = "abs"


class Assembler:
    """Assemble RV64-subset source text into a :class:`Program`."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 data_base: int = DEFAULT_DATA_BASE) -> None:
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble *source* and return the placed :class:`Program`."""
        protos: List[_Proto] = []
        data_image: Dict[int, int] = {}
        symbols: Dict[str, int] = {}
        equates: Dict[str, int] = {}
        # label -> ("text", proto_index) or resolved data address
        pending_text_labels: Dict[str, int] = {}

        section = "text"
        data_cursor = self.data_base

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if match and not self._looks_like_operand_colon(line):
                    label, line = match.group(1), match.group(2).strip()
                    if label in symbols or label in pending_text_labels:
                        raise AssemblerError(f"duplicate label {label!r}", lineno)
                    if section == "text":
                        pending_text_labels[label] = len(protos)
                    else:
                        symbols[label] = data_cursor
                    continue
                break
            if not line:
                continue

            if line.startswith("."):
                section, data_cursor = self._directive(
                    line, lineno, section, data_cursor, data_image, symbols,
                    equates)
                continue

            if section != "text":
                raise AssemblerError(
                    f"instruction outside .text section: {line!r}", lineno)
            protos.extend(self._parse_instruction(line, lineno, equates))

        for label, proto_index in pending_text_labels.items():
            symbols[label] = self.text_base + proto_index * INSTR_BYTES

        instructions = self._resolve(protos, symbols)
        entry = symbols.get("_start", self.text_base)
        return Program(instructions, text_base=self.text_base,
                       data=data_image, symbols=symbols, entry=entry,
                       name=name)

    # ------------------------------------------------------------------
    # parsing helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in ("#", "//", ";"):
            pos = line.find(marker)
            if pos >= 0:
                line = line[:pos]
        return line

    @staticmethod
    def _looks_like_operand_colon(line: str) -> bool:
        # Guards against treating "1:" inside operands as a label; our
        # subset has no numeric local labels, so any match is a label.
        return False

    def _parse_int(self, token: str, lineno: int,
                   equates: Dict[str, int]) -> int:
        token = token.strip()
        if token in equates:
            return equates[token]
        if not _INT_RE.match(token):
            raise AssemblerError(f"expected integer, got {token!r}", lineno)
        return int(token, 0)

    def _parse_operand_value(self, token: str, lineno: int,
                             equates: Dict[str, int]) -> Operand:
        """Integer literal, equate, or symbol[+offset]."""
        token = token.strip()
        if _INT_RE.match(token):
            return int(token, 0)
        if token in equates:
            return equates[token]
        plus = token.rfind("+")
        minus = token.rfind("-")
        cut = max(plus, minus)
        if cut > 0:
            base, rest = token[:cut].strip(), token[cut:].strip()
            try:
                offset = int(rest, 0)
            except ValueError:
                raise AssemblerError(f"bad symbol offset in {token!r}", lineno)
            return _Symbol(base, offset)
        return _Symbol(token)

    # ------------------------------------------------------------------
    # directives
    # ------------------------------------------------------------------

    def _directive(self, line: str, lineno: int, section: str,
                   data_cursor: int, data_image: Dict[int, int],
                   symbols: Dict[str, int],
                   equates: Dict[str, int]) -> Tuple[str, int]:
        parts = line.split(None, 1)
        directive = parts[0]
        rest = parts[1] if len(parts) > 1 else ""

        if directive in (".text", ".section.text"):
            return "text", data_cursor
        if directive == ".data":
            return "data", data_cursor
        if directive == ".section":
            target = rest.split(",")[0].strip()
            if target.startswith(".text"):
                return "text", data_cursor
            if target.startswith((".data", ".bss", ".rodata")):
                return "data", data_cursor
            raise AssemblerError(f"unknown section {target!r}", lineno)
        if directive in (".global", ".globl", ".local", ".type", ".size",
                         ".file", ".option", ".attribute", ".p2align"):
            return section, data_cursor
        if directive == ".equ" or directive == ".set":
            name, _, value = rest.partition(",")
            if not value:
                raise AssemblerError(".equ needs NAME, VALUE", lineno)
            equates[name.strip()] = self._parse_int(value, lineno, equates)
            return section, data_cursor
        if directive == ".align":
            k = self._parse_int(rest, lineno, equates)
            size = 1 << k
            if section == "data":
                data_cursor = (data_cursor + size - 1) & ~(size - 1)
            return section, data_cursor

        widths = {".byte": 1, ".half": 2, ".word": 4, ".dword": 8,
                  ".quad": 8, ".2byte": 2, ".4byte": 4, ".8byte": 8}
        data_directives = set(widths) | {".space", ".zero", ".skip",
                                         ".ascii", ".asciz", ".string"}
        if directive not in data_directives:
            raise AssemblerError(f"unknown directive {directive!r}", lineno)
        if section != "data":
            raise AssemblerError(
                f"data directive {directive!r} outside .data", lineno)
        if directive in widths:
            width = widths[directive]
            for token in self._split_commas(rest):
                value = self._data_value(token, lineno, symbols, equates)
                for i in range(width):
                    data_image[data_cursor + i] = (value >> (8 * i)) & 0xFF
                data_cursor += width
            return section, data_cursor
        if directive in (".space", ".zero", ".skip"):
            count = self._parse_int(rest.split(",")[0], lineno, equates)
            for i in range(count):
                data_image[data_cursor + i] = 0
            data_cursor += count
            return section, data_cursor
        if directive in (".ascii", ".asciz", ".string"):
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblerError("string literal expected", lineno)
            payload = text[1:-1].encode("utf-8").decode("unicode_escape")
            for char in payload:
                data_image[data_cursor] = ord(char) & 0xFF
                data_cursor += 1
            if directive in (".asciz", ".string"):
                data_image[data_cursor] = 0
                data_cursor += 1
            return section, data_cursor

        raise AssemblerError(f"unknown directive {directive!r}", lineno)

    def _data_value(self, token: str, lineno: int, symbols: Dict[str, int],
                    equates: Dict[str, int]) -> int:
        operand = self._parse_operand_value(token, lineno, equates)
        if isinstance(operand, int):
            return operand
        if operand.name in symbols:
            return symbols[operand.name] + operand.offset
        raise AssemblerError(
            f"forward data reference to {operand.name!r} not supported",
            lineno)

    @staticmethod
    def _split_commas(text: str) -> List[str]:
        return [t.strip() for t in text.split(",") if t.strip()]

    # ------------------------------------------------------------------
    # instructions and pseudo-instructions
    # ------------------------------------------------------------------

    _MEM_OPERAND_RE = re.compile(r"^(?:([^()]*)\()?\s*([\w.$]+)\s*\)?$")

    def _parse_mem_operand(self, token: str, lineno: int,
                           equates: Dict[str, int]) -> Tuple[int, int]:
        """Parse ``imm(reg)`` or ``(reg)`` and return (imm, reg_index)."""
        token = token.strip()
        if "(" not in token:
            raise AssemblerError(f"expected imm(reg), got {token!r}", lineno)
        imm_part, _, reg_part = token.partition("(")
        reg_part = reg_part.rstrip(")").strip()
        imm = 0
        if imm_part.strip():
            imm = self._parse_int(imm_part, lineno, equates)
        return imm, parse_int_reg(reg_part)

    def _parse_instruction(self, line: str, lineno: int,
                           equates: Dict[str, int]) -> List[_Proto]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = self._split_commas(operand_text)

        expanded = self._expand_pseudo(mnemonic, operands, lineno, equates)
        if expanded is not None:
            return expanded

        if mnemonic not in OPCODES:
            raise AssemblerError(f"unknown instruction {mnemonic!r}", lineno)
        return [self._parse_real(mnemonic, operands, lineno, equates)]

    def _parse_real(self, mnemonic: str, ops: List[str], lineno: int,
                    equates: Dict[str, int]) -> _Proto:
        spec = OPCODES[mnemonic]
        fmt = spec.fmt
        p = _Proto(mnemonic, line=lineno)
        try:
            if fmt == OperandFormat.R:
                p.rd, p.rs1, p.rs2 = (parse_int_reg(ops[0]),
                                      parse_int_reg(ops[1]),
                                      parse_int_reg(ops[2]))
            elif fmt == OperandFormat.I:
                p.rd = parse_int_reg(ops[0])
                p.rs1 = parse_int_reg(ops[1])
                p.imm = self._parse_int(ops[2], lineno, equates)
            elif fmt == OperandFormat.LOAD:
                p.rd = parse_int_reg(ops[0])
                p.imm, p.rs1 = self._parse_mem_operand(ops[1], lineno, equates)
            elif fmt == OperandFormat.STORE:
                p.rs2 = parse_int_reg(ops[0])
                p.imm, p.rs1 = self._parse_mem_operand(ops[1], lineno, equates)
            elif fmt == OperandFormat.BRANCH:
                p.rs1 = parse_int_reg(ops[0])
                p.rs2 = parse_int_reg(ops[1])
                p.imm = self._parse_operand_value(ops[2], lineno, equates)
                p.reloc = "branch"
            elif fmt == OperandFormat.U:
                p.rd = parse_int_reg(ops[0])
                p.imm = self._parse_int(ops[1], lineno, equates)
            elif fmt == OperandFormat.JAL:
                if len(ops) == 1:  # "jal target" implies rd=ra
                    p.rd = 1
                    p.imm = self._parse_operand_value(ops[0], lineno, equates)
                else:
                    p.rd = parse_int_reg(ops[0])
                    p.imm = self._parse_operand_value(ops[1], lineno, equates)
                p.reloc = "jal"
            elif fmt == OperandFormat.JALR:
                if len(ops) == 1:  # "jalr rs1" implies rd=ra, imm=0
                    p.rd = 1
                    p.rs1 = parse_int_reg(ops[0])
                else:
                    p.rd = parse_int_reg(ops[0])
                    p.rs1 = parse_int_reg(ops[1])
                    if len(ops) > 2:
                        p.imm = self._parse_int(ops[2], lineno, equates)
            elif fmt == OperandFormat.CSR:
                p.rd = parse_int_reg(ops[0])
                p.csr = self._parse_csr(ops[1], lineno, equates)
                p.rs1 = parse_int_reg(ops[2])
            elif fmt == OperandFormat.CSRI:
                p.rd = parse_int_reg(ops[0])
                p.csr = self._parse_csr(ops[1], lineno, equates)
                p.imm = self._parse_int(ops[2], lineno, equates)
            elif fmt == OperandFormat.NONE:
                pass
            elif fmt == OperandFormat.FP_R:
                p.rd, p.rs1, p.rs2 = (parse_fp_reg(ops[0]),
                                      parse_fp_reg(ops[1]),
                                      parse_fp_reg(ops[2]))
            elif fmt == OperandFormat.FP_LOAD:
                p.rd = parse_fp_reg(ops[0])
                p.imm, p.rs1 = self._parse_mem_operand(ops[1], lineno, equates)
            elif fmt == OperandFormat.FP_STORE:
                p.rs2 = parse_fp_reg(ops[0])
                p.imm, p.rs1 = self._parse_mem_operand(ops[1], lineno, equates)
            elif fmt == OperandFormat.FP_CMP:
                p.rd = parse_int_reg(ops[0])
                p.rs1 = parse_fp_reg(ops[1])
                p.rs2 = parse_fp_reg(ops[2])
            elif fmt == OperandFormat.FP_CVT_TO:
                p.rd = parse_fp_reg(ops[0])
                p.rs1 = parse_int_reg(ops[1])
            elif fmt == OperandFormat.FP_CVT_FROM:
                p.rd = parse_int_reg(ops[0])
                p.rs1 = parse_fp_reg(ops[1])
            elif fmt == OperandFormat.FP_UNARY:
                p.rd = parse_fp_reg(ops[0])
                p.rs1 = parse_fp_reg(ops[1])
            elif fmt == OperandFormat.AMO:
                p.rd = parse_int_reg(ops[0])
                p.rs2 = parse_int_reg(ops[1])
                _, p.rs1 = self._parse_mem_operand(ops[2], lineno, equates)
            elif fmt == OperandFormat.LR:
                p.rd = parse_int_reg(ops[0])
                _, p.rs1 = self._parse_mem_operand(ops[1], lineno, equates)
            else:  # pragma: no cover - exhaustive above
                raise AssemblerError(f"unhandled format {fmt}", lineno)
        except (IndexError, KeyError) as exc:
            raise AssemblerError(
                f"bad operands for {mnemonic}: {', '.join(ops)!r} ({exc})",
                lineno)
        return p

    def _parse_csr(self, token: str, lineno: int,
                   equates: Dict[str, int]) -> int:
        token = token.strip().lower()
        if token in CSR_ADDRS:
            return CSR_ADDRS[token]
        return self._parse_int(token, lineno, equates)

    # ------------------------------------------------------------------
    # pseudo-instruction expansion
    # ------------------------------------------------------------------

    def _expand_pseudo(self, mnemonic: str, ops: List[str], lineno: int,
                       equates: Dict[str, int]) -> Optional[List[_Proto]]:
        def real(text: str) -> List[_Proto]:
            return self._parse_instruction(text, lineno, equates)

        if mnemonic == "nop":
            return real("addi zero, zero, 0")
        if mnemonic == "mv":
            return real(f"addi {ops[0]}, {ops[1]}, 0")
        if mnemonic == "not":
            return real(f"xori {ops[0]}, {ops[1]}, -1")
        if mnemonic == "neg":
            return real(f"sub {ops[0]}, zero, {ops[1]}")
        if mnemonic == "negw":
            return real(f"subw {ops[0]}, zero, {ops[1]}")
        if mnemonic == "seqz":
            return real(f"sltiu {ops[0]}, {ops[1]}, 1")
        if mnemonic == "snez":
            return real(f"sltu {ops[0]}, zero, {ops[1]}")
        if mnemonic == "sltz":
            return real(f"slt {ops[0]}, {ops[1]}, zero")
        if mnemonic == "sgtz":
            return real(f"slt {ops[0]}, zero, {ops[1]}")
        if mnemonic == "sext.w":
            return real(f"addiw {ops[0]}, {ops[1]}, 0")
        if mnemonic == "beqz":
            return real(f"beq {ops[0]}, zero, {ops[1]}")
        if mnemonic == "bnez":
            return real(f"bne {ops[0]}, zero, {ops[1]}")
        if mnemonic == "blez":
            return real(f"bge zero, {ops[0]}, {ops[1]}")
        if mnemonic == "bgez":
            return real(f"bge {ops[0]}, zero, {ops[1]}")
        if mnemonic == "bltz":
            return real(f"blt {ops[0]}, zero, {ops[1]}")
        if mnemonic == "bgtz":
            return real(f"blt zero, {ops[0]}, {ops[1]}")
        if mnemonic == "bgt":
            return real(f"blt {ops[1]}, {ops[0]}, {ops[2]}")
        if mnemonic == "ble":
            return real(f"bge {ops[1]}, {ops[0]}, {ops[2]}")
        if mnemonic == "bgtu":
            return real(f"bltu {ops[1]}, {ops[0]}, {ops[2]}")
        if mnemonic == "bleu":
            return real(f"bgeu {ops[1]}, {ops[0]}, {ops[2]}")
        if mnemonic == "j":
            return real(f"jal zero, {ops[0]}")
        if mnemonic == "jr":
            return real(f"jalr zero, {ops[0]}, 0")
        if mnemonic == "ret":
            return real("jalr zero, ra, 0")
        if mnemonic == "call":
            return real(f"jal ra, {ops[0]}")
        if mnemonic == "tail":
            return real(f"jal zero, {ops[0]}")
        if mnemonic == "csrr":
            return real(f"csrrs {ops[0]}, {ops[1]}, zero")
        if mnemonic == "csrw":
            return real(f"csrrw zero, {ops[0]}, {ops[1]}")
        if mnemonic == "csrs":
            return real(f"csrrs zero, {ops[0]}, {ops[1]}")
        if mnemonic == "csrc":
            return real(f"csrrc zero, {ops[0]}, {ops[1]}")
        if mnemonic == "csrwi":
            return real(f"csrrwi zero, {ops[0]}, {ops[1]}")
        if mnemonic == "csrsi":
            return real(f"csrrsi zero, {ops[0]}, {ops[1]}")
        if mnemonic == "csrci":
            return real(f"csrrci zero, {ops[0]}, {ops[1]}")
        if mnemonic == "li":
            rd = ops[0]
            value = self._parse_int(ops[1], lineno, equates)
            return [self._parse_real(m, o, lineno, equates)
                    for m, o in self._li_sequence(rd, value)]
        if mnemonic in ("la", "lla"):
            rd = parse_int_reg(ops[0])
            target = self._parse_operand_value(ops[1], lineno, equates)
            if isinstance(target, int):
                return [self._parse_real(m, o, lineno, equates)
                        for m, o in self._li_sequence(ops[0], target)]
            hi = _Proto("auipc", rd=rd, imm=target, line=lineno,
                        reloc="pcrel_hi")
            lo = _Proto("addi", rd=rd, rs1=rd, imm=target, line=lineno,
                        reloc="pcrel_lo")
            return [hi, lo]
        if mnemonic == "fmv.d":
            return real(f"fmin.d {ops[0]}, {ops[1]}, {ops[1]}")
        return None

    @staticmethod
    def _li_sequence(rd: str, value: int) -> List[Tuple[str, List[str]]]:
        """Materialize a signed 64-bit constant, LLVM-style recursion."""
        value = ((value + (1 << 63)) % (1 << 64)) - (1 << 63)  # to signed

        ops: List[Tuple[str, List[str]]] = []

        def emit(v: int) -> None:
            if -2048 <= v < 2048:
                ops.append(("addi", [rd, "zero", str(v)]))
                return
            lo = v & 0xFFF
            if lo >= 0x800:
                lo -= 0x1000
            hi = (v - lo) >> 12
            emit(hi)
            ops.append(("slli", [rd, rd, "12"]))
            if lo:
                ops.append(("addi", [rd, rd, str(lo)]))

        emit(value)
        return ops

    # ------------------------------------------------------------------
    # symbol resolution
    # ------------------------------------------------------------------

    def _resolve(self, protos: Sequence[_Proto],
                 symbols: Dict[str, int]) -> List[Instruction]:
        instructions: List[Instruction] = []
        for index, proto in enumerate(protos):
            pc = self.text_base + index * INSTR_BYTES
            imm = proto.imm
            if isinstance(imm, _Symbol):
                if imm.name not in symbols:
                    raise AssemblerError(
                        f"undefined symbol {imm.name!r}", proto.line)
                target = symbols[imm.name] + imm.offset
                if proto.reloc in ("branch", "jal"):
                    imm = target  # absolute byte target (model simplification)
                elif proto.reloc == "pcrel_hi":
                    delta = target - pc
                    lo = delta & 0xFFF
                    if lo >= 0x800:
                        lo -= 0x1000
                    imm = (delta - lo) >> 12
                elif proto.reloc == "pcrel_lo":
                    # The matching auipc is the immediately preceding proto.
                    hi_pc = pc - INSTR_BYTES
                    delta = target - hi_pc
                    lo = delta & 0xFFF
                    if lo >= 0x800:
                        lo -= 0x1000
                    imm = lo
                else:
                    imm = target
            instructions.append(Instruction(
                proto.mnemonic, rd=proto.rd, rs1=proto.rs1, rs2=proto.rs2,
                imm=imm, csr=proto.csr, source_line=proto.line))
        return instructions


def assemble(source: str, name: str = "program",
             text_base: int = DEFAULT_TEXT_BASE,
             data_base: int = DEFAULT_DATA_BASE) -> Program:
    """Convenience one-shot assembly entry point."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(
        source, name=name)
