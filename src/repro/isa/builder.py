"""Programmatic assembly builder.

Workloads in this repository are mostly written as literal assembly
text; for *generated* kernels (parameter sweeps, fuzzing, the custom
workloads of downstream users) a builder is less error-prone than
string concatenation.  :class:`AsmBuilder` accumulates text and data
sections with explicit methods — no operator magic — and hands the
result to the normal assembler.

Example::

    builder = AsmBuilder()
    arr = builder.dword("arr", [3, 1, 2])
    builder.label("_start")
    builder.emit("la a0, arr")
    with builder.loop("sum", trip_reg="t0", bound=3) as loop:
        builder.emit("slli t1, t0, 3")
        builder.emit("add t1, a0, t1")
        builder.emit("ld t2, 0(t1)")
        builder.emit("add a0, a0, zero")  # placeholder work
    builder.exit(code_reg="t2")
    program = builder.assemble(name="demo")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from .assembler import assemble as _assemble
from .program import Program


class AsmBuilder:
    """Accumulates an assembly source file section by section."""

    def __init__(self) -> None:
        self._data: List[str] = []
        self._text: List[str] = []
        self._label_counter = 0

    # -- data section ----------------------------------------------------

    def dword(self, label: str, values: Sequence[int],
              per_line: int = 8) -> str:
        """Emit a labelled ``.dword`` block; returns the label."""
        self._data.append(f"{label}:")
        values = list(values)
        if not values:
            self._data.append("    .dword 0")
        for start in range(0, len(values), per_line):
            chunk = ", ".join(str(v)
                              for v in values[start:start + per_line])
            self._data.append(f"    .dword {chunk}")
        return label

    def space(self, label: str, size_bytes: int) -> str:
        """Reserve zeroed storage; returns the label."""
        self._data.append(f"{label}:")
        self._data.append(f"    .space {size_bytes}")
        return label

    def align(self, power: int) -> None:
        self._data.append(f"    .align {power}")

    def asciz(self, label: str, text: str) -> str:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        self._data.append(f'{label}: .asciz "{escaped}"')
        return label

    # -- text section ----------------------------------------------------

    def emit(self, line: str) -> "AsmBuilder":
        """Append one instruction (or raw assembler line)."""
        self._text.append(f"    {line.strip()}")
        return self

    def comment(self, text: str) -> "AsmBuilder":
        self._text.append(f"    # {text}")
        return self

    def label(self, name: Optional[str] = None) -> str:
        """Place a label; generates a fresh name when none is given."""
        if name is None:
            name = f".L{self._label_counter}"
            self._label_counter += 1
        self._text.append(f"{name}:")
        return name

    def fresh_label(self) -> str:
        """Reserve a unique label name without placing it yet."""
        name = f".L{self._label_counter}"
        self._label_counter += 1
        return name

    @contextmanager
    def loop(self, name: str, trip_reg: str,
             bound: int) -> Iterator[str]:
        """A counted loop: ``for trip_reg in range(bound)``.

        The context body emits the loop's payload; the builder adds the
        init, increment, and back-edge around it.  ``trip_reg`` must not
        be clobbered by the body.
        """
        head = f"{name}_head"
        self.emit(f"li {trip_reg}, 0")
        self.label(head)
        yield head
        self.emit(f"addi {trip_reg}, {trip_reg}, 1")
        self.emit(f"li t6, {bound}")
        self.emit(f"blt {trip_reg}, t6, {head}")

    def call(self, target: str) -> "AsmBuilder":
        return self.emit(f"call {target}")

    def exit(self, code_reg: str = "a0", code: Optional[int] = None
             ) -> "AsmBuilder":
        """Emit the bare-metal exit convention (ecall with a7=93)."""
        if code is not None:
            self.emit(f"li a0, {code}")
        elif code_reg != "a0":
            self.emit(f"mv a0, {code_reg}")
        self.emit("li a7, 93")
        return self.emit("ecall")

    # -- output ------------------------------------------------------------

    def source(self) -> str:
        """Render the accumulated sections as assembly text."""
        parts: List[str] = []
        if self._data:
            parts.append(".data")
            parts.extend(self._data)
        parts.append(".text")
        parts.extend(self._text)
        return "\n".join(parts) + "\n"

    def assemble(self, name: str = "generated") -> Program:
        """Assemble the accumulated source."""
        return _assemble(self.source(), name=name)
