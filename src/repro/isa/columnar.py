"""Columnar dynamic-trace backend: struct-of-arrays storage + byte codec.

A functional trace is extremely redundant: every dynamic instruction is
one of a few hundred *static* instructions, and almost all of a
:class:`~repro.isa.dyn_trace.DynInst`'s fields (pc, class, register
dependencies, latency, flags, mnemonic) are static properties of that
instruction.  :class:`ColumnarTrace` therefore stores

- one :class:`StaticOp` record per *static* instruction, and
- four flat :mod:`array` columns per *dynamic* instruction — the static
  index, the effective memory address, the next committed pc, and the
  branch outcome — plus a sparse ``{dynamic index: value}`` map for the
  rare CSR writes.

That is O(static + columns) allocation instead of O(dynamic) Python
objects, and it gives the trace a natural wire format: :meth:`pack`
emits a compact byte string (JSON header + raw column bytes) that
:func:`unpack` restores, so cross-process handoff ships bytes instead
of pickled ``DynInst`` lists (``__reduce__`` routes pickling through
the codec).

The object view is *lazy*: ``trace[i]`` materializes a single
``DynInst`` on demand, and ``trace.instructions`` materializes (and
caches) the full list the first time a timing model asks for it.
Materialized records are bit-identical to what the interpreted
:class:`~repro.isa.executor.FunctionalExecutor` emits — pinned by
``tests/test_trace_compiler.py``.
"""

from __future__ import annotations

import hashlib
import json
import struct
from array import array
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple, Union

from .dyn_trace import DynInst
from .errors import ExecutionError
from .instructions import InstrClass

#: Codec magic + version; bump when the wire layout changes.
_MAGIC = b"RTRC1"

#: Window-codec magics: the shared static-op table blob and the
#: per-window column blob (see :meth:`ColumnarTrace.pack_static`,
#: :meth:`ColumnarTrace.pack_window`, :func:`unpack_window`).
_STATIC_MAGIC = b"RTRS1"
_WINDOW_MAGIC = b"RTRW1"

#: Column typecodes: static index, mem address, next pc, taken flag.
_SIDX_TYPE = "I"
_ADDR_TYPE = "Q"
_TAKEN_TYPE = "B"


class StaticOp(NamedTuple):
    """Per-static-instruction fields shared by all its dynamic instances."""

    pc: int
    cls: InstrClass
    dest: int
    srcs: Tuple[int, ...]
    latency: int
    mnemonic: str
    mem_width: int
    is_load: bool
    is_store: bool
    is_branch: bool
    is_fence: bool
    csr: int


class ColumnarTrace:
    """Committed-path trace stored as columns with lazy ``DynInst`` views.

    Duck-type compatible with :class:`~repro.isa.dyn_trace.DynamicTrace`
    everywhere the repo consumes traces: ``len``/iteration/indexing,
    ``instructions``, the summary helpers, and the end-of-run metadata
    attributes.
    """

    __slots__ = ("static_ops", "sidx", "mem_addr", "next_pc", "taken",
                 "csr_writes", "program_name", "exit_code", "halt_reason",
                 "final_int_regs", "instret", "_materialized",
                 "_timing_tables")

    def __init__(self, static_ops: Tuple[StaticOp, ...],
                 program_name: str = "program",
                 exit_code: int = 0,
                 halt_reason: str = "ecall",
                 final_int_regs: Optional[List[int]] = None) -> None:
        self.static_ops = static_ops
        self.sidx = array(_SIDX_TYPE)
        self.mem_addr = array(_ADDR_TYPE)
        self.next_pc = array(_ADDR_TYPE)
        self.taken = array(_TAKEN_TYPE)
        self.csr_writes: Dict[int, int] = {}
        self.program_name = program_name
        self.exit_code = exit_code
        self.halt_reason = halt_reason
        self.final_int_regs: List[int] = final_int_regs or []
        self.instret = 0
        self._materialized: Optional[List[DynInst]] = None
        self._timing_tables: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # container protocol / lazy materialization
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.sidx)

    def materialize_one(self, index: int) -> DynInst:
        """Build the ``DynInst`` view of dynamic instruction *index*."""
        op = self.static_ops[self.sidx[index]]
        return DynInst(
            index, op.pc, op.cls, op.dest, op.srcs, op.latency,
            self.next_pc[index], op.mnemonic,
            mem_addr=self.mem_addr[index], mem_width=op.mem_width,
            is_load=op.is_load, is_store=op.is_store,
            is_branch=op.is_branch, taken=bool(self.taken[index]),
            is_fence=op.is_fence, csr=op.csr,
            csr_write=self.csr_writes.get(index))

    def __getitem__(
            self, index: Union[int, slice]) -> Union[DynInst, List[DynInst]]:
        if self._materialized is not None:
            return self._materialized[index]
        if isinstance(index, slice):
            # List semantics: a slice yields a list of DynInst views,
            # exactly what slicing the materialized list would return.
            return [self.materialize_one(i)
                    for i in range(*index.indices(len(self.sidx)))]
        if index < 0:
            index += len(self.sidx)
        if not 0 <= index < len(self.sidx):
            raise IndexError(index)
        return self.materialize_one(index)

    def __iter__(self) -> Iterator[DynInst]:
        if self._materialized is not None:
            return iter(self._materialized)
        return (self.materialize_one(i) for i in range(len(self.sidx)))

    def timing_table(self, kind: str, builder) -> object:
        """Per-trace cache of compiled timing-descriptor tables.

        The columnar timing engines (``cores/descriptors.py``) compile
        the ``static_ops`` tuple into flat per-static-op arrays once per
        core family; *kind* keys the family (``"rocket"``/``"boom"``)
        and *builder* receives ``static_ops`` on a miss.  Tables are
        derived data: they live only on this in-memory instance and are
        deliberately not serialized (``pack()``/``__reduce__`` ship
        columns only; the receiving side recompiles on first use).
        """
        table = self._timing_tables.get(kind)
        if table is None:
            table = builder(self.static_ops)
            self._timing_tables[kind] = table
        return table

    @property
    def instructions(self) -> List[DynInst]:
        """The full object view, materialized once and cached.

        The timing models index this list every simulated cycle, so the
        one-shot materialization cost is paid only when a core actually
        replays the trace — pure functional producers/consumers (cache
        tiers, histograms, IPC shipping) never build it.
        """
        if self._materialized is None:
            build = self.materialize_one
            self._materialized = [build(i) for i in range(len(self.sidx))]
        return self._materialized

    # ------------------------------------------------------------------
    # window views
    # ------------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "ColumnarTrace":
        """A window view of dynamic instructions ``[start, stop)``.

        The view shares the ``static_ops`` tuple (and the compiled
        timing-descriptor table cache, which depends only on it) with
        the parent by reference; the four columns are array-sliced and
        the sparse CSR writes rebased to window-local indices.  End-of-
        run metadata (exit code, halt reason, final registers) is
        inherited from the parent — a window is a timing view, not an
        architectural run to completion.
        """
        n = len(self.sidx)
        if not 0 <= start <= stop <= n:
            raise ValueError(
                f"window [{start}:{stop}) out of range for trace of {n}")
        view = ColumnarTrace(
            self.static_ops,
            program_name=f"{self.program_name}[{start}:{stop}]",
            exit_code=self.exit_code,
            halt_reason=self.halt_reason,
            final_int_regs=list(self.final_int_regs))
        view.sidx = self.sidx[start:stop]
        view.mem_addr = self.mem_addr[start:stop]
        view.next_pc = self.next_pc[start:stop]
        view.taken = self.taken[start:stop]
        view.csr_writes = {i - start: v for i, v in self.csr_writes.items()
                           if start <= i < stop}
        view.instret = stop - start
        # Descriptor tables are a pure function of static_ops, shared by
        # identity above: share the cache dict too, so K windows of one
        # trace compile each core family's table at most once.
        view._timing_tables = self._timing_tables
        return view

    # ------------------------------------------------------------------
    # summary helpers (column-native: no materialization needed)
    # ------------------------------------------------------------------

    def class_histogram(self) -> Dict[InstrClass, int]:
        """Dynamic instruction counts per functional class."""
        static_counts: Dict[int, int] = {}
        for s in self.sidx:
            static_counts[s] = static_counts.get(s, 0) + 1
        histogram: Dict[InstrClass, int] = {}
        for s, count in static_counts.items():
            cls = self.static_ops[s].cls
            histogram[cls] = histogram.get(cls, 0) + count
        return histogram

    def branch_count(self) -> int:
        """Number of conditional branches in the trace."""
        ops = self.static_ops
        return sum(1 for s in self.sidx if ops[s].is_branch)

    def mispredictable_summary(self) -> Dict[str, int]:
        """Quick branch statistics used in reports."""
        ops = self.static_ops
        branches = 0
        taken = 0
        for s, t in zip(self.sidx, self.taken):
            if ops[s].is_branch:
                branches += 1
                taken += t
        return {"branches": branches, "taken": taken,
                "not_taken": branches - taken}

    # ------------------------------------------------------------------
    # byte codec
    # ------------------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize to a compact byte string (see :func:`unpack`)."""
        header = {
            "name": self.program_name,
            "exit_code": self.exit_code,
            "halt_reason": self.halt_reason,
            "final_int_regs": self.final_int_regs,
            "instret": self.instret,
            "n": len(self.sidx),
            "csr_writes": sorted(self.csr_writes.items()),
            "static": [
                [op.pc, op.cls.value, op.dest, list(op.srcs), op.latency,
                 op.mnemonic, op.mem_width, int(op.is_load),
                 int(op.is_store), int(op.is_branch), int(op.is_fence),
                 op.csr]
                for op in self.static_ops
            ],
        }
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return b"".join((
            _MAGIC, struct.pack("<I", len(head)), head,
            self.sidx.tobytes(), self.mem_addr.tobytes(),
            self.next_pc.tobytes(), self.taken.tobytes(),
        ))

    def pack_static(self) -> bytes:
        """Serialize only the shared static-op table + run metadata.

        The window shipping path sends this blob *once* per
        (trace, worker) and one small :meth:`pack_window` blob per
        window; :func:`unpack_window` reassembles a window trace,
        caching the parsed static table by content digest so K windows
        shipped to the same worker share one ``StaticOp`` tuple.
        """
        header = {
            "name": self.program_name,
            "exit_code": self.exit_code,
            "halt_reason": self.halt_reason,
            "final_int_regs": self.final_int_regs,
            "static": [
                [op.pc, op.cls.value, op.dest, list(op.srcs), op.latency,
                 op.mnemonic, op.mem_width, int(op.is_load),
                 int(op.is_store), int(op.is_branch), int(op.is_fence),
                 op.csr]
                for op in self.static_ops
            ],
        }
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return b"".join((_STATIC_MAGIC, struct.pack("<I", len(head)), head))

    def pack_window(self, start: int, stop: int) -> bytes:
        """Serialize the columns of window ``[start, stop)`` only.

        Pairs with :meth:`pack_static`; the blob carries the window
        bounds, the rebased CSR writes, and the raw column bytes of the
        window — O(window) bytes, independent of trace length.
        """
        n = len(self.sidx)
        if not 0 <= start <= stop <= n:
            raise ValueError(
                f"window [{start}:{stop}) out of range for trace of {n}")
        header = {
            "start": start,
            "stop": stop,
            "csr_writes": sorted(
                (i - start, v) for i, v in self.csr_writes.items()
                if start <= i < stop),
        }
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return b"".join((
            _WINDOW_MAGIC, struct.pack("<I", len(head)), head,
            self.sidx[start:stop].tobytes(),
            self.mem_addr[start:stop].tobytes(),
            self.next_pc[start:stop].tobytes(),
            self.taken[start:stop].tobytes(),
        ))

    def __reduce__(self):
        # Pickling ships the packed byte codec, never per-DynInst
        # object graphs: a trace crossing a process boundary costs
        # O(columns) bytes no matter how it is transported.
        return (unpack, (self.pack(),))


def unpack(data: bytes) -> ColumnarTrace:
    """Restore a :class:`ColumnarTrace` from :meth:`ColumnarTrace.pack`.

    Raises :class:`~repro.isa.errors.ExecutionError` on a damaged or
    truncated buffer, so cache tiers can treat corruption as a miss.
    """
    try:
        if data[:len(_MAGIC)] != _MAGIC:
            raise ValueError("bad magic")
        offset = len(_MAGIC)
        (head_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        header = json.loads(data[offset:offset + head_len].decode("utf-8"))
        offset += head_len
        static_ops = tuple(
            StaticOp(pc, InstrClass(cls), dest, tuple(srcs), latency,
                     mnemonic, mem_width, bool(il), bool(st), bool(br),
                     bool(fe), csr)
            for pc, cls, dest, srcs, latency, mnemonic, mem_width,
            il, st, br, fe, csr in header["static"])
        trace = ColumnarTrace(
            static_ops, program_name=header["name"],
            exit_code=header["exit_code"],
            halt_reason=header["halt_reason"],
            final_int_regs=list(header["final_int_regs"]))
        n = header["n"]
        for column, typecode in (
                (trace.sidx, _SIDX_TYPE), (trace.mem_addr, _ADDR_TYPE),
                (trace.next_pc, _ADDR_TYPE), (trace.taken, _TAKEN_TYPE)):
            width = array(typecode).itemsize * n
            column.frombytes(data[offset:offset + width])
            offset += width
        if any(len(c) != n for c in (trace.sidx, trace.mem_addr,
                                     trace.next_pc, trace.taken)):
            raise ValueError("truncated columns")
        trace.csr_writes = {int(i): int(v) for i, v in header["csr_writes"]}
        trace.instret = header["instret"]
        return trace
    except ExecutionError:
        raise
    except Exception as exc:  # noqa: BLE001 - any damage is one error class
        raise ExecutionError(
            f"cannot unpack columnar trace: {type(exc).__name__}: {exc}"
        ) from exc


#: Worker-side cache of parsed static blobs, keyed by content digest:
#: ``digest -> (static_ops, metadata header, shared timing-table dict)``.
#: Every window of one trace unpacked in the same process shares one
#: ``StaticOp`` tuple *and* one compiled descriptor-table cache.
_STATIC_CACHE: Dict[str, Tuple[Tuple[StaticOp, ...], Dict[str, object],
                               Dict[str, object]]] = {}


def _parse_static(static_blob: bytes):
    digest = hashlib.sha256(static_blob).hexdigest()
    hit = _STATIC_CACHE.get(digest)
    if hit is not None:
        return hit
    if static_blob[:len(_STATIC_MAGIC)] != _STATIC_MAGIC:
        raise ValueError("bad static-blob magic")
    offset = len(_STATIC_MAGIC)
    (head_len,) = struct.unpack_from("<I", static_blob, offset)
    offset += 4
    header = json.loads(
        static_blob[offset:offset + head_len].decode("utf-8"))
    static_ops = tuple(
        StaticOp(pc, InstrClass(cls), dest, tuple(srcs), latency,
                 mnemonic, mem_width, bool(il), bool(st), bool(br),
                 bool(fe), csr)
        for pc, cls, dest, srcs, latency, mnemonic, mem_width,
        il, st, br, fe, csr in header["static"])
    hit = (static_ops, header, {})
    _STATIC_CACHE[digest] = hit
    return hit


def unpack_window(static_blob: bytes, window_blob: bytes) -> ColumnarTrace:
    """Reassemble one window trace from the two-part window codec.

    Byte-for-byte equivalent to
    ``trace.slice(start, stop)`` of the originating trace (pinned by
    ``tests/test_columnar_trace.py``): same program name, columns, CSR
    writes, and metadata.  The parsed static table is cached per blob
    digest, so windows of one trace shipped to the same worker share a
    single ``StaticOp`` tuple and compiled timing-table cache.

    Raises :class:`~repro.isa.errors.ExecutionError` on damage, like
    :func:`unpack`.
    """
    try:
        static_ops, meta, timing_tables = _parse_static(static_blob)
        if window_blob[:len(_WINDOW_MAGIC)] != _WINDOW_MAGIC:
            raise ValueError("bad window-blob magic")
        offset = len(_WINDOW_MAGIC)
        (head_len,) = struct.unpack_from("<I", window_blob, offset)
        offset += 4
        header = json.loads(
            window_blob[offset:offset + head_len].decode("utf-8"))
        offset += head_len
        start, stop = header["start"], header["stop"]
        n = stop - start
        trace = ColumnarTrace(
            static_ops,
            program_name=f"{meta['name']}[{start}:{stop}]",
            exit_code=meta["exit_code"],
            halt_reason=meta["halt_reason"],
            final_int_regs=list(meta["final_int_regs"]))
        for column, typecode in (
                (trace.sidx, _SIDX_TYPE), (trace.mem_addr, _ADDR_TYPE),
                (trace.next_pc, _ADDR_TYPE), (trace.taken, _TAKEN_TYPE)):
            width = array(typecode).itemsize * n
            column.frombytes(window_blob[offset:offset + width])
            offset += width
        if any(len(c) != n for c in (trace.sidx, trace.mem_addr,
                                     trace.next_pc, trace.taken)):
            raise ValueError("truncated window columns")
        trace.csr_writes = {int(i): int(v) for i, v in header["csr_writes"]}
        trace.instret = n
        trace._timing_tables = timing_tables
        return trace
    except ExecutionError:
        raise
    except Exception as exc:  # noqa: BLE001 - any damage is one error class
        raise ExecutionError(
            f"cannot unpack window trace: {type(exc).__name__}: {exc}"
        ) from exc
