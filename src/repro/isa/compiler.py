"""Trace compiler: closure-compiled functional execution.

The interpreted :class:`~repro.isa.executor.FunctionalExecutor` re-reads
instruction fields and walks chained string-mnemonic dispatch for every
*dynamic* instruction.  :func:`compile_program` does all of that work
once per *static* instruction instead: each instruction is pre-decoded
into a specialized zero-argument closure with its operand indices,
immediates, memory width, semantic handler, and control-flow successors
pre-bound (classic threaded-code interpretation).  Executing the program
is then a tight ``idx = ops[idx]()`` loop, and the closures append
directly into the struct-of-arrays columns of a
:class:`~repro.isa.columnar.ColumnarTrace`.

Two layers keep compilation reusable and runs independent:

- ``compile_program`` produces per-instruction *builders* (validated
  once per program — every mnemonic, operand shape, and semantic handler
  is checked at compile time, so bad programs fail at load, not
  mid-run);
- each run binds the builders to fresh architectural state (registers,
  memory, CSRs) and a fresh output trace, yielding the actual op
  closures.

The interpreted executor remains the reference oracle:
``tests/test_trace_compiler.py`` pins compiled and interpreted traces
bit-identical across the full workload registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .columnar import ColumnarTrace, StaticOp
from .errors import ExecutionError
from .executor import (DEFAULT_MAX_INSTRUCTIONS, SYSCALL_EXIT,
                       FunctionalExecutor, _bits2f, _f2bits, _sext,
                       _to_signed64)
from .instructions import (InstrClass, Instruction, MEM_WIDTHS, OPCODES,
                           OpSpec, UNSIGNED_LOADS)
from .memory import SparseMemory
from .program import INSTR_BYTES, Program

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: Halt sentinels returned by op closures (normal returns are >= 0;
#: any index >= len(program) means "fell off the text section").
_HALT_ECALL = -2
_HALT_EBREAK = -3

#: AMO mnemonics that count as loads / stores in the DynInst flags.
_AMO_LOADS = frozenset({"lr.d", "amoadd.d", "amoswap.d"})
_AMO_STORES = frozenset({"sc.d", "amoadd.d", "amoswap.d"})


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        return a
    return a - _sdiv(a, b) * b


# ----------------------------------------------------------------------
# Semantic tables: one pre-bindable value function per mnemonic.
# Signature (a, b, imm, pc) with a/b the unsigned rs1/rs2 values; the
# generated op masks the result to 64 bits, mirroring the interpreter's
# ``_write_int``.

_ALU_EVAL: Dict[str, Callable[[int, int, int, int], int]] = {
    "add": lambda a, b, imm, pc: a + b,
    "sub": lambda a, b, imm, pc: a - b,
    "and": lambda a, b, imm, pc: a & b,
    "or": lambda a, b, imm, pc: a | b,
    "xor": lambda a, b, imm, pc: a ^ b,
    "sll": lambda a, b, imm, pc: a << (b & 63),
    "srl": lambda a, b, imm, pc: a >> (b & 63),
    "sra": lambda a, b, imm, pc: _to_signed64(a) >> (b & 63),
    "slt": lambda a, b, imm, pc: int(_to_signed64(a) < _to_signed64(b)),
    "sltu": lambda a, b, imm, pc: int(a < b),
    "addi": lambda a, b, imm, pc: a + imm,
    "andi": lambda a, b, imm, pc: a & (imm & _U64),
    "ori": lambda a, b, imm, pc: a | (imm & _U64),
    "xori": lambda a, b, imm, pc: a ^ (imm & _U64),
    "slti": lambda a, b, imm, pc: int(_to_signed64(a) < imm),
    "sltiu": lambda a, b, imm, pc: int(a < (imm & _U64)),
    "slli": lambda a, b, imm, pc: a << (imm & 63),
    "srli": lambda a, b, imm, pc: a >> (imm & 63),
    "srai": lambda a, b, imm, pc: _to_signed64(a) >> (imm & 63),
    "addw": lambda a, b, imm, pc: _sext(a + b, 32),
    "subw": lambda a, b, imm, pc: _sext(a - b, 32),
    "sllw": lambda a, b, imm, pc: _sext(a << (b & 31), 32),
    "srlw": lambda a, b, imm, pc: _sext((a & _U32) >> (b & 31), 32),
    "sraw": lambda a, b, imm, pc: _sext(_sext(a, 32) >> (b & 31), 32),
    "addiw": lambda a, b, imm, pc: _sext(a + imm, 32),
    "slliw": lambda a, b, imm, pc: _sext(a << (imm & 31), 32),
    "srliw": lambda a, b, imm, pc: _sext((a & _U32) >> (imm & 31), 32),
    "sraiw": lambda a, b, imm, pc: _sext(_sext(a, 32) >> (imm & 31), 32),
    "lui": lambda a, b, imm, pc: imm << 12,
    "auipc": lambda a, b, imm, pc: pc + (imm << 12),
}

_MUL_EVAL: Dict[str, Callable[[int, int], int]] = {
    "mul": lambda a, b: _to_signed64(a) * _to_signed64(b),
    "mulw": lambda a, b: _sext(_to_signed64(a) * _to_signed64(b), 32),
    "mulh": lambda a, b: (_to_signed64(a) * _to_signed64(b)) >> 64,
    "mulhu": lambda a, b: (a * b) >> 64,
    "mulhsu": lambda a, b: (_to_signed64(a) * b) >> 64,
}

_DIV_EVAL: Dict[str, Callable[[int, int], int]] = {
    "div": lambda a, b: _sdiv(_to_signed64(a), _to_signed64(b)),
    "divu": lambda a, b: _U64 if b == 0 else a // b,
    "rem": lambda a, b: _srem(_to_signed64(a), _to_signed64(b)),
    "remu": lambda a, b: a if b == 0 else a % b,
    "divw": lambda a, b: _sext(_sdiv(_sext(a, 32), _sext(b, 32)), 32),
    "divuw": lambda a, b: _sext(
        _U32 if b & _U32 == 0 else (a & _U32) // (b & _U32), 32),
    "remw": lambda a, b: _sext(_srem(_sext(a, 32), _sext(b, 32)), 32),
    "remuw": lambda a, b: _sext(
        a & _U32 if b & _U32 == 0 else (a & _U32) % (b & _U32), 32),
}

_BRANCH_EVAL: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _to_signed64(a) < _to_signed64(b),
    "bge": lambda a, b: _to_signed64(a) >= _to_signed64(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


class CompileError(ExecutionError):
    """A program failed validation at :func:`compile_program` time."""


def _static_op(instr: Instruction, spec: OpSpec) -> StaticOp:
    """The per-static-instruction record shared by all dynamic instances."""
    cls = spec.cls
    m = instr.mnemonic
    if cls in (InstrClass.LOAD, InstrClass.STORE):
        mem_width = MEM_WIDTHS[m]
    elif cls in (InstrClass.FP_LOAD, InstrClass.FP_STORE, InstrClass.AMO):
        mem_width = 8
    else:
        mem_width = 0
    dest, srcs = FunctionalExecutor._deps(instr)
    return StaticOp(
        pc=instr.addr, cls=cls, dest=dest, srcs=srcs, latency=spec.latency,
        mnemonic=m, mem_width=mem_width,
        is_load=(cls in (InstrClass.LOAD, InstrClass.FP_LOAD)
                 or m in _AMO_LOADS),
        is_store=(cls in (InstrClass.STORE, InstrClass.FP_STORE)
                  or m in _AMO_STORES),
        is_branch=(cls == InstrClass.BRANCH),
        is_fence=(cls == InstrClass.FENCE),
        csr=instr.csr if cls == InstrClass.CSR else -1)


# ----------------------------------------------------------------------
# Per-class builders.  Each returns ``build(x, f, mem, csrs, trace) ->
# op`` where ``op()`` executes one dynamic instruction, appends its
# column entries, and returns the next static index (or a halt
# sentinel / out-of-range index).


def _compile_one(instr: Instruction, spec: OpSpec, idx: int, n: int,
                 index_map: Dict[int, int]):
    m = instr.mnemonic
    cls = spec.cls
    rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2
    imm, pc = instr.imm, instr.addr
    nxt = idx + 1
    npc = pc + INSTR_BYTES

    def bad(detail: str) -> CompileError:
        return CompileError(
            f"cannot compile pc {pc:#x}: {detail} ({m!r})")

    if cls == InstrClass.ALU:
        if m == "addi":
            def build(x, f, mem, csrs, t,
                      rs1=rs1, rd=rd, imm=imm, nxt=nxt, npc=npc, idx=idx):
                es, em, en, et = (t.sidx.append, t.mem_addr.append,
                                  t.next_pc.append, t.taken.append)

                def op():
                    if rd:
                        x[rd] = (x[rs1] + imm) & _U64
                    es(idx); em(0); en(npc); et(0)
                    return nxt
                return op
            return build
        if m == "add":
            def build(x, f, mem, csrs, t,
                      rs1=rs1, rs2=rs2, rd=rd, nxt=nxt, npc=npc, idx=idx):
                es, em, en, et = (t.sidx.append, t.mem_addr.append,
                                  t.next_pc.append, t.taken.append)

                def op():
                    if rd:
                        x[rd] = (x[rs1] + x[rs2]) & _U64
                    es(idx); em(0); en(npc); et(0)
                    return nxt
                return op
            return build
        fn = _ALU_EVAL.get(m)
        if fn is None:
            raise bad("no ALU semantic handler")

        def build(x, f, mem, csrs, t,
                  fn=fn, rs1=rs1, rs2=rs2, rd=rd, imm=imm, pc=pc,
                  nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                if rd:
                    x[rd] = fn(x[rs1], x[rs2], imm, pc) & _U64
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build

    if cls in (InstrClass.MUL, InstrClass.DIV):
        fn = (_MUL_EVAL if cls == InstrClass.MUL else _DIV_EVAL).get(m)
        if fn is None:
            raise bad("no MUL/DIV semantic handler")

        def build(x, f, mem, csrs, t,
                  fn=fn, rs1=rs1, rs2=rs2, rd=rd, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                if rd:
                    x[rd] = fn(x[rs1], x[rs2]) & _U64
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.LOAD:
        width = MEM_WIDTHS[m]
        unsigned = m in UNSIGNED_LOADS

        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, imm=imm, width=width, unsigned=unsigned,
                  nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)
            read = mem.read if unsigned else mem.read_signed

            def op():
                addr = (x[rs1] + imm) & _U64
                if rd:
                    x[rd] = read(addr, width) & _U64
                else:
                    read(addr, width)
                es(idx); em(addr); en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.STORE:
        width = MEM_WIDTHS[m]

        def build(x, f, mem, csrs, t,
                  rs1=rs1, rs2=rs2, imm=imm, width=width,
                  nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)
            write = mem.write

            def op():
                addr = (x[rs1] + imm) & _U64
                write(addr, x[rs2], width)
                es(idx); em(addr); en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.BRANCH:
        fn = _BRANCH_EVAL.get(m)
        if fn is None:
            raise bad("no branch semantic handler")
        # Branch targets are absolute byte addresses resolved by the
        # assembler; resolve them to static indices once, here.  A
        # target outside the text section ends the run (fell-off).
        t_idx = index_map.get(imm, n)

        def build(x, f, mem, csrs, t,
                  fn=fn, rs1=rs1, rs2=rs2, t_idx=t_idx, t_npc=imm,
                  nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                es(idx); em(0)
                if fn(x[rs1], x[rs2]):
                    en(t_npc); et(1)
                    return t_idx
                en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.JUMP:
        t_idx = index_map.get(imm, n)
        link = npc & _U64

        def build(x, f, mem, csrs, t,
                  rd=rd, link=link, t_idx=t_idx, t_npc=imm, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                if rd:
                    x[rd] = link
                es(idx); em(0); en(t_npc); et(1)
                return t_idx
            return op
        return build

    if cls == InstrClass.JUMP_REG:
        link = npc & _U64

        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, imm=imm, link=link,
                  index_map=index_map, n=n, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)
            lookup = index_map.get

            def op():
                target = (x[rs1] + imm) & ~1 & _U64
                if rd:
                    x[rd] = link
                es(idx); em(0); en(target); et(1)
                return lookup(target, n)
            return op
        return build

    if cls == InstrClass.FENCE:
        def build(x, f, mem, csrs, t, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.SYSTEM:
        if m == "ecall":
            def build(x, f, mem, csrs, t, nxt=nxt, npc=npc, idx=idx):
                es, em, en, et = (t.sidx.append, t.mem_addr.append,
                                  t.next_pc.append, t.taken.append)

                def op():
                    es(idx); em(0); en(npc); et(0)
                    if x[17] == SYSCALL_EXIT:  # a7
                        return _HALT_ECALL
                    return nxt
                return op
            return build
        if m == "ebreak":
            def build(x, f, mem, csrs, t, npc=npc, idx=idx):
                es, em, en, et = (t.sidx.append, t.mem_addr.append,
                                  t.next_pc.append, t.taken.append)

                def op():
                    es(idx); em(0); en(npc); et(0)
                    return _HALT_EBREAK
                return op
            return build
        raise bad("no SYSTEM semantic handler")

    if cls == InstrClass.CSR:
        return _compile_csr(instr, idx, nxt, npc, bad)

    if cls in (InstrClass.FP, InstrClass.FP_DIV):
        return _compile_fp(instr, idx, nxt, npc, bad)

    if cls == InstrClass.FP_LOAD:
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, imm=imm, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)
            read = mem.read

            def op():
                addr = (x[rs1] + imm) & _U64
                f[rd] = _bits2f(read(addr, 8))
                es(idx); em(addr); en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.FP_STORE:
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rs2=rs2, imm=imm, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)
            write = mem.write

            def op():
                addr = (x[rs1] + imm) & _U64
                write(addr, _f2bits(f[rs2]), 8)
                es(idx); em(addr); en(npc); et(0)
                return nxt
            return op
        return build

    if cls == InstrClass.AMO:
        return _compile_amo(instr, idx, nxt, npc, bad)

    raise bad(f"no compiler for class {cls}")


def _compile_csr(instr: Instruction, idx: int, nxt: int, npc: int, bad):
    m = instr.mnemonic
    rd, rs1, imm, ca = instr.rd, instr.rs1, instr.imm, instr.csr
    # Whether the op writes the CSR is static for csrrs/csrrc (rs1
    # register index == x0 means pure read) and csrr?i (zero imm means
    # pure read) — mirror the interpreter's conditions exactly.
    if m == "csrrw":
        def value(old, a):
            return a & _U64
        writes = True
    elif m == "csrrs":
        def value(old, a):
            return (old | a) & _U64
        writes = rs1 != 0
    elif m == "csrrc":
        def value(old, a):
            return (old & ~a) & _U64
        writes = rs1 != 0
    elif m == "csrrwi":
        def value(old, a):
            return imm & 0x1F
        writes = True
    elif m == "csrrsi":
        def value(old, a):
            return (old | (imm & 0x1F)) & _U64
        writes = bool(imm)
    elif m == "csrrci":
        def value(old, a):
            return (old & ~(imm & 0x1F)) & _U64
        writes = bool(imm)
    else:
        raise bad("no CSR semantic handler")

    def build(x, f, mem, csrs, t,
              value=value, writes=writes, rs1=rs1, rd=rd, ca=ca,
              nxt=nxt, npc=npc, idx=idx):
        s = t.sidx
        es, em, en, et = (s.append, t.mem_addr.append,
                          t.next_pc.append, t.taken.append)
        csrw = t.csr_writes
        get = csrs.get

        def op():
            old = get(ca, 0)
            if writes:
                w = value(old, x[rs1])
                csrs[ca] = w
                csrw[len(s)] = w
            if rd:
                x[rd] = old
            es(idx); em(0); en(npc); et(0)
            return nxt
        return op
    return build


def _compile_fp(instr: Instruction, idx: int, nxt: int, npc: int, bad):
    m = instr.mnemonic
    rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2

    # FP->FP arithmetic: f[rd] = fn(f[rs1], f[rs2]).
    fp_bin = {
        "fadd.d": lambda a, b: a + b,
        "fsub.d": lambda a, b: a - b,
        "fmul.d": lambda a, b: a * b,
        "fdiv.d": lambda a, b: a / b if b else float("inf"),
        "fmin.d": min,
        "fmax.d": max,
    }.get(m)
    if fp_bin is not None:
        def build(x, f, mem, csrs, t,
                  fn=fp_bin, rs1=rs1, rs2=rs2, rd=rd,
                  nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                f[rd] = fn(f[rs1], f[rs2])
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build

    # FP comparisons: integer rd = fn(f[rs1], f[rs2]).
    fp_cmp = {
        "feq.d": lambda a, b: int(a == b),
        "flt.d": lambda a, b: int(a < b),
        "fle.d": lambda a, b: int(a <= b),
    }.get(m)
    if fp_cmp is not None:
        def build(x, f, mem, csrs, t,
                  fn=fp_cmp, rs1=rs1, rs2=rs2, rd=rd,
                  nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                if rd:
                    x[rd] = fn(f[rs1], f[rs2])
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build

    # FP unaries and moves/converts: each has its own data flow.
    if m == "fsqrt.d":
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                value = f[rs1]
                f[rd] = value ** 0.5 if value >= 0 else float("nan")
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build
    if m == "fmv.d.x":
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                f[rd] = _bits2f(x[rs1])
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build
    if m == "fmv.x.d":
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                if rd:
                    x[rd] = _f2bits(f[rs1])
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build
    if m == "fcvt.d.l":
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                f[rd] = float(_to_signed64(x[rs1]))
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build
    if m == "fcvt.l.d":
        def build(x, f, mem, csrs, t,
                  rs1=rs1, rd=rd, nxt=nxt, npc=npc, idx=idx):
            es, em, en, et = (t.sidx.append, t.mem_addr.append,
                              t.next_pc.append, t.taken.append)

            def op():
                if rd:
                    x[rd] = int(f[rs1]) & _U64
                es(idx); em(0); en(npc); et(0)
                return nxt
            return op
        return build
    raise bad("no FP semantic handler")


def _compile_amo(instr: Instruction, idx: int, nxt: int, npc: int, bad):
    m = instr.mnemonic
    rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2
    if m not in ("amoadd.d", "amoswap.d", "lr.d", "sc.d"):
        raise bad("no AMO semantic handler")

    def build(x, f, mem, csrs, t,
              m=m, rs1=rs1, rs2=rs2, rd=rd, nxt=nxt, npc=npc, idx=idx):
        es, em, en, et = (t.sidx.append, t.mem_addr.append,
                          t.next_pc.append, t.taken.append)
        read, write = mem.read, mem.write

        if m == "amoadd.d":
            def op():
                addr = x[rs1] & _U64
                old = read(addr, 8)
                write(addr, (old + x[rs2]) & _U64, 8)
                if rd:
                    x[rd] = old
                es(idx); em(addr); en(npc); et(0)
                return nxt
        elif m == "amoswap.d":
            def op():
                addr = x[rs1] & _U64
                old = read(addr, 8)
                write(addr, x[rs2], 8)
                if rd:
                    x[rd] = old
                es(idx); em(addr); en(npc); et(0)
                return nxt
        elif m == "lr.d":
            def op():
                addr = x[rs1] & _U64
                if rd:
                    x[rd] = read(addr, 8)
                else:
                    read(addr, 8)
                es(idx); em(addr); en(npc); et(0)
                return nxt
        else:  # sc.d: always succeeds in this model
            def op():
                addr = x[rs1] & _U64
                read(addr, 8)
                write(addr, x[rs2], 8)
                if rd:
                    x[rd] = 0
                es(idx); em(addr); en(npc); et(0)
                return nxt
        return op
    return build


# ----------------------------------------------------------------------


class CompiledProgram:
    """A program pre-decoded into per-instruction op builders."""

    __slots__ = ("program", "builders", "static_ops", "entry_index")

    def __init__(self, program: Program, builders: Tuple,
                 static_ops: Tuple[StaticOp, ...], entry_index: int) -> None:
        self.program = program
        self.builders = builders
        self.static_ops = static_ops
        self.entry_index = entry_index

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            stack_top: int = 0x8800_0000) -> ColumnarTrace:
        """Execute with fresh state and return the columnar trace."""
        return CompiledExecutor(
            self, max_instructions=max_instructions,
            stack_top=stack_top).run()


def compile_program(program: Program, cache: bool = True) -> CompiledProgram:
    """Pre-decode every static instruction of *program* into a closure.

    Validation is eager: every mnemonic must have a spec in
    :data:`~repro.isa.instructions.OPCODES` *and* a semantic handler
    here, so a bad program raises :class:`CompileError` (an
    :class:`~repro.isa.errors.ExecutionError`) at load time instead of
    mid-run.  The compiled form is cached on the program object.
    """
    if cache:
        cached = getattr(program, "_compiled", None)
        if cached is not None:
            return cached
    n = len(program.instructions)
    index_map = {instr.addr: i for i, instr in enumerate(program.instructions)}
    builders: List = []
    static_ops: List[StaticOp] = []
    for idx, instr in enumerate(program.instructions):
        spec = OPCODES.get(instr.mnemonic)
        if spec is None:
            raise CompileError(
                f"cannot compile pc {instr.addr:#x}: unknown mnemonic "
                f"{instr.mnemonic!r}")
        static_ops.append(_static_op(instr, spec))
        builders.append(_compile_one(instr, spec, idx, n, index_map))
    compiled = CompiledProgram(program, tuple(builders), tuple(static_ops),
                               index_map.get(program.entry, n))
    if cache:
        program._compiled = compiled
    return compiled


class CompiledExecutor:
    """One run of a :class:`CompiledProgram` over fresh state."""

    def __init__(self, compiled: CompiledProgram,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 stack_top: int = 0x8800_0000) -> None:
        self.compiled = compiled
        self.max_instructions = max_instructions
        program = compiled.program
        self.memory = SparseMemory(program.data)
        self.int_regs: List[int] = [0] * 32
        self.fp_regs: List[float] = [0.0] * 32
        self.csrs: Dict[int, int] = {}
        self.int_regs[2] = stack_top  # sp

    def run(self) -> ColumnarTrace:
        compiled = self.compiled
        program = compiled.program
        trace = ColumnarTrace(compiled.static_ops,
                              program_name=program.name)
        x, f = self.int_regs, self.fp_regs
        mem, csrs = self.memory, self.csrs
        ops = [build(x, f, mem, csrs, trace) for build in compiled.builders]
        n = len(ops)
        budget = self.max_instructions
        idx = compiled.entry_index
        count = 0
        while 0 <= idx < n:
            if count >= budget:
                raise ExecutionError(
                    f"instruction budget exceeded "
                    f"({budget}) in {program.name!r}")
            count += 1
            idx = ops[idx]()
        if idx == _HALT_ECALL:
            trace.halt_reason = "ecall"
            trace.exit_code = _to_signed64(x[10])  # a0
        elif idx == _HALT_EBREAK:
            trace.halt_reason = "ebreak"
        else:
            trace.halt_reason = "fell-off-text"
        trace.final_int_regs = list(x)
        trace.instret = len(trace.sidx)
        return trace


def execute_compiled(program: Program,
                     max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
                     ) -> ColumnarTrace:
    """Closure-compiled twin of :func:`~repro.isa.executor.execute`."""
    return compile_program(program).run(max_instructions=max_instructions)
