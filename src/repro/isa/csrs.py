"""CSR address map for the Zicsr subset used by the PMU harness.

Addresses follow the RISC-V privileged specification.  The performance
monitoring CSRs (``mcycle``, ``minstret``, ``mhpmcounter3..31`` and their
``mhpmevent`` selectors, plus ``mcountinhibit``) are the ones Icicle's
software harness programs in its four-step setup (§IV-D).
"""

from __future__ import annotations

from typing import Dict

MCYCLE = 0xB00
MINSTRET = 0xB02
MHPMCOUNTER_BASE = 0xB03          # mhpmcounter3 .. mhpmcounter31
MHPMEVENT_BASE = 0x323            # mhpmevent3 .. mhpmevent31
MCOUNTINHIBIT = 0x320
MSTATUS = 0x300
MCOUNTEREN = 0x306
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02
HPMCOUNTER_BASE = 0xC03           # user-level shadows

NUM_HPM_COUNTERS = 29             # counters 3..31 -> 29 programmable + cycle/instret
FIRST_HPM_INDEX = 3
LAST_HPM_INDEX = 31


def _build_names() -> Dict[str, int]:
    names = {
        "mcycle": MCYCLE,
        "minstret": MINSTRET,
        "mcountinhibit": MCOUNTINHIBIT,
        "mstatus": MSTATUS,
        "mcounteren": MCOUNTEREN,
        "cycle": CYCLE,
        "time": TIME,
        "instret": INSTRET,
    }
    for i in range(FIRST_HPM_INDEX, LAST_HPM_INDEX + 1):
        names[f"mhpmcounter{i}"] = MHPMCOUNTER_BASE + (i - FIRST_HPM_INDEX)
        names[f"mhpmevent{i}"] = MHPMEVENT_BASE + (i - FIRST_HPM_INDEX)
        names[f"hpmcounter{i}"] = HPMCOUNTER_BASE + (i - FIRST_HPM_INDEX)
    return names


#: CSR name -> 12-bit address, as accepted by the assembler.
CSR_ADDRS: Dict[str, int] = _build_names()

#: Reverse map for disassembly/reporting.
CSR_NAMES: Dict[int, str] = {addr: name for name, addr in CSR_ADDRS.items()}


def mhpmcounter_addr(index: int) -> int:
    """CSR address of ``mhpmcounter<index>`` (index in 3..31)."""
    if not FIRST_HPM_INDEX <= index <= LAST_HPM_INDEX:
        raise ValueError(f"hpm counter index out of range: {index}")
    return MHPMCOUNTER_BASE + (index - FIRST_HPM_INDEX)


def mhpmevent_addr(index: int) -> int:
    """CSR address of ``mhpmevent<index>`` (index in 3..31)."""
    if not FIRST_HPM_INDEX <= index <= LAST_HPM_INDEX:
        raise ValueError(f"hpm event index out of range: {index}")
    return MHPMEVENT_BASE + (index - FIRST_HPM_INDEX)
