"""Dynamic instruction trace produced by the functional executor.

The core timing models are *trace driven* (DESIGN.md §4): the program is
executed functionally once, and the resulting sequence of
:class:`DynInst` records — committed-path instructions with resolved
branch outcomes and memory addresses — is replayed through the Rocket and
BOOM cycle-level models.  Wrong-path work is modelled inside the timing
models with phantom µops, so the trace only ever contains the committed
path.

Register identifiers are unified across the integer and FP files:
integer register ``xN`` is id ``N`` and FP register ``fN`` is id
``32 + N``.  A destination id of ``-1`` means "writes nothing" (including
writes to ``x0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import InstrClass

NO_REG = -1
FP_REG_BASE = 32


class DynInst:
    """One committed dynamic instruction.

    Attributes:
        index: position in the dynamic trace.
        pc: byte address of the instruction.
        cls: functional-unit class.
        dest: unified destination register id, or ``NO_REG``.
        srcs: tuple of unified source register ids (x0 excluded).
        latency: execution latency in cycles (memory classes get their
            latency from the cache model instead).
        mem_addr / mem_width: effective address and size for memory ops.
        is_load / is_store: memory direction flags (AMOs set both).
        is_branch: conditional branch flag.
        taken: branch outcome (meaningful when ``is_branch``); direct and
            indirect jumps are always taken.
        next_pc: address of the next committed instruction.
        is_fence: pipeline-draining fence flag.
        csr: CSR address for Zicsr instructions, else ``-1``.
        csr_write: value written to the CSR, or ``None`` for pure reads.
        mnemonic: original mnemonic (reporting/debug only).
    """

    __slots__ = ("index", "pc", "cls", "dest", "srcs", "latency", "mem_addr",
                 "mem_width", "is_load", "is_store", "is_branch", "taken",
                 "next_pc", "is_fence", "csr", "csr_write", "mnemonic",
                 "is_mem", "is_control_flow")

    def __init__(self, index: int, pc: int, cls: InstrClass, dest: int,
                 srcs: Tuple[int, ...], latency: int, next_pc: int,
                 mnemonic: str, mem_addr: int = 0, mem_width: int = 0,
                 is_load: bool = False, is_store: bool = False,
                 is_branch: bool = False, taken: bool = False,
                 is_fence: bool = False, csr: int = -1,
                 csr_write: Optional[int] = None) -> None:
        self.index = index
        self.pc = pc
        self.cls = cls
        self.dest = dest
        self.srcs = srcs
        self.latency = latency
        self.next_pc = next_pc
        self.mnemonic = mnemonic
        self.mem_addr = mem_addr
        self.mem_width = mem_width
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.taken = taken
        self.is_fence = is_fence
        self.csr = csr
        self.csr_write = csr_write
        # Derived flags are precomputed: the core models read them every
        # simulated cycle, so property-call overhead is measurable.
        self.is_mem = is_load or is_store
        self.is_control_flow = cls in (InstrClass.BRANCH, InstrClass.JUMP,
                                       InstrClass.JUMP_REG)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DynInst(#{self.index} pc={self.pc:#x} {self.mnemonic}"
                f" next={self.next_pc:#x})")


@dataclass
class DynamicTrace:
    """Committed-path execution trace plus end-of-run summary state."""

    instructions: List[DynInst]
    program_name: str = "program"
    exit_code: int = 0
    halt_reason: str = "ecall"
    final_int_regs: List[int] = field(default_factory=list)
    instret: int = 0

    def __post_init__(self) -> None:
        if not self.instret:
            self.instret = len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> DynInst:
        return self.instructions[index]

    def class_histogram(self) -> Dict[InstrClass, int]:
        """Return dynamic instruction counts per functional class."""
        histogram: Dict[InstrClass, int] = {}
        for inst in self.instructions:
            histogram[inst.cls] = histogram.get(inst.cls, 0) + 1
        return histogram

    def branch_count(self) -> int:
        """Number of conditional branches in the trace."""
        return sum(1 for inst in self.instructions if inst.is_branch)

    def mispredictable_summary(self) -> Dict[str, int]:
        """Quick branch statistics used in reports."""
        branches = [inst for inst in self.instructions if inst.is_branch]
        taken = sum(1 for inst in branches if inst.taken)
        return {"branches": len(branches), "taken": taken,
                "not_taken": len(branches) - taken}
