"""Binary encoding of the RV64 subset (RISC-V ISA manual formats).

The assembler's :class:`~repro.isa.instructions.Instruction` objects are
semantic; this module lowers them to (and lifts them from) the actual
32-bit RISC-V machine words, so an assembled program can be emitted as a
flat binary image and round-tripped through the disassembler.

Covered encodings: the RV64IM subset plus Zicsr, fences, ecall/ebreak,
the RV64A subset, and the D-extension instructions the workload suite
uses.  Branch/jump immediates are PC-relative in the encoding, while
the in-memory ``Instruction`` stores absolute targets — ``encode`` and
``decode`` convert using the instruction's placed address.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .errors import IsaError
from .instructions import Instruction
from .program import Program

_U32 = (1 << 32) - 1


class EncodingError(IsaError):
    """Raised when an instruction cannot be encoded or decoded."""


def _check_range(value: int, bits: int, what: str, signed: bool = True):
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"{what} {value} does not fit in {bits} bits")


def _sext(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


# (opcode, funct3, funct7) per mnemonic for the regular formats.
_R_TYPE: Dict[str, Tuple[int, int, int]] = {
    "add": (0x33, 0, 0x00), "sub": (0x33, 0, 0x20),
    "sll": (0x33, 1, 0x00), "slt": (0x33, 2, 0x00),
    "sltu": (0x33, 3, 0x00), "xor": (0x33, 4, 0x00),
    "srl": (0x33, 5, 0x00), "sra": (0x33, 5, 0x20),
    "or": (0x33, 6, 0x00), "and": (0x33, 7, 0x00),
    "addw": (0x3B, 0, 0x00), "subw": (0x3B, 0, 0x20),
    "sllw": (0x3B, 1, 0x00), "srlw": (0x3B, 5, 0x00),
    "sraw": (0x3B, 5, 0x20),
    "mul": (0x33, 0, 0x01), "mulh": (0x33, 1, 0x01),
    "mulhsu": (0x33, 2, 0x01), "mulhu": (0x33, 3, 0x01),
    "div": (0x33, 4, 0x01), "divu": (0x33, 5, 0x01),
    "rem": (0x33, 6, 0x01), "remu": (0x33, 7, 0x01),
    "mulw": (0x3B, 0, 0x01), "divw": (0x3B, 4, 0x01),
    "divuw": (0x3B, 5, 0x01), "remw": (0x3B, 6, 0x01),
    "remuw": (0x3B, 7, 0x01),
    "fadd.d": (0x53, 0, 0x01), "fsub.d": (0x53, 0, 0x05),
    "fmul.d": (0x53, 0, 0x09), "fdiv.d": (0x53, 0, 0x0D),
    "fmin.d": (0x53, 0, 0x15), "fmax.d": (0x53, 1, 0x15),
    "feq.d": (0x53, 2, 0x51), "flt.d": (0x53, 1, 0x51),
    "fle.d": (0x53, 0, 0x51),
}

_I_TYPE: Dict[str, Tuple[int, int]] = {
    "addi": (0x13, 0), "slti": (0x13, 2), "sltiu": (0x13, 3),
    "xori": (0x13, 4), "ori": (0x13, 6), "andi": (0x13, 7),
    "addiw": (0x1B, 0),
    "jalr": (0x67, 0),
    "lb": (0x03, 0), "lh": (0x03, 1), "lw": (0x03, 2), "ld": (0x03, 3),
    "lbu": (0x03, 4), "lhu": (0x03, 5), "lwu": (0x03, 6),
    "fld": (0x07, 3),
}

# Shift-immediates use a funct6 field (bits 31..26) so RV64's 6-bit
# shift amounts fit; (opcode, funct3, funct6) per mnemonic.
_SHIFT_IMM: Dict[str, Tuple[int, int, int]] = {
    "slli": (0x13, 1, 0x00), "srli": (0x13, 5, 0x00),
    "srai": (0x13, 5, 0x10),
    "slliw": (0x1B, 1, 0x00), "srliw": (0x1B, 5, 0x00),
    "sraiw": (0x1B, 5, 0x10),
}

_S_TYPE: Dict[str, Tuple[int, int]] = {
    "sb": (0x23, 0), "sh": (0x23, 1), "sw": (0x23, 2), "sd": (0x23, 3),
    "fsd": (0x27, 3),
}

_B_TYPE: Dict[str, int] = {
    "beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

_CSR_TYPE: Dict[str, int] = {
    "csrrw": 1, "csrrs": 2, "csrrc": 3,
    "csrrwi": 5, "csrrsi": 6, "csrrci": 7,
}

_AMO_FUNCT5: Dict[str, int] = {
    "amoadd.d": 0x00, "amoswap.d": 0x01, "lr.d": 0x02, "sc.d": 0x03,
}

_FP_SPECIAL: Dict[str, Tuple[int, int, int, int]] = {
    # mnemonic -> (funct7, rs2 field, funct3, uses_int_rd)
    "fsqrt.d": (0x2D, 0, 0, 0),
    "fcvt.d.l": (0x69, 2, 0, 0),
    "fcvt.l.d": (0x61, 2, 1, 1),
    "fmv.d.x": (0x79, 0, 0, 0),
    "fmv.x.d": (0x71, 0, 0, 1),
}


def encode(inst: Instruction) -> int:
    """Encode one placed instruction to its 32-bit machine word."""
    m = inst.mnemonic
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    if m in _R_TYPE:
        opcode, funct3, funct7 = _R_TYPE[m]
        return (funct7 << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12
                | rd << 7 | opcode)
    if m in _SHIFT_IMM:
        opcode, funct3, funct6 = _SHIFT_IMM[m]
        shamt_bits = 6 if opcode == 0x13 else 5
        _check_range(inst.imm, shamt_bits, "shift amount", signed=False)
        return (funct6 << 26 | (inst.imm & 0x3F) << 20 | rs1 << 15
                | funct3 << 12 | rd << 7 | opcode)
    if m in _I_TYPE:
        opcode, funct3 = _I_TYPE[m]
        _check_range(inst.imm, 12, "I-immediate")
        return ((inst.imm & 0xFFF) << 20 | rs1 << 15 | funct3 << 12
                | rd << 7 | opcode)
    if m in _S_TYPE:
        opcode, funct3 = _S_TYPE[m]
        _check_range(inst.imm, 12, "S-immediate")
        imm = inst.imm & 0xFFF
        return ((imm >> 5) << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12
                | (imm & 0x1F) << 7 | opcode)
    if m in _B_TYPE:
        offset = inst.imm - inst.addr      # absolute -> pc-relative
        _check_range(offset, 13, "branch offset")
        if offset & 1:
            raise EncodingError("branch offset must be even")
        imm = offset & 0x1FFE
        return (((offset >> 12) & 1) << 31 | ((imm >> 5) & 0x3F) << 25
                | rs2 << 20 | rs1 << 15 | _B_TYPE[m] << 12
                | ((imm >> 1) & 0xF) << 8 | ((offset >> 11) & 1) << 7
                | 0x63)
    if m == "jal":
        offset = inst.imm - inst.addr
        _check_range(offset, 21, "jal offset")
        return (((offset >> 20) & 1) << 31 | ((offset >> 1) & 0x3FF) << 21
                | ((offset >> 11) & 1) << 20
                | ((offset >> 12) & 0xFF) << 12 | rd << 7 | 0x6F)
    if m in ("lui", "auipc"):
        _check_range(inst.imm, 20, "U-immediate")
        opcode = 0x37 if m == "lui" else 0x17
        return (inst.imm & 0xFFFFF) << 12 | rd << 7 | opcode
    if m in _CSR_TYPE:
        source = rs1 if not m.endswith("i") else (inst.imm & 0x1F)
        return ((inst.csr & 0xFFF) << 20 | source << 15
                | _CSR_TYPE[m] << 12 | rd << 7 | 0x73)
    if m == "ecall":
        return 0x00000073
    if m == "ebreak":
        return 0x00100073
    if m == "fence":
        return 0x0FF0000F
    if m == "fence.i":
        return 0x0000100F
    if m in _AMO_FUNCT5:
        return (_AMO_FUNCT5[m] << 27 | rs2 << 20 | rs1 << 15 | 3 << 12
                | rd << 7 | 0x2F)
    if m in _FP_SPECIAL:
        funct7, rs2_field, funct3, _ = _FP_SPECIAL[m]
        return (funct7 << 25 | rs2_field << 20 | rs1 << 15 | funct3 << 12
                | rd << 7 | 0x53)
    raise EncodingError(f"no encoding for {m!r}")


def encode_program(program: Program) -> bytes:
    """Flat little-endian text image of the whole program."""
    out = bytearray()
    for inst in program.instructions:
        out += encode(inst).to_bytes(4, "little")
    return bytes(out)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------

_R_BY_KEY = {(op, f3, f7): m for m, (op, f3, f7) in _R_TYPE.items()}
_I_BY_KEY = {(op, f3): m for m, (op, f3) in _I_TYPE.items()}
_S_BY_KEY = {(op, f3): m for m, (op, f3) in _S_TYPE.items()}
_B_BY_F3 = {f3: m for m, f3 in _B_TYPE.items()}
_CSR_BY_F3 = {f3: m for m, f3 in _CSR_TYPE.items()}
_SHIFT_BY_KEY = {(op, f3, f6): m
                 for m, (op, f3, f6) in _SHIFT_IMM.items()}
_AMO_BY_F5 = {f5: m for m, f5 in _AMO_FUNCT5.items()}
_FP_BY_F7 = {f7: m for m, (f7, _, _, _) in _FP_SPECIAL.items()}


def decode(word: int, addr: int = 0) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`.

    Branch/jump targets are returned as absolute addresses (using
    *addr*), matching the assembler's in-memory convention.
    """
    word &= _U32
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if word == 0x00000073:
        return Instruction("ecall", addr=addr)
    if word == 0x00100073:
        return Instruction("ebreak", addr=addr)
    if opcode == 0x0F:
        mnemonic = "fence.i" if funct3 == 1 else "fence"
        return Instruction(mnemonic, addr=addr)

    if opcode in (0x33, 0x3B) or (opcode == 0x53 and funct7 not in
                                  _FP_BY_F7):
        key = (opcode, funct3, funct7)
        if key in _R_BY_KEY:
            return Instruction(_R_BY_KEY[key], rd=rd, rs1=rs1, rs2=rs2,
                               addr=addr)
    if opcode == 0x53 and funct7 in _FP_BY_F7:
        return Instruction(_FP_BY_F7[funct7], rd=rd, rs1=rs1, addr=addr)
    if opcode in (0x13, 0x1B) and funct3 in (1, 5):
        key = (opcode, funct3, (word >> 26) & 0x3F)
        if key in _SHIFT_BY_KEY:
            shamt = (word >> 20) & (0x3F if opcode == 0x13 else 0x1F)
            return Instruction(_SHIFT_BY_KEY[key], rd=rd, rs1=rs1,
                               imm=shamt, addr=addr)
    if (opcode, funct3) in _I_BY_KEY:
        imm = _sext(word >> 20, 12)
        return Instruction(_I_BY_KEY[(opcode, funct3)], rd=rd, rs1=rs1,
                           imm=imm, addr=addr)
    if (opcode, funct3) in _S_BY_KEY:
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        return Instruction(_S_BY_KEY[(opcode, funct3)], rs1=rs1, rs2=rs2,
                           imm=imm, addr=addr)
    if opcode == 0x63 and funct3 in _B_BY_F3:
        offset = _sext(
            (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1),
            13)
        return Instruction(_B_BY_F3[funct3], rs1=rs1, rs2=rs2,
                           imm=addr + offset, addr=addr)
    if opcode == 0x6F:
        offset = _sext(
            (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1),
            21)
        return Instruction("jal", rd=rd, imm=addr + offset, addr=addr)
    if opcode == 0x37:
        return Instruction("lui", rd=rd, imm=_sext(word >> 12, 20),
                           addr=addr)
    if opcode == 0x17:
        # Sign-extend so pc-relative `auipc` pairs round-trip to the
        # assembler's (possibly negative) hi-part convention.
        return Instruction("auipc", rd=rd, imm=_sext(word >> 12, 20),
                           addr=addr)
    if opcode == 0x73 and funct3 in _CSR_BY_F3:
        mnemonic = _CSR_BY_F3[funct3]
        csr = (word >> 20) & 0xFFF
        if mnemonic.endswith("i"):
            return Instruction(mnemonic, rd=rd, imm=rs1, csr=csr,
                               addr=addr)
        return Instruction(mnemonic, rd=rd, rs1=rs1, csr=csr, addr=addr)
    if opcode == 0x2F and funct3 == 3:
        funct5 = (word >> 27) & 0x1F
        if funct5 in _AMO_BY_F5:
            return Instruction(_AMO_BY_F5[funct5], rd=rd, rs1=rs1,
                               rs2=rs2, addr=addr)
    raise EncodingError(f"cannot decode word {word:#010x}")


def encodable(inst: Instruction) -> bool:
    """True when :func:`encode` supports the instruction as placed."""
    try:
        encode(inst)
        return True
    except EncodingError:
        return False
