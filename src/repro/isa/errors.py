"""Exception types raised by the ISA layer."""

from __future__ import annotations


class IsaError(Exception):
    """Base class for all ISA-layer errors."""


class AssemblerError(IsaError):
    """Raised when assembly source cannot be parsed or resolved."""

    def __init__(self, message: str, line: int = -1) -> None:
        self.line = line
        if line >= 0:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(IsaError):
    """Raised when the functional executor encounters an illegal state."""


class MemoryError_(IsaError):
    """Raised on invalid memory accesses (misalignment, bad address)."""
