"""Exception types raised by the ISA layer.

This module also hosts the bottom of the reliability-error taxonomy
(:class:`ReliabilityError` and the subclasses raised below the
:mod:`repro.reliability` package).  They live here because this module
is an import leaf: the core models and the result cache need to raise
``RunTimeout``/``CacheIntegrityError`` without importing the
reliability package (which itself imports the cores and the PMU).
"""

from __future__ import annotations

from typing import Any, Optional


class IsaError(Exception):
    """Base class for all ISA-layer errors."""


class AssemblerError(IsaError):
    """Raised when assembly source cannot be parsed or resolved."""

    def __init__(self, message: str, line: int = -1) -> None:
        self.line = line
        if line >= 0:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(IsaError):
    """Raised when the functional executor encounters an illegal state."""


class MemoryError_(IsaError):
    """Raised on invalid memory accesses (misalignment, bad address)."""


class ReliabilityError(Exception):
    """Base class of the reliability-violation taxonomy.

    Every violation carries a structured payload so tooling (the
    resilient runner, the fault-injection campaign report) can classify
    failures without parsing message strings:

    - ``invariant``: short name of the violated invariant or guard,
    - ``workload`` / ``config``: the run the violation occurred in,
    - ``observed`` / ``expected``: the offending values, when known.
    """

    def __init__(self, message: str, *, invariant: Optional[str] = None,
                 workload: Optional[str] = None,
                 config: Optional[str] = None,
                 observed: Any = None, expected: Any = None) -> None:
        self.invariant = invariant
        self.workload = workload
        self.config = config
        self.observed = observed
        self.expected = expected
        parts = [message]
        if invariant:
            parts.append(f"[invariant={invariant}]")
        if workload:
            parts.append(f"[workload={workload}"
                         + (f" config={config}]" if config else "]"))
        if observed is not None or expected is not None:
            parts.append(f"(observed={observed!r}, expected={expected!r})")
        super().__init__(" ".join(parts))


class RunTimeout(ReliabilityError):
    """A core run exceeded its cycle budget (hung or truncated trace)."""


class CacheIntegrityError(ReliabilityError):
    """A disk-cache entry failed checksum or schema validation."""


class DeadlineExceeded(ReliabilityError):
    """A run's wall-clock deadline lapsed before (or between) attempts.

    Deadlines propagate from the CLI or a service job through
    :class:`~repro.tools.pool.RunnerSpec` into the resilient runner,
    which checks them between retry attempts: a pair that cannot start
    (or restart) before its deadline fails with this error instead of
    burning pool time on work nobody is still waiting for.
    """
