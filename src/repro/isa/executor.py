"""Functional executor: runs a :class:`Program` and emits a dynamic trace.

The executor implements the architectural semantics of the RV64 subset
(64-bit two's-complement integer arithmetic, little-endian memory,
IEEE-754 doubles for the FP subset) without any timing.  Its output — a
:class:`~repro.isa.dyn_trace.DynamicTrace` of committed instructions with
resolved branch outcomes and effective addresses — is what the Rocket and
BOOM timing models replay.

Program exit follows the common bare-metal convention: ``ecall`` with
``a7 == 93`` terminates with exit code ``a0``; ``ebreak`` also halts.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .dyn_trace import FP_REG_BASE, NO_REG, DynamicTrace, DynInst
from .errors import ExecutionError
from .instructions import (InstrClass, MEM_WIDTHS, UNSIGNED_LOADS,
                           Instruction)
from .memory import SparseMemory
from .program import INSTR_BYTES, Program

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

SYSCALL_EXIT = 93

#: Default safety valve on dynamic instruction count.
DEFAULT_MAX_INSTRUCTIONS = 4_000_000


def _sext(value: int, bits: int) -> int:
    """Sign-extend the low *bits* of *value* to a Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _to_signed64(value: int) -> int:
    return _sext(value, 64)


def _f2bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _bits2f(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _U64))[0]


class FunctionalExecutor:
    """Architectural interpreter for assembled programs."""

    def __init__(self, program: Program,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 stack_top: int = 0x8800_0000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.memory = SparseMemory(program.data)
        self.int_regs: List[int] = [0] * 32
        self.fp_regs: List[float] = [0.0] * 32
        self.csrs: Dict[int, int] = {}
        self.int_regs[2] = stack_top  # sp
        self.pc = program.entry

    # ------------------------------------------------------------------

    def run(self) -> DynamicTrace:
        """Execute until halt and return the committed-path trace."""
        trace: List[DynInst] = []
        program = self.program
        exit_code = 0
        halt_reason = "fell-off-text"

        while program.has_instruction(self.pc):
            if len(trace) >= self.max_instructions:
                raise ExecutionError(
                    f"instruction budget exceeded "
                    f"({self.max_instructions}) in {program.name!r}")
            instr = program.instruction_at(self.pc)
            dyn, halted, exit_code = self._step(instr, len(trace))
            trace.append(dyn)
            if halted:
                halt_reason = "ecall" if instr.mnemonic == "ecall" else "ebreak"
                break
            self.pc = dyn.next_pc

        return DynamicTrace(trace, program_name=program.name,
                            exit_code=exit_code, halt_reason=halt_reason,
                            final_int_regs=list(self.int_regs))

    # ------------------------------------------------------------------

    def _read_int(self, index: int) -> int:
        return self.int_regs[index]

    def _write_int(self, index: int, value: int) -> None:
        if index != 0:
            self.int_regs[index] = value & _U64

    def _step(self, instr: Instruction,
              seq: int) -> Tuple[DynInst, bool, int]:
        spec = instr.spec
        m = instr.mnemonic
        pc = instr.addr
        next_pc = pc + INSTR_BYTES
        rs1 = self._read_int(instr.rs1) if not spec.fp_rs1 else 0
        rs2 = self._read_int(instr.rs2) if not spec.fp_rs2 else 0
        s1 = _to_signed64(rs1)
        s2 = _to_signed64(rs2)
        imm = instr.imm
        cls = spec.cls
        mem_addr = 0
        mem_width = 0
        taken = False
        halted = False
        exit_code = 0
        csr_write: Optional[int] = None

        if cls == InstrClass.ALU:
            self._write_int(instr.rd, self._alu(m, rs1, rs2, s1, s2, imm, pc))
        elif cls == InstrClass.MUL:
            self._write_int(instr.rd, self._mul(m, rs1, rs2, s1, s2))
        elif cls == InstrClass.DIV:
            self._write_int(instr.rd, self._div(m, rs1, rs2, s1, s2))
        elif cls == InstrClass.LOAD:
            mem_addr = (rs1 + imm) & _U64
            mem_width = MEM_WIDTHS[m]
            if m in UNSIGNED_LOADS:
                value = self.memory.read(mem_addr, mem_width)
            else:
                value = self.memory.read_signed(mem_addr, mem_width) & _U64
            self._write_int(instr.rd, value)
        elif cls == InstrClass.STORE:
            mem_addr = (rs1 + imm) & _U64
            mem_width = MEM_WIDTHS[m]
            self.memory.write(mem_addr, rs2, mem_width)
        elif cls == InstrClass.BRANCH:
            taken = self._branch_taken(m, rs1, rs2, s1, s2)
            if taken:
                next_pc = imm
        elif cls == InstrClass.JUMP:
            self._write_int(instr.rd, pc + INSTR_BYTES)
            next_pc = imm
            taken = True
        elif cls == InstrClass.JUMP_REG:
            target = (rs1 + imm) & ~1 & _U64
            self._write_int(instr.rd, pc + INSTR_BYTES)
            next_pc = target
            taken = True
        elif cls == InstrClass.FENCE:
            pass
        elif cls == InstrClass.SYSTEM:
            if m == "ecall":
                if self._read_int(17) == SYSCALL_EXIT:  # a7
                    halted = True
                    exit_code = _to_signed64(self._read_int(10))  # a0
            else:  # ebreak
                halted = True
        elif cls == InstrClass.CSR:
            old = self.csrs.get(instr.csr, 0)
            if m == "csrrw":
                csr_write = rs1 & _U64
            elif m == "csrrs":
                csr_write = (old | rs1) & _U64 if instr.rs1 != 0 else None
            elif m == "csrrc":
                csr_write = (old & ~rs1) & _U64 if instr.rs1 != 0 else None
            elif m == "csrrwi":
                csr_write = imm & 0x1F
            elif m == "csrrsi":
                csr_write = (old | (imm & 0x1F)) & _U64 if imm else None
            elif m == "csrrci":
                csr_write = (old & ~(imm & 0x1F)) & _U64 if imm else None
            if csr_write is not None:
                self.csrs[instr.csr] = csr_write
            self._write_int(instr.rd, old)
        elif cls in (InstrClass.FP, InstrClass.FP_DIV):
            self._fp_op(instr, m, rs1)
        elif cls == InstrClass.FP_LOAD:
            mem_addr = (rs1 + imm) & _U64
            mem_width = 8
            self.fp_regs[instr.rd] = _bits2f(self.memory.read(mem_addr, 8))
        elif cls == InstrClass.FP_STORE:
            mem_addr = (rs1 + imm) & _U64
            mem_width = 8
            self.memory.write(mem_addr, _f2bits(self.fp_regs[instr.rs2]), 8)
        elif cls == InstrClass.AMO:
            mem_addr = rs1 & _U64
            mem_width = 8
            old = self.memory.read(mem_addr, 8)
            if m == "amoadd.d":
                self.memory.write(mem_addr, (old + rs2) & _U64, 8)
                self._write_int(instr.rd, old)
            elif m == "amoswap.d":
                self.memory.write(mem_addr, rs2, 8)
                self._write_int(instr.rd, old)
            elif m == "lr.d":
                self._write_int(instr.rd, old)
            elif m == "sc.d":
                self.memory.write(mem_addr, rs2, 8)
                self._write_int(instr.rd, 0)  # always succeeds in this model
        else:  # pragma: no cover - exhaustive
            raise ExecutionError(f"unimplemented class {cls} for {m}")

        dest, srcs = self._deps(instr)
        dyn = DynInst(
            seq, pc, cls, dest, srcs, spec.latency, next_pc, m,
            mem_addr=mem_addr, mem_width=mem_width,
            is_load=(cls in (InstrClass.LOAD, InstrClass.FP_LOAD)
                     or m in ("lr.d", "amoadd.d", "amoswap.d")),
            is_store=(cls in (InstrClass.STORE, InstrClass.FP_STORE)
                      or m in ("sc.d", "amoadd.d", "amoswap.d")),
            is_branch=(cls == InstrClass.BRANCH), taken=taken,
            is_fence=(cls == InstrClass.FENCE),
            csr=instr.csr if cls == InstrClass.CSR else -1,
            csr_write=csr_write)
        return dyn, halted, exit_code

    # ------------------------------------------------------------------
    # per-class semantics
    # ------------------------------------------------------------------

    @staticmethod
    def _alu(m: str, rs1: int, rs2: int, s1: int, s2: int, imm: int,
             pc: int) -> int:
        if m == "add":
            return rs1 + rs2
        if m == "sub":
            return rs1 - rs2
        if m == "and":
            return rs1 & rs2
        if m == "or":
            return rs1 | rs2
        if m == "xor":
            return rs1 ^ rs2
        if m == "sll":
            return rs1 << (rs2 & 63)
        if m == "srl":
            return rs1 >> (rs2 & 63)
        if m == "sra":
            return s1 >> (rs2 & 63)
        if m == "slt":
            return int(s1 < s2)
        if m == "sltu":
            return int(rs1 < rs2)
        if m == "addi":
            return rs1 + imm
        if m == "andi":
            return rs1 & (imm & _U64)
        if m == "ori":
            return rs1 | (imm & _U64)
        if m == "xori":
            return rs1 ^ (imm & _U64)
        if m == "slti":
            return int(s1 < imm)
        if m == "sltiu":
            return int(rs1 < (imm & _U64))
        if m == "slli":
            return rs1 << (imm & 63)
        if m == "srli":
            return rs1 >> (imm & 63)
        if m == "srai":
            return s1 >> (imm & 63)
        if m == "addw":
            return _sext(rs1 + rs2, 32) & _U64
        if m == "subw":
            return _sext(rs1 - rs2, 32) & _U64
        if m == "sllw":
            return _sext(rs1 << (rs2 & 31), 32) & _U64
        if m == "srlw":
            return _sext((rs1 & _U32) >> (rs2 & 31), 32) & _U64
        if m == "sraw":
            return _sext(_sext(rs1, 32) >> (rs2 & 31), 32) & _U64
        if m == "addiw":
            return _sext(rs1 + imm, 32) & _U64
        if m == "slliw":
            return _sext(rs1 << (imm & 31), 32) & _U64
        if m == "srliw":
            return _sext((rs1 & _U32) >> (imm & 31), 32) & _U64
        if m == "sraiw":
            return _sext(_sext(rs1, 32) >> (imm & 31), 32) & _U64
        if m == "lui":
            return (imm << 12) & _U64
        if m == "auipc":
            return (pc + (imm << 12)) & _U64
        raise ExecutionError(f"unimplemented ALU op {m}")

    @staticmethod
    def _mul(m: str, rs1: int, rs2: int, s1: int, s2: int) -> int:
        if m == "mul":
            return s1 * s2
        if m == "mulw":
            return _sext(s1 * s2, 32) & _U64
        if m == "mulh":
            return ((s1 * s2) >> 64) & _U64
        if m == "mulhu":
            return ((rs1 * rs2) >> 64) & _U64
        if m == "mulhsu":
            return ((s1 * rs2) >> 64) & _U64
        raise ExecutionError(f"unimplemented MUL op {m}")

    @staticmethod
    def _div(m: str, rs1: int, rs2: int, s1: int, s2: int) -> int:
        def sdiv(a: int, b: int) -> int:
            if b == 0:
                return -1
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q

        def srem(a: int, b: int) -> int:
            if b == 0:
                return a
            return a - sdiv(a, b) * b

        if m == "div":
            return sdiv(s1, s2) & _U64
        if m == "divu":
            return (_U64 if rs2 == 0 else rs1 // rs2) & _U64
        if m == "rem":
            return srem(s1, s2) & _U64
        if m == "remu":
            return (rs1 if rs2 == 0 else rs1 % rs2) & _U64
        if m == "divw":
            return _sext(sdiv(_sext(rs1, 32), _sext(rs2, 32)), 32) & _U64
        if m == "divuw":
            a, b = rs1 & _U32, rs2 & _U32
            return _sext(_U32 if b == 0 else a // b, 32) & _U64
        if m == "remw":
            return _sext(srem(_sext(rs1, 32), _sext(rs2, 32)), 32) & _U64
        if m == "remuw":
            a, b = rs1 & _U32, rs2 & _U32
            return _sext(a if b == 0 else a % b, 32) & _U64
        raise ExecutionError(f"unimplemented DIV op {m}")

    @staticmethod
    def _branch_taken(m: str, rs1: int, rs2: int, s1: int, s2: int) -> bool:
        if m == "beq":
            return rs1 == rs2
        if m == "bne":
            return rs1 != rs2
        if m == "blt":
            return s1 < s2
        if m == "bge":
            return s1 >= s2
        if m == "bltu":
            return rs1 < rs2
        if m == "bgeu":
            return rs1 >= rs2
        raise ExecutionError(f"unimplemented branch {m}")

    def _fp_op(self, instr: Instruction, m: str, rs1_int: int) -> None:
        f = self.fp_regs
        if m == "fadd.d":
            f[instr.rd] = f[instr.rs1] + f[instr.rs2]
        elif m == "fsub.d":
            f[instr.rd] = f[instr.rs1] - f[instr.rs2]
        elif m == "fmul.d":
            f[instr.rd] = f[instr.rs1] * f[instr.rs2]
        elif m == "fdiv.d":
            denom = f[instr.rs2]
            f[instr.rd] = f[instr.rs1] / denom if denom else float("inf")
        elif m == "fmin.d":
            f[instr.rd] = min(f[instr.rs1], f[instr.rs2])
        elif m == "fmax.d":
            f[instr.rd] = max(f[instr.rs1], f[instr.rs2])
        elif m == "fsqrt.d":
            value = f[instr.rs1]
            f[instr.rd] = value ** 0.5 if value >= 0 else float("nan")
        elif m == "fmv.d.x":
            f[instr.rd] = _bits2f(rs1_int)
        elif m == "fmv.x.d":
            self._write_int(instr.rd, _f2bits(f[instr.rs1]))
        elif m == "fcvt.d.l":
            f[instr.rd] = float(_to_signed64(rs1_int))
        elif m == "fcvt.l.d":
            self._write_int(instr.rd, int(f[instr.rs1]) & _U64)
        elif m == "feq.d":
            self._write_int(instr.rd, int(f[instr.rs1] == f[instr.rs2]))
        elif m == "flt.d":
            self._write_int(instr.rd, int(f[instr.rs1] < f[instr.rs2]))
        elif m == "fle.d":
            self._write_int(instr.rd, int(f[instr.rs1] <= f[instr.rs2]))
        else:  # pragma: no cover
            raise ExecutionError(f"unimplemented FP op {m}")

    # ------------------------------------------------------------------

    @staticmethod
    def _deps(instr: Instruction) -> Tuple[int, Tuple[int, ...]]:
        """Unified (dest, sources) register ids for dependency tracking."""
        spec = instr.spec
        dest = NO_REG
        if spec.writes_rd:
            if spec.fp_rd:
                dest = FP_REG_BASE + instr.rd
            elif instr.rd != 0:
                dest = instr.rd
        srcs: List[int] = []
        if spec.reads_rs1:
            src = FP_REG_BASE + instr.rs1 if spec.fp_rs1 else instr.rs1
            if spec.fp_rs1 or instr.rs1 != 0:
                srcs.append(src)
        if spec.reads_rs2:
            src = FP_REG_BASE + instr.rs2 if spec.fp_rs2 else instr.rs2
            if spec.fp_rs2 or instr.rs2 != 0:
                srcs.append(src)
        return dest, tuple(srcs)


def execute(program: Program,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> DynamicTrace:
    """Run *program* functionally and return its dynamic trace."""
    return FunctionalExecutor(program, max_instructions=max_instructions).run()
