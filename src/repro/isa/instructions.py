"""Instruction set definition for the RV64IM(+FD subset) ISA model.

Every instruction the assembler accepts is described by an :class:`OpSpec`
entry in :data:`OPCODES`.  The spec records the operand format (used by the
assembler), the functional-unit class (used by the core timing models), and
whether the instruction reads/writes integer or floating-point registers
(used by dependency tracking in the executor and the cores).

The instruction classes mirror the functional units of the paper's cores
(Fig. 2): ALU, multiplier/divider, loads/stores, branches/jumps, FP, CSR
accesses, fences, atomics, and system instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class InstrClass(enum.Enum):
    """Functional-unit class of an instruction."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"          # direct jump (jal)
    JUMP_REG = "jump_reg"  # indirect jump (jalr)
    FP = "fp"
    FP_DIV = "fp_div"
    FP_LOAD = "fp_load"
    FP_STORE = "fp_store"
    CSR = "csr"
    FENCE = "fence"
    AMO = "amo"
    SYSTEM = "system"


class OperandFormat(enum.Enum):
    """Textual operand layout, used by the assembler's parser."""

    R = "r"            # op rd, rs1, rs2
    I = "i"            # op rd, rs1, imm
    LOAD = "load"      # op rd, imm(rs1)
    STORE = "store"    # op rs2, imm(rs1)
    BRANCH = "branch"  # op rs1, rs2, target
    U = "u"            # op rd, imm
    JAL = "jal"        # op rd, target      (or "op target" pseudo form)
    JALR = "jalr"      # op rd, rs1, imm    (or "op rs1" pseudo form)
    CSR = "csr"        # op rd, csr, rs1
    CSRI = "csri"      # op rd, csr, zimm
    NONE = "none"      # op
    FP_R = "fp_r"      # op frd, frs1, frs2
    FP_LOAD = "fp_load"    # op frd, imm(rs1)
    FP_STORE = "fp_store"  # op frs2, imm(rs1)
    FP_CMP = "fp_cmp"  # op rd, frs1, frs2
    FP_CVT_TO = "fp_cvt_to"      # op frd, rs1
    FP_CVT_FROM = "fp_cvt_from"  # op rd, frs1
    FP_UNARY = "fp_unary"        # op frd, frs1
    AMO = "amo"        # op rd, rs2, (rs1)
    LR = "lr"          # op rd, (rs1)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    cls: InstrClass
    fmt: OperandFormat
    latency: int = 1
    writes_rd: bool = False
    reads_rs1: bool = False
    reads_rs2: bool = False
    fp_rd: bool = False
    fp_rs1: bool = False
    fp_rs2: bool = False

    @property
    def is_memory(self) -> bool:
        return self.cls in (
            InstrClass.LOAD,
            InstrClass.STORE,
            InstrClass.FP_LOAD,
            InstrClass.FP_STORE,
            InstrClass.AMO,
        )

    @property
    def is_control_flow(self) -> bool:
        return self.cls in (InstrClass.BRANCH, InstrClass.JUMP, InstrClass.JUMP_REG)


def _r(m: str, cls: InstrClass = InstrClass.ALU, latency: int = 1) -> OpSpec:
    return OpSpec(m, cls, OperandFormat.R, latency,
                  writes_rd=True, reads_rs1=True, reads_rs2=True)


def _i(m: str, latency: int = 1) -> OpSpec:
    return OpSpec(m, InstrClass.ALU, OperandFormat.I, latency,
                  writes_rd=True, reads_rs1=True)


def _load(m: str, width: int) -> OpSpec:
    spec = OpSpec(m, InstrClass.LOAD, OperandFormat.LOAD, 2,
                  writes_rd=True, reads_rs1=True)
    _MEM_WIDTHS[m] = width
    return spec


def _store(m: str, width: int) -> OpSpec:
    spec = OpSpec(m, InstrClass.STORE, OperandFormat.STORE, 1,
                  reads_rs1=True, reads_rs2=True)
    _MEM_WIDTHS[m] = width
    return spec


def _branch(m: str) -> OpSpec:
    return OpSpec(m, InstrClass.BRANCH, OperandFormat.BRANCH, 1,
                  reads_rs1=True, reads_rs2=True)


_MEM_WIDTHS: Dict[str, int] = {}


def _build_opcodes() -> Dict[str, OpSpec]:
    specs = [
        # RV64I register-register ALU.
        _r("add"), _r("sub"), _r("sll"), _r("slt"), _r("sltu"), _r("xor"),
        _r("srl"), _r("sra"), _r("or"), _r("and"),
        _r("addw"), _r("subw"), _r("sllw"), _r("srlw"), _r("sraw"),
        # RV64I register-immediate ALU.
        _i("addi"), _i("slti"), _i("sltiu"), _i("xori"), _i("ori"),
        _i("andi"), _i("slli"), _i("srli"), _i("srai"),
        _i("addiw"), _i("slliw"), _i("srliw"), _i("sraiw"),
        # Upper-immediate.
        OpSpec("lui", InstrClass.ALU, OperandFormat.U, 1, writes_rd=True),
        OpSpec("auipc", InstrClass.ALU, OperandFormat.U, 1, writes_rd=True),
        # Loads and stores.
        _load("lb", 1), _load("lh", 2), _load("lw", 4), _load("ld", 8),
        _load("lbu", 1), _load("lhu", 2), _load("lwu", 4),
        _store("sb", 1), _store("sh", 2), _store("sw", 4), _store("sd", 8),
        # Branches.
        _branch("beq"), _branch("bne"), _branch("blt"), _branch("bge"),
        _branch("bltu"), _branch("bgeu"),
        # Jumps.
        OpSpec("jal", InstrClass.JUMP, OperandFormat.JAL, 1, writes_rd=True),
        OpSpec("jalr", InstrClass.JUMP_REG, OperandFormat.JALR, 1,
               writes_rd=True, reads_rs1=True),
        # RV64M multiply/divide.
        _r("mul", InstrClass.MUL, 3), _r("mulh", InstrClass.MUL, 3),
        _r("mulhu", InstrClass.MUL, 3), _r("mulhsu", InstrClass.MUL, 3),
        _r("mulw", InstrClass.MUL, 3),
        _r("div", InstrClass.DIV, 16), _r("divu", InstrClass.DIV, 16),
        _r("rem", InstrClass.DIV, 16), _r("remu", InstrClass.DIV, 16),
        _r("divw", InstrClass.DIV, 12), _r("divuw", InstrClass.DIV, 12),
        _r("remw", InstrClass.DIV, 12), _r("remuw", InstrClass.DIV, 12),
        # Fences: fence drains the pipeline, fence.i additionally flushes
        # the frontend (both are "intended flushes" in the TMA model).
        OpSpec("fence", InstrClass.FENCE, OperandFormat.NONE, 1),
        OpSpec("fence.i", InstrClass.FENCE, OperandFormat.NONE, 1),
        # System.
        OpSpec("ecall", InstrClass.SYSTEM, OperandFormat.NONE, 1),
        OpSpec("ebreak", InstrClass.SYSTEM, OperandFormat.NONE, 1),
        # Zicsr.
        OpSpec("csrrw", InstrClass.CSR, OperandFormat.CSR, 1,
               writes_rd=True, reads_rs1=True),
        OpSpec("csrrs", InstrClass.CSR, OperandFormat.CSR, 1,
               writes_rd=True, reads_rs1=True),
        OpSpec("csrrc", InstrClass.CSR, OperandFormat.CSR, 1,
               writes_rd=True, reads_rs1=True),
        OpSpec("csrrwi", InstrClass.CSR, OperandFormat.CSRI, 1, writes_rd=True),
        OpSpec("csrrsi", InstrClass.CSR, OperandFormat.CSRI, 1, writes_rd=True),
        OpSpec("csrrci", InstrClass.CSR, OperandFormat.CSRI, 1, writes_rd=True),
        # Double-precision FP subset (enough for FP-queue pressure studies).
        OpSpec("fld", InstrClass.FP_LOAD, OperandFormat.FP_LOAD, 2,
               writes_rd=True, reads_rs1=True, fp_rd=True),
        OpSpec("fsd", InstrClass.FP_STORE, OperandFormat.FP_STORE, 1,
               reads_rs1=True, reads_rs2=True, fp_rs2=True),
        OpSpec("fadd.d", InstrClass.FP, OperandFormat.FP_R, 4,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rd=True, fp_rs1=True, fp_rs2=True),
        OpSpec("fsub.d", InstrClass.FP, OperandFormat.FP_R, 4,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rd=True, fp_rs1=True, fp_rs2=True),
        OpSpec("fmul.d", InstrClass.FP, OperandFormat.FP_R, 4,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rd=True, fp_rs1=True, fp_rs2=True),
        OpSpec("fdiv.d", InstrClass.FP_DIV, OperandFormat.FP_R, 12,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rd=True, fp_rs1=True, fp_rs2=True),
        OpSpec("fmin.d", InstrClass.FP, OperandFormat.FP_R, 2,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rd=True, fp_rs1=True, fp_rs2=True),
        OpSpec("fmax.d", InstrClass.FP, OperandFormat.FP_R, 2,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rd=True, fp_rs1=True, fp_rs2=True),
        OpSpec("fsqrt.d", InstrClass.FP_DIV, OperandFormat.FP_UNARY, 14,
               writes_rd=True, reads_rs1=True, fp_rd=True, fp_rs1=True),
        OpSpec("fmv.d.x", InstrClass.FP, OperandFormat.FP_CVT_TO, 1,
               writes_rd=True, reads_rs1=True, fp_rd=True),
        OpSpec("fmv.x.d", InstrClass.FP, OperandFormat.FP_CVT_FROM, 1,
               writes_rd=True, reads_rs1=True, fp_rs1=True),
        OpSpec("fcvt.d.l", InstrClass.FP, OperandFormat.FP_CVT_TO, 3,
               writes_rd=True, reads_rs1=True, fp_rd=True),
        OpSpec("fcvt.l.d", InstrClass.FP, OperandFormat.FP_CVT_FROM, 3,
               writes_rd=True, reads_rs1=True, fp_rs1=True),
        OpSpec("feq.d", InstrClass.FP, OperandFormat.FP_CMP, 2,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rs1=True, fp_rs2=True),
        OpSpec("flt.d", InstrClass.FP, OperandFormat.FP_CMP, 2,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rs1=True, fp_rs2=True),
        OpSpec("fle.d", InstrClass.FP, OperandFormat.FP_CMP, 2,
               writes_rd=True, reads_rs1=True, reads_rs2=True,
               fp_rs1=True, fp_rs2=True),
        # RV64A subset.
        OpSpec("amoadd.d", InstrClass.AMO, OperandFormat.AMO, 4,
               writes_rd=True, reads_rs1=True, reads_rs2=True),
        OpSpec("amoswap.d", InstrClass.AMO, OperandFormat.AMO, 4,
               writes_rd=True, reads_rs1=True, reads_rs2=True),
        OpSpec("lr.d", InstrClass.AMO, OperandFormat.LR, 2,
               writes_rd=True, reads_rs1=True),
        OpSpec("sc.d", InstrClass.AMO, OperandFormat.AMO, 2,
               writes_rd=True, reads_rs1=True, reads_rs2=True),
    ]
    _MEM_WIDTHS["fld"] = 8
    _MEM_WIDTHS["fsd"] = 8
    for m in ("amoadd.d", "amoswap.d", "lr.d", "sc.d"):
        _MEM_WIDTHS[m] = 8
    return {spec.mnemonic: spec for spec in specs}


#: Every mnemonic the assembler accepts, mapped to its static spec.
OPCODES: Dict[str, OpSpec] = _build_opcodes()

#: Memory access width in bytes for each memory mnemonic.
MEM_WIDTHS: Dict[str, int] = dict(_MEM_WIDTHS)

#: Loads sign-extend unless listed here.
UNSIGNED_LOADS = frozenset({"lbu", "lhu", "lwu"})


@dataclass
class Instruction:
    """One decoded static instruction.

    ``rd``/``rs1``/``rs2`` are register indices into the integer or FP
    register file depending on the :class:`OpSpec` flags.  ``imm`` holds the
    immediate (branch/jump offsets are resolved to absolute byte targets by
    the assembler and stored in ``imm``).  ``addr`` is the byte address of
    the instruction once placed in a program.
    """

    __slots__ = ("mnemonic", "rd", "rs1", "rs2", "imm", "csr", "addr",
                 "source_line")

    mnemonic: str
    rd: int
    rs1: int
    rs2: int
    imm: int
    csr: int
    addr: int
    source_line: int

    def __init__(self, mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
                 imm: int = 0, csr: int = 0, addr: int = 0,
                 source_line: int = -1) -> None:
        if mnemonic not in OPCODES:
            raise ValueError(f"unknown mnemonic: {mnemonic!r}")
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.csr = csr
        self.addr = addr
        self.source_line = source_line

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.mnemonic]

    @property
    def cls(self) -> InstrClass:
        return OPCODES[self.mnemonic].cls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Instruction({self.mnemonic!r}, rd={self.rd}, rs1={self.rs1},"
                f" rs2={self.rs2}, imm={self.imm}, addr={self.addr:#x})")
