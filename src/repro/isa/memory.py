"""Sparse byte-addressable memory for the functional executor.

Backed by fixed-size pages allocated on demand, so programs can scatter
data across the 64-bit address space without large allocations.  All
multi-byte accesses are little-endian, matching RISC-V.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_U64_MASK = (1 << 64) - 1


class SparseMemory:
    """Sparse little-endian memory built from 4 KiB pages."""

    __slots__ = ("_pages",)

    def __init__(self, image: Dict[int, int] = None) -> None:
        self._pages: Dict[int, bytearray] = {}
        if image:
            for addr, value in image.items():
                self.write_byte(addr, value)

    def _page(self, addr: int) -> bytearray:
        page_num = addr >> PAGE_SHIFT
        page = self._pages.get(page_num)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_num] = page
        return page

    def read_byte(self, addr: int) -> int:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def write_byte(self, addr: int, value: int) -> None:
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    def read(self, addr: int, size: int) -> int:
        """Read *size* bytes at *addr* as an unsigned little-endian integer."""
        if size not in (1, 2, 4, 8):
            raise MemoryError_(f"unsupported access size {size}")
        offset = addr & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + size], "little")
        value = 0
        for i in range(size):
            value |= self.read_byte(addr + i) << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        """Write the low *size* bytes of *value* at *addr*, little-endian."""
        if size not in (1, 2, 4, 8):
            raise MemoryError_(f"unsupported access size {size}")
        value &= (1 << (8 * size)) - 1
        offset = addr & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._page(addr)
            page[offset:offset + size] = value.to_bytes(size, "little")
            return
        for i in range(size):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def read_signed(self, addr: int, size: int) -> int:
        """Read and sign-extend a *size*-byte value."""
        value = self.read(addr, size)
        sign_bit = 1 << (8 * size - 1)
        if value & sign_bit:
            value -= 1 << (8 * size)
        return value

    def load_image(self, image: Dict[int, int]) -> None:
        """Install a ``{byte_address: byte_value}`` image."""
        for addr, value in image.items():
            self.write_byte(addr, value)

    def dump(self, addr: int, size: int) -> bytes:
        """Return *size* raw bytes starting at *addr*."""
        return bytes(self.read_byte(addr + i) for i in range(size))

    def touched_pages(self) -> Iterable[Tuple[int, bytearray]]:
        """Yield (page_base_address, page_bytes) for every allocated page."""
        for page_num, page in sorted(self._pages.items()):
            yield page_num << PAGE_SHIFT, page

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of allocated pages (a proxy for working-set size)."""
        return len(self._pages) * PAGE_SIZE
