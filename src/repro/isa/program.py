"""Program container: placed instructions plus an initialized data image.

A :class:`Program` is what the assembler produces and what both the
functional executor and the core timing models consume.  Instructions are
placed at 4-byte granularity starting at :data:`DEFAULT_TEXT_BASE` (the
standard RISC-V DRAM base used by Rocket/BOOM bare-metal payloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instructions import Instruction

DEFAULT_TEXT_BASE = 0x8000_0000
DEFAULT_DATA_BASE = 0x8010_0000
INSTR_BYTES = 4


@dataclass
class Program:
    """An assembled program image.

    Attributes:
        instructions: static instructions in placement order.
        text_base: byte address of the first instruction.
        data: initial data-memory image as ``{byte_address: byte_value}``.
        symbols: label name -> byte address.
        entry: byte address execution starts at.
        name: human-readable program name (used in reports).
    """

    instructions: List[Instruction]
    text_base: int = DEFAULT_TEXT_BASE
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: Optional[int] = None
    name: str = "program"

    def __post_init__(self) -> None:
        for index, instr in enumerate(self.instructions):
            instr.addr = self.text_base + index * INSTR_BYTES
        if self.entry is None:
            self.entry = self.text_base
        self._index_by_addr = {
            instr.addr: index for index, instr in enumerate(self.instructions)
        }

    @property
    def text_end(self) -> int:
        """One past the last instruction byte."""
        return self.text_base + len(self.instructions) * INSTR_BYTES

    @property
    def code_bytes(self) -> int:
        """Static code footprint in bytes."""
        return len(self.instructions) * INSTR_BYTES

    def instruction_at(self, pc: int) -> Instruction:
        """Return the instruction placed at byte address *pc*.

        Raises:
            KeyError: when *pc* does not name an instruction.
        """
        index = self._index_by_addr.get(pc)
        if index is None:
            raise KeyError(f"no instruction at pc {pc:#x}")
        return self.instructions[index]

    def index_of(self, pc: int) -> int:
        """Return the instruction index for byte address *pc*."""
        return self._index_by_addr[pc]

    def has_instruction(self, pc: int) -> bool:
        """Return True when *pc* names an instruction in this program."""
        return pc in self._index_by_addr

    def resolve(self, symbol: str) -> int:
        """Return the byte address of *symbol*.

        Raises:
            KeyError: when the symbol is unknown.
        """
        return self.symbols[symbol]

    def __len__(self) -> int:
        return len(self.instructions)
