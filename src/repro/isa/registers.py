"""Register file definitions for the RV64 subset used by the Icicle reproduction.

The paper's cores (Rocket and BOOM) implement RV64IMAFDC (Table IV).  The
reproduction models the integer and floating-point register files that the
workload suite and the functional executor need: 32 integer registers with
their standard ABI names and 32 floating-point registers.
"""

from __future__ import annotations

from typing import Dict, List

XLEN = 64
NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Canonical ABI names for the 32 integer registers, indexed by number.
INT_ABI_NAMES: List[str] = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]

#: Canonical ABI names for the 32 floating-point registers.
FP_ABI_NAMES: List[str] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1",
    "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7",
    "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9", "fs10", "fs11",
    "ft8", "ft9", "ft10", "ft11",
]


def _build_name_table() -> Dict[str, int]:
    table: Dict[str, int] = {}
    for idx in range(NUM_INT_REGS):
        table[f"x{idx}"] = idx
        table[INT_ABI_NAMES[idx]] = idx
    # "fp" is an alias for s0/x8 in the RISC-V psABI.
    table["fp"] = 8
    return table


def _build_fp_name_table() -> Dict[str, int]:
    table: Dict[str, int] = {}
    for idx in range(NUM_FP_REGS):
        table[f"f{idx}"] = idx
        table[FP_ABI_NAMES[idx]] = idx
    return table


#: Lookup from any accepted integer register spelling to its index.
INT_REG_NUMBERS: Dict[str, int] = _build_name_table()

#: Lookup from any accepted floating-point register spelling to its index.
FP_REG_NUMBERS: Dict[str, int] = _build_fp_name_table()


def parse_int_reg(name: str) -> int:
    """Return the register index for an integer register name.

    Accepts both numeric (``x5``) and ABI (``t0``) spellings.

    Raises:
        KeyError: if the name is not an integer register.
    """
    return INT_REG_NUMBERS[name.strip().lower()]


def parse_fp_reg(name: str) -> int:
    """Return the register index for a floating-point register name."""
    return FP_REG_NUMBERS[name.strip().lower()]


def is_int_reg(name: str) -> bool:
    """Return True when *name* spells an integer register."""
    return name.strip().lower() in INT_REG_NUMBERS


def is_fp_reg(name: str) -> bool:
    """Return True when *name* spells a floating-point register."""
    return name.strip().lower() in FP_REG_NUMBERS


def int_reg_name(index: int) -> str:
    """Return the ABI name for integer register *index*."""
    return INT_ABI_NAMES[index]


def fp_reg_name(index: int) -> str:
    """Return the ABI name for floating-point register *index*."""
    return FP_ABI_NAMES[index]
