"""Multicore interference TMA: shared-uncore scenarios with attribution.

Public surface:

- :func:`run_scenario` / :func:`run_scenario_payload` — execute a named
  (or ad-hoc) co-location scenario in cycle-lockstep over a shared
  uncore and return per-core TMA with the Memory-Bound slots split into
  self vs. neighbor-induced shares;
- :data:`SCENARIOS` / :func:`get_scenario` / :func:`scenario_names` —
  the named scenario registry (``noisy-neighbor``, ``symmetric``,
  ``latency-victim``);
- :class:`SharedUncore` — the shared L2 + DRAM-bus model itself, for
  callers composing custom topologies.
"""

from .attribution import Attribution, attribute_mem_bound
from .harness import (
    CoreInterference,
    MulticoreError,
    MulticoreResult,
    multicore_fingerprint,
    run_scenario,
    run_scenario_payload,
    scenario_cache_key,
)
from .lockstep import ARBITRATIONS, CycleTurnstile, LockstepError, TurnstileHook
from .scenarios import (
    MAX_CORES,
    SCENARIOS,
    CoreSlot,
    Scenario,
    get_scenario,
    scenario_names,
)
from .uncore import COLOR_SHIFT, L2View, RequestorMetrics, SharedUncore

__all__ = [
    "ARBITRATIONS",
    "Attribution",
    "COLOR_SHIFT",
    "CoreInterference",
    "CoreSlot",
    "CycleTurnstile",
    "L2View",
    "LockstepError",
    "MAX_CORES",
    "MulticoreError",
    "MulticoreResult",
    "RequestorMetrics",
    "SCENARIOS",
    "Scenario",
    "SharedUncore",
    "TurnstileHook",
    "attribute_mem_bound",
    "get_scenario",
    "multicore_fingerprint",
    "run_scenario",
    "run_scenario_payload",
    "scenario_cache_key",
    "scenario_names",
]
