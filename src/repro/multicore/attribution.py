"""Self-vs-neighbor attribution of Memory-Bound TMA slots.

Under sharing, a core's Memory-Bound slots (`mem_bound` in both cores'
level-2 TMA) conflate two causes: misses and bus waits the core would
have suffered alone (*self*) and extra ones its neighbors induced
(*neighbor*).  The uncore measures both causes directly:

- the shadow tag array splits every L2 miss into would-miss-solo vs.
  hit-solo-but-missed-shared (:class:`RequestorMetrics.self_misses` /
  ``neighbor_induced_misses``);
- DRAM-bus wait cycles are attributed by whether a *different*
  requestor last held the bus (``bus_wait_self`` / ``bus_wait_neighbor``).

Each cause is weighted by its cycle penalty (a neighbor-induced miss
costs a DRAM round trip; a bus wait costs its wait cycles) and the
Memory-Bound slot fraction is divided proportionally.  The split is
pinned *exact* — ``self_share + neighbor_share == mem_bound`` as floats
— via :func:`repro.core.tma.split_slots`, and a requestor with zero
neighbor penalty gets exactly ``neighbor_share == 0.0`` (the idle-
neighbor invariant the tests enforce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.tma import TmaResult, split_slots
from .uncore import RequestorMetrics


@dataclass(frozen=True)
class Attribution:
    """Memory-Bound slot split for one core under sharing."""

    #: The TMA level-2 Memory-Bound fraction being divided.
    mem_bound: float
    #: Slots this core would have lost alone.
    self_share: float
    #: Slots induced by neighbors (``self + neighbor == mem_bound``).
    neighbor_share: float
    #: The penalty weights behind the split (cycles).
    self_penalty: int
    neighbor_penalty: int

    @property
    def neighbor_fraction(self) -> float:
        """Neighbor-induced share of Memory-Bound slots, in [0, 1]."""
        if self.mem_bound == 0.0:
            return 0.0
        return self.neighbor_share / self.mem_bound

    def to_payload(self) -> Dict[str, float]:
        return {
            "mem_bound": self.mem_bound,
            "self": self.self_share,
            "neighbor_induced": self.neighbor_share,
            "self_penalty_cycles": float(self.self_penalty),
            "neighbor_penalty_cycles": float(self.neighbor_penalty),
        }


def attribute_mem_bound(tma: TmaResult, metrics: RequestorMetrics,
                        dram_latency: int) -> Attribution:
    """Split *tma*'s Memory-Bound slots using the uncore's measurements."""
    mem_bound = tma.level2.get("mem_bound", 0.0)
    self_penalty = (metrics.self_misses * dram_latency
                    + metrics.bus_wait_self)
    neighbor_penalty = (metrics.neighbor_induced_misses * dram_latency
                        + metrics.bus_wait_neighbor)
    shares = split_slots(mem_bound, float(self_penalty),
                         float(neighbor_penalty))
    return Attribution(
        mem_bound=mem_bound,
        self_share=shares["a"],
        neighbor_share=shares["b"],
        self_penalty=self_penalty,
        neighbor_penalty=neighbor_penalty,
    )
