"""The multicore harness: run a scenario, attribute the interference.

:func:`run_scenario` steps every active core of a
:class:`~repro.multicore.scenarios.Scenario` in cycle-lockstep over one
:class:`~repro.multicore.uncore.SharedUncore`, then computes per-core
TMA and the self-vs-neighbor Memory-Bound split.

Two execution paths:

- **One active core** (every other slot idle): no threads, no turnstile
  — the core is built exactly the way the single-core pipeline builds
  it and runs on the requested timing engine.  This path is *bit-
  identical* to :func:`repro.tools.tma_tool.run_core` by construction
  and is what the solo-oracle tests pin.  ``force_lockstep=True``
  instead routes the single core through the full uncore + turnstile
  stack (the traced engine), which the equivalence tests use to pin the
  shared path itself against the solo oracle.
- **Multiple active cores**: one thread per core, each attached to a
  :class:`~repro.multicore.lockstep.TurnstileHook` (which forces the
  traced per-cycle loop — pinned bit-identical to the fast engines by
  the tier-1 suite), sharing one uncore.  Deterministic by
  construction: the turnstile serializes cycles in arbitration order,
  so repeated runs are identical.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..core.tma import TmaResult, compute_tma
from ..cores.base import CoreResult, RocketConfig
from ..cores.boom import BoomCore
from ..cores.batch import resolve_config_spec
from ..cores.rocket import RocketCore
from ..tools import cache
from ..uarch.cache import (
    DRAM_LATENCY,
    L1I_32K,
    L2_512K,
    Cache,
    CacheConfig,
    MemorySystem,
)
from ..workloads import build_trace
from .attribution import Attribution, attribute_mem_bound
from .lockstep import CycleTurnstile, LockstepError, TurnstileHook
from .scenarios import CoreSlot, Scenario, get_scenario
from .uncore import RequestorMetrics, SharedUncore


class MulticoreError(RuntimeError):
    """A scenario run failed; the first core error is the cause."""


@dataclass
class CoreInterference:
    """Everything one active core produced under sharing."""

    index: int
    workload: str
    config_name: str
    result: CoreResult
    tma: TmaResult
    attribution: Attribution
    uncore: RequestorMetrics
    bandwidth_share: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "workload": self.workload,
            "config": self.config_name,
            "core": self.result.core,
            "cycles": self.result.cycles,
            "instret": self.result.instret,
            "ipc": self.result.ipc,
            "tma": {
                "level1": dict(self.tma.level1),
                "level2": dict(self.tma.level2),
                "dominant": self.tma.dominant_class(),
            },
            "attribution": self.attribution.to_payload(),
            "uncore": dict(self.uncore.to_payload(),
                           bandwidth_share=self.bandwidth_share),
        }


@dataclass
class MulticoreResult:
    """One scenario run: per-core interference plus run metadata."""

    scenario: str
    scale: float
    shared_bus: bool
    arbitration: str
    l2_kib: Optional[int]
    slots: List[CoreSlot]
    cores: List[CoreInterference]
    wall_s: float

    @property
    def cycles(self) -> int:
        """Lockstep length: the longest core run."""
        return max((c.result.cycles for c in self.cores), default=0)

    def core_at(self, index: int) -> CoreInterference:
        for core in self.cores:
            if core.index == index:
                return core
        raise KeyError(f"no active core at slot {index}")

    def to_payload(self) -> Dict[str, Any]:
        active = {c.index for c in self.cores}
        slots = []
        for i, slot in enumerate(self.slots):
            if i in active:
                slots.append(self.core_at(i).to_payload())
            else:
                slots.append({"index": i, "workload": slot.workload,
                              "config": slot.config, "idle": True})
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "shared_bus": self.shared_bus,
            "arbitration": self.arbitration,
            "l2_kib": self.l2_kib,
            "cycles": self.cycles,
            "wall_s": self.wall_s,
            "cores": slots,
        }


# ----------------------------------------------------------------------
# Execution


def _l2_config(scenario: Scenario) -> CacheConfig:
    if scenario.l2_kib is None:
        return L2_512K
    return CacheConfig("L2", scenario.l2_kib * 1024, L2_512K.ways,
                       L2_512K.block_bytes,
                       hit_latency=L2_512K.hit_latency)


def _make_core(slot: CoreSlot, memory: Optional[MemorySystem] = None):
    config = resolve_config_spec(slot.config)
    if isinstance(config, RocketConfig):
        return RocketCore(config, memory=memory)
    return BoomCore(config, memory=memory)


def _shared_memory(uncore: SharedUncore, requestor: int,
                   slot: CoreSlot) -> MemorySystem:
    """A per-core MemorySystem whose L2 is a view of the shared uncore.

    Mirrors :meth:`MemorySystem.build` exactly, with the view standing
    in for the private L2 (the L1 geometry and wiring are unchanged).
    """
    config = resolve_config_spec(slot.config)
    view = uncore.view(requestor)
    l1i = Cache(L1I_32K, next_level=view)
    return MemorySystem(l1i=l1i, l1d_config=config.l1d, l2=view,
                        dram_latency=uncore.dram_latency)


def _solo_metrics(result: CoreResult) -> RequestorMetrics:
    """Uncore metrics equivalent for the threadless solo fast path."""
    stats = result.l2_stats
    return RequestorMetrics(accesses=stats.accesses, misses=stats.misses,
                            self_misses=stats.misses)


def run_scenario(scenario: Union[str, Scenario], *,
                 engine: Optional[str] = None,
                 max_cycles: Optional[int] = None,
                 force_lockstep: bool = False,
                 lockstep_timeout: float = 300.0) -> MulticoreResult:
    """Run *scenario* (a name or a :class:`Scenario`) to completion."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario.validate()
    active = scenario.active_slots()
    started = time.monotonic()

    # The threadless shortcut runs the stock single-core hierarchy, so
    # it only serves scenarios with the stock L2 geometry.
    if len(active) == 1 and not force_lockstep and scenario.l2_kib is None:
        index, slot = active[0]
        trace = build_trace(slot.workload, scale=scenario.scale)
        core = _make_core(slot)
        result = core.run(trace, max_cycles=max_cycles, engine=engine)
        tma = compute_tma(result)
        metrics = _solo_metrics(result)
        attribution = attribute_mem_bound(tma, metrics, DRAM_LATENCY)
        cores = [CoreInterference(
            index=index, workload=slot.workload, config_name=slot.config,
            result=result, tma=tma, attribution=attribution,
            uncore=metrics, bandwidth_share=0.0)]
        return MulticoreResult(
            scenario=scenario.name, scale=scenario.scale,
            shared_bus=scenario.shared_bus,
            arbitration=scenario.arbitration, l2_kib=scenario.l2_kib,
            slots=list(scenario.slots), cores=cores,
            wall_s=time.monotonic() - started)

    # Traces are built up front (and cached), so no thread ever blocks
    # the turnstile on functional execution.
    traces = {i: build_trace(slot.workload, scale=scenario.scale)
              for i, slot in active}
    uncore = SharedUncore(len(scenario.slots),
                          l2_config=_l2_config(scenario),
                          shared_bus=scenario.shared_bus)
    turnstile = CycleTurnstile(len(active),
                               arbitration=scenario.arbitration,
                               timeout=lockstep_timeout)
    results: Dict[int, CoreResult] = {}
    errors: Dict[int, BaseException] = {}

    def drive(ordinal: int, index: int, slot: CoreSlot) -> None:
        try:
            core = _make_core(slot, memory=_shared_memory(uncore, index,
                                                          slot))
            core.fault_hook = TurnstileHook(turnstile, ordinal)
            results[index] = core.run(traces[index],
                                      max_cycles=max_cycles)
        except BaseException as exc:  # noqa: BLE001 - relayed below
            errors[index] = exc
            turnstile.fail(ordinal, exc)
        finally:
            turnstile.finish(ordinal)

    threads = [
        threading.Thread(target=drive, args=(ordinal, index, slot),
                         name=f"mc-{scenario.name}-core{index}",
                         daemon=True)
        for ordinal, (index, slot) in enumerate(active)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if errors:
        index = min(errors)
        first = errors[index]
        # A LockstepError is collateral damage from another core's
        # failure; prefer reporting a root cause when one exists.
        for i in sorted(errors):
            if not isinstance(errors[i], LockstepError):
                index, first = i, errors[i]
                break
        raise MulticoreError(
            f"scenario {scenario.name!r} core {index} "
            f"({scenario.slots[index].workload}) failed: {first}"
        ) from first

    cores = []
    for index, slot in active:
        result = results[index]
        tma = compute_tma(result)
        metrics = uncore.metrics[index]
        attribution = attribute_mem_bound(tma, metrics,
                                          uncore.dram_latency)
        cores.append(CoreInterference(
            index=index, workload=slot.workload, config_name=slot.config,
            result=result, tma=tma, attribution=attribution,
            uncore=metrics,
            bandwidth_share=uncore.bandwidth_share(index)))
    return MulticoreResult(
        scenario=scenario.name, scale=scenario.scale,
        shared_bus=scenario.shared_bus, arbitration=scenario.arbitration,
        l2_kib=scenario.l2_kib, slots=list(scenario.slots), cores=cores,
        wall_s=time.monotonic() - started)


# ----------------------------------------------------------------------
# Cached payload entry point (CLI --json and the service job reuse it)


_MULTICORE_MODULES = ("uncore", "lockstep", "scenarios", "attribution",
                      "harness")

_fingerprint_cache: Optional[str] = None


def multicore_fingerprint() -> str:
    """Model fingerprint extended with the multicore modules' source."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import importlib
        import os

        digest = hashlib.sha256(cache.model_fingerprint().encode())
        for name in _MULTICORE_MODULES:
            module = importlib.import_module(f"repro.multicore.{name}")
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


def scenario_cache_key(scenario: Scenario) -> str:
    """Disk-cache key for one fully-resolved scenario run."""
    digest = hashlib.sha256()
    digest.update(multicore_fingerprint().encode())
    digest.update(scenario.name.encode())
    for slot in scenario.slots:
        digest.update(f"{slot.workload}@{slot.config};".encode())
    digest.update(f"{scenario.scale:.6f}".encode())
    digest.update(f"bus={scenario.shared_bus}".encode())
    digest.update(scenario.arbitration.encode())
    digest.update(f"l2={scenario.l2_kib}".encode())
    return "mc-" + digest.hexdigest()[:24]


def run_scenario_payload(scenario: Union[str, Scenario], *,
                         cores: Optional[int] = None,
                         scale: Optional[float] = None,
                         shared_bus: Optional[bool] = None,
                         arbitration: Optional[str] = None,
                         engine: Optional[str] = None,
                         max_cycles: Optional[int] = None,
                         use_cache: bool = True) -> Dict[str, Any]:
    """Resolve overrides, run (or serve from disk), return the payload.

    The timing engines are bit-identical (the lockstep path always uses
    the traced loop), so — like the CoreResult cache — the key does not
    include *engine*.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario = scenario.with_overrides(cores=cores, scale=scale,
                                       shared_bus=shared_bus,
                                       arbitration=arbitration)
    scenario.validate()
    key = scenario_cache_key(scenario)
    if use_cache:
        cached = cache.load_payload(key)
        if cached is not None:
            return dict(cached, from_cache=True)
    payload = run_scenario(scenario, engine=engine,
                           max_cycles=max_cycles).to_payload()
    if use_cache:
        cache.store_payload(key, payload)
    return dict(payload, from_cache=False)
