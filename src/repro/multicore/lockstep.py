"""Cycle-lockstep execution of several core models in one process.

The core models are single-threaded simulators with a per-cycle hook
seam (:class:`~repro.cores.base.CoreFaultHook`, consulted exactly once
at the top of every simulated cycle on the traced path).  Lockstep
reuses that seam: each core runs on its own thread with a
:class:`TurnstileHook` attached, and the :class:`CycleTurnstile` lets
exactly one core simulate one cycle at a time, in a deterministic
arbitration order — so shared-uncore state (bus cursor, shared LRU) is
mutated in a reproducible global cycle order, independent of OS thread
scheduling.

Arbitration decides who goes first *within* a cycle:

- ``fcfs``: fixed priority by core index (core 0 always first);
- ``round-robin``: the first slot rotates each cycle, so no requestor
  is structurally favored at the shared L2/bus.

A core may simulate cycle ``c`` once every still-running peer that
precedes it in cycle ``c``'s order has *finished* cycle ``c`` (arrived
at ``c+1``) and every peer that follows it has at least *arrived* at
``c``.  Finished or failed cores drop out of the condition, and a
failure wakes every waiter with :class:`LockstepError` instead of
deadlocking.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

#: Effectively-infinite cycle marker for finished cores.
_DONE = 1 << 62

ARBITRATIONS = ("round-robin", "fcfs")


class LockstepError(RuntimeError):
    """A lockstep run lost a peer (error or hang) and cannot continue."""


class CycleTurnstile:
    """Serializes *n* core threads into a deterministic cycle order."""

    def __init__(self, n_cores: int, arbitration: str = "round-robin",
                 timeout: float = 300.0) -> None:
        if arbitration not in ARBITRATIONS:
            raise ValueError(
                f"unknown arbitration {arbitration!r}; "
                f"expected one of {ARBITRATIONS}")
        self.n_cores = n_cores
        self.arbitration = arbitration
        self.timeout = timeout
        self._cond = threading.Condition()
        #: ``ready[i] == c`` means core *i* has completed every cycle
        #: below *c* (it has arrived at its ``stall_cycle(c)`` call).
        self._ready: List[int] = [0] * n_cores
        self._done: List[bool] = [False] * n_cores
        self._failure: Optional[str] = None

    # ------------------------------------------------------------------

    def _priority(self, core: int, cycle: int) -> int:
        """Smaller runs earlier within *cycle*."""
        if self.arbitration == "round-robin":
            return (core - cycle) % self.n_cores
        return core

    def _may_run(self, core: int, cycle: int) -> bool:
        mine = self._priority(core, cycle)
        for other in range(self.n_cores):
            if other == core or self._done[other]:
                continue
            if self._priority(other, cycle) < mine:
                need = cycle + 1  # earlier peer must have finished c
            else:
                need = cycle      # later peer must have arrived at c
            if self._ready[other] < need:
                return False
        return True

    # ------------------------------------------------------------------

    def wait_turn(self, core: int, cycle: int) -> None:
        """Block until *core* may simulate *cycle*."""
        with self._cond:
            if self._ready[core] < cycle:
                self._ready[core] = cycle
                self._cond.notify_all()
            deadline = time.monotonic() + self.timeout
            while not self._may_run(core, cycle):
                if self._failure is not None:
                    raise LockstepError(self._failure)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise LockstepError(
                        f"core {core} waited over {self.timeout:.0f}s at "
                        f"cycle {cycle}; peers ready={self._ready}, "
                        f"done={self._done}")
                self._cond.wait(remaining)
            if self._failure is not None:
                raise LockstepError(self._failure)

    def finish(self, core: int) -> None:
        """Mark *core* as retired from the turnstile (idempotent)."""
        with self._cond:
            self._done[core] = True
            self._ready[core] = _DONE
            self._cond.notify_all()

    def fail(self, core: int, exc: BaseException) -> None:
        """Record a peer failure and release every waiter."""
        with self._cond:
            if self._failure is None:
                self._failure = (
                    f"lockstep peer {core} failed: "
                    f"{type(exc).__name__}: {exc}")
            self._done[core] = True
            self._ready[core] = _DONE
            self._cond.notify_all()


class TurnstileHook:
    """:class:`CoreFaultHook` adapter: blocks for the turn, never stalls.

    Attached as ``core.fault_hook``, which (a) forces the traced loop —
    the per-cycle path already pinned bit-identical to the fast and
    columnar engines — and (b) gets ``stall_cycle`` called exactly once
    per simulated cycle, which is the turnstile's admission point.
    """

    def __init__(self, turnstile: CycleTurnstile, core: int) -> None:
        self.turnstile = turnstile
        self.core = core

    def stall_cycle(self, cycle: int) -> bool:
        self.turnstile.wait_turn(self.core, cycle)
        return False
