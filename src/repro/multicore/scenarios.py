"""Named co-location scenarios: which workload runs on which core.

A scenario is a tuple of core slots (workload + core config), plus the
uncore knobs (shared bus on/off, arbitration).  Slots may name the
reserved ``idle`` pseudo-workload — an idle slot instantiates no core
at all, which is how the solo-equivalence oracle runs one core through
the full multicore stack.

The registry names the mixes the paper-style interference studies keep
reaching for:

- ``noisy-neighbor``: a latency-sensitive Rocket tenant sharing the
  uncore with a bandwidth-hungry BOOM streaming kernel;
- ``symmetric``: two identical tenants — attribution should come out
  statistically symmetric;
- ``latency-victim``: one victim against two aggressors on a 3-core
  socket, the worst-case mix for neighbor-induced misses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..cores.batch import resolve_config_spec
from ..workloads.registry import IDLE_WORKLOAD, get_workload, is_idle

#: Hard cap on scenario width (the harness steps cores in lockstep on
#: threads; beyond 4 the turnstile overhead swamps simulation).
MAX_CORES = 4


@dataclass(frozen=True)
class CoreSlot:
    """One core socket: a workload name and a core-config spec.

    ``config`` accepts any Table IV name or canonical grid-point key
    (``rocket+l1d=4``), the same spec language the batch sweep uses.
    """

    workload: str
    config: str

    @property
    def idle(self) -> bool:
        return is_idle(self.workload)

    def validate(self) -> None:
        if not self.idle:
            get_workload(self.workload)  # raises KeyError on unknowns
        resolve_config_spec(self.config)


@dataclass(frozen=True)
class Scenario:
    """A named co-location mix plus its uncore knobs."""

    name: str
    description: str
    slots: Tuple[CoreSlot, ...]
    scale: float = 1.0
    shared_bus: bool = True
    arbitration: str = "round-robin"
    #: Shared-L2 capacity override in KiB (None = the Table IV 512 KiB).
    #: Capacity-contention scenarios shrink it so co-running working
    #: sets actually collide at scales cheap enough to sweep.
    l2_kib: Optional[int] = None

    def validate(self) -> None:
        if not 1 <= len(self.slots) <= MAX_CORES:
            raise ValueError(
                f"scenario {self.name!r} has {len(self.slots)} slots; "
                f"expected 1..{MAX_CORES}")
        if all(slot.idle for slot in self.slots):
            raise ValueError(
                f"scenario {self.name!r} has no active core")
        if self.l2_kib is not None and self.l2_kib < 1:
            raise ValueError(
                f"scenario {self.name!r}: l2_kib must be positive")
        for slot in self.slots:
            slot.validate()

    def active_slots(self) -> List[Tuple[int, CoreSlot]]:
        """(slot index, slot) for every non-idle slot."""
        return [(i, slot) for i, slot in enumerate(self.slots)
                if not slot.idle]

    def with_overrides(self, cores: Optional[int] = None,
                       scale: Optional[float] = None,
                       shared_bus: Optional[bool] = None,
                       arbitration: Optional[str] = None) -> "Scenario":
        """A copy with CLI/service overrides applied.

        ``cores=N`` trims the mix to its first N slots (or pads with
        idle slots up to N), so one scenario definition serves 2-, 3-
        and 4-core sockets.
        """
        scenario = self
        if cores is not None:
            if not 1 <= cores <= MAX_CORES:
                raise ValueError(
                    f"cores must be 1..{MAX_CORES}, got {cores}")
            slots = list(scenario.slots[:cores])
            while len(slots) < cores:
                slots.append(CoreSlot(IDLE_WORKLOAD, "rocket"))
            scenario = replace(scenario, slots=tuple(slots))
        if scale is not None:
            scenario = replace(scenario, scale=scale)
        if shared_bus is not None:
            scenario = replace(scenario, shared_bus=shared_bus)
        if arbitration is not None:
            scenario = replace(scenario, arbitration=arbitration)
        return scenario


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="noisy-neighbor",
            description=("latency-sensitive Rocket tenant vs. a "
                         "bandwidth-hungry BOOM streaming neighbor"),
            slots=(CoreSlot("median", "rocket"),
                   CoreSlot("spmv", "large-boom")),
        ),
        Scenario(
            name="symmetric",
            description="two identical streaming tenants, fair-share check",
            slots=(CoreSlot("vvadd", "rocket"),
                   CoreSlot("vvadd", "rocket")),
        ),
        Scenario(
            name="latency-victim",
            description=("one pointer-chasing victim against two "
                         "streaming aggressors on a 3-core socket"),
            slots=(CoreSlot("qsort", "rocket"),
                   CoreSlot("mm", "large-boom"),
                   CoreSlot("spmv", "rocket")),
        ),
        Scenario(
            name="capacity-clash",
            description=("two cache-pressured radix sorts (tiny L1Ds) "
                         "over a deliberately small shared L2 — "
                         "capacity eviction makes neighbor-induced "
                         "misses visible"),
            slots=(CoreSlot("rsort", "rocket+l1d=4"),
                   CoreSlot("rsort", "large-boom+l1d=4")),
            l2_kib=8,
        ),
    )
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None
