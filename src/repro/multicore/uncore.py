"""Shared uncore: one L2 array + DRAM bus shared by N core requestors.

The single-core memory system gives every core a private
:class:`~repro.uarch.cache.MemorySystem` whose L2 owns the DRAM bus.
Multicore scenarios instead build ONE :class:`SharedUncore` and hand
each core an :class:`L2View` — a duck-typed stand-in for the private L2
that routes accesses into the shared array tagged with the core's
requestor index.

Design constraints (all load-bearing for the solo-identity oracle):

- **Same arithmetic as solo.**  The shared array is a plain
  :class:`~repro.uarch.cache.Cache` with ``bus_gap=0``; the DRAM bus is
  modelled *here* with exactly the cursor arithmetic the solo L2 uses
  (including the ``cycle=None`` path BOOM's next-line I$ prefetch
  exercises).  With one active requestor the shared path is therefore
  cycle-identical to :meth:`MemorySystem.build`'s private L2.
- **Tag coloring.**  Requestor *r*'s address is offset by
  ``r << COLOR_SHIFT`` before touching the array, so different cores
  never share blocks (no coherence model) while still competing for
  the same sets and ways.  ``COLOR_SHIFT`` sits far above the set-index
  bits, so set mapping is unchanged and a single requestor sees
  *exactly* its solo behavior (a constant tag offset).
- **Shadow tags.**  Every requestor also probes a private shadow array
  (same geometry, own stream only) on *every* access, keeping the
  shadow's LRU state exactly what a solo run would hold.  A shared-mode
  miss that the shadow *hits* is neighbor-induced; a miss the shadow
  also misses would have happened solo.  LRU stack inclusion guarantees
  a shared-mode hit is always a shadow hit, so the split is total.
- **Accounting-only MSHRs.**  Per-requestor L2 MSHR files record
  allocations/merges/occupancy for the metrics surface without feeding
  back into timing (which would break solo identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..uarch.cache import (
    DRAM_BLOCK_GAP,
    DRAM_LATENCY,
    L2_512K,
    Cache,
    CacheConfig,
    CacheStats,
    MSHRFile,
)

#: Bit position of the requestor color in shared-array addresses.  Far
#: above any set-index bit of a realistic L2 geometry (a 512 KiB 8-way
#: L2 indexes with bits 6..15), so coloring shifts tags, never sets.
COLOR_SHIFT = 48

#: Accounting-only L2 MSHRs tracked per requestor (BOOM's largest L1D
#: MSHR file in Table IV is 8; the L2 sees at most that many in flight).
L2_MSHRS_PER_REQUESTOR = 8


@dataclass
class RequestorMetrics:
    """Uncore-side occupancy/bandwidth accounting for one requestor."""

    #: Shared-array accesses / misses seen from this requestor (equal to
    #: the array's per-requestor CacheStats; duplicated here so the
    #: metrics object is self-contained for payloads).
    accesses: int = 0
    misses: int = 0
    #: Miss split decided by the shadow tag array.
    self_misses: int = 0
    neighbor_induced_misses: int = 0
    #: DRAM-bus wait cycles, attributed by who last held the bus.
    bus_wait_self: int = 0
    bus_wait_neighbor: int = 0
    #: Bus occupancy: cycles of DRAM bandwidth this requestor consumed.
    bus_busy_cycles: int = 0
    #: Accounting-only L2 MSHR telemetry.
    mshr_allocations: int = 0
    mshr_merges: int = 0
    mshr_peak_busy: int = 0

    @property
    def bus_wait_total(self) -> int:
        return self.bus_wait_self + self.bus_wait_neighbor

    def to_payload(self) -> Dict[str, int]:
        return {
            "accesses": self.accesses,
            "misses": self.misses,
            "self_misses": self.self_misses,
            "neighbor_induced_misses": self.neighbor_induced_misses,
            "bus_wait_self": self.bus_wait_self,
            "bus_wait_neighbor": self.bus_wait_neighbor,
            "bus_busy_cycles": self.bus_busy_cycles,
            "mshr_allocations": self.mshr_allocations,
            "mshr_merges": self.mshr_merges,
            "mshr_peak_busy": self.mshr_peak_busy,
        }


class SharedUncore:
    """Shared L2 array + DRAM bus arbitrated between *n* requestors.

    ``shared_bus=False`` gives every requestor a private DRAM-bus
    cursor — the solo bandwidth model — which disables cross-core
    bandwidth contention while keeping capacity/conflict contention in
    the shared array.  The solo-equivalence oracle runs with one active
    requestor, where both settings are provably identical.
    """

    def __init__(self, n_requestors: int,
                 l2_config: CacheConfig = L2_512K,
                 dram_latency: int = DRAM_LATENCY,
                 bus_gap: int = DRAM_BLOCK_GAP,
                 shared_bus: bool = True,
                 mshrs_per_requestor: int = L2_MSHRS_PER_REQUESTOR) -> None:
        if n_requestors < 1:
            raise ValueError("uncore needs at least one requestor")
        self.n_requestors = n_requestors
        self.dram_latency = dram_latency
        self.bus_gap = bus_gap
        self.shared_bus = shared_bus
        # The shared array: bus handled here, not inside the Cache.
        self.array = Cache(l2_config, next_level=None,
                           next_latency=dram_latency, bus_gap=0)
        # Private solo-replay shadows (no next level, no bus).
        self.shadows: List[Cache] = [
            Cache(l2_config, next_level=None, next_latency=dram_latency,
                  bus_gap=0)
            for _ in range(n_requestors)
        ]
        self.mshr_files: List[MSHRFile] = [
            MSHRFile(mshrs_per_requestor) for _ in range(n_requestors)
        ]
        self.metrics: List[RequestorMetrics] = [
            RequestorMetrics() for _ in range(n_requestors)
        ]
        self._bus_free = 0
        self._bus_free_private = [0] * n_requestors
        self._last_bus_user: Optional[int] = None

    # ------------------------------------------------------------------

    def view(self, requestor: int) -> "L2View":
        """The per-core L2 stand-in for *requestor*."""
        return L2View(self, requestor)

    def color(self, requestor: int, addr: int) -> int:
        return addr + (requestor << COLOR_SHIFT)

    def requestor_stats(self, requestor: int) -> CacheStats:
        """This requestor's slice of the shared array's stats."""
        return self.array.per_requestor(requestor)

    def access(self, requestor: int, addr: int, is_store: bool = False,
               cycle: Optional[int] = None) -> Tuple[bool, int]:
        """One L2 access from *requestor*; mirrors ``Cache.access``."""
        met = self.metrics[requestor]
        met.accesses += 1
        # Shadow replay first, with the *uncolored* address: the shadow
        # must see the exact solo access stream (hits included) so its
        # LRU state tracks what a private L2 would hold.
        shadow_hit, _ = self.shadows[requestor].access(
            addr, is_store=is_store, cycle=None)
        hit, latency = self.array.access(
            self.color(requestor, addr), is_store=is_store, cycle=cycle,
            requestor=requestor)
        if hit:
            return True, latency
        met.misses += 1
        if shadow_hit:
            met.neighbor_induced_misses += 1
        else:
            met.self_misses += 1
        total = self._arbitrate_bus(requestor, met, cycle, latency)
        self._account_mshr(requestor, met, addr, cycle, total)
        return False, total

    def _arbitrate_bus(self, requestor: int, met: RequestorMetrics,
                       cycle: Optional[int], latency: int) -> int:
        """DRAM-bus spacing — the exact solo cursor arithmetic, but on a
        shared (or per-requestor) cursor with wait attribution."""
        total = latency
        if not self.bus_gap:
            return total
        if cycle is not None:
            free = (self._bus_free if self.shared_bus
                    else self._bus_free_private[requestor])
            arrival = max(cycle + total, free + self.bus_gap)
            wait = arrival - (cycle + total)
            if wait > 0:
                if (self.shared_bus
                        and self._last_bus_user is not None
                        and self._last_bus_user != requestor):
                    met.bus_wait_neighbor += wait
                else:
                    met.bus_wait_self += wait
            if self.shared_bus:
                self._bus_free = arrival
            else:
                self._bus_free_private[requestor] = arrival
            total = arrival - cycle
        else:
            # Blocking callers serialize anyway; advance the bus so
            # concurrent agents still contend (solo L2 does the same).
            if self.shared_bus:
                self._bus_free += self.bus_gap
            else:
                self._bus_free_private[requestor] += self.bus_gap
        if self.shared_bus:
            self._last_bus_user = requestor
        met.bus_busy_cycles += self.bus_gap
        return total

    def _account_mshr(self, requestor: int, met: RequestorMetrics,
                      addr: int, cycle: Optional[int], total: int) -> None:
        """Accounting-only MSHR occupancy (never affects timing)."""
        if cycle is None:
            return
        mshrs = self.mshr_files[requestor]
        block = self.array.block_address(addr)
        mshrs.allocate(block, cycle + total, cycle)
        met.mshr_allocations = mshrs.allocations
        met.mshr_merges = mshrs.merges
        busy = mshrs.busy(cycle)
        if busy > met.mshr_peak_busy:
            met.mshr_peak_busy = busy

    def bandwidth_share(self, requestor: int) -> float:
        """Fraction of consumed DRAM bandwidth used by *requestor*."""
        total = sum(m.bus_busy_cycles for m in self.metrics)
        if not total:
            return 0.0
        return self.metrics[requestor].bus_busy_cycles / total


class L2View:
    """Duck-typed private-L2 stand-in routing into a :class:`SharedUncore`.

    Implements the slice of the :class:`~repro.uarch.cache.Cache`
    interface the L1s and core models actually use (``access``,
    ``lookup``, ``block_address``, ``flush``, ``config``, ``stats``), so
    a :class:`~repro.uarch.cache.MemorySystem` can carry it as its
    ``l2`` and the cores need no changes at all.
    """

    def __init__(self, uncore: SharedUncore, requestor: int) -> None:
        self.uncore = uncore
        self.requestor = requestor
        self.config = uncore.array.config
        self.next_level = None

    @property
    def stats(self) -> CacheStats:
        """This requestor's slice — what lands in ``CoreResult.l2_stats``."""
        return self.uncore.requestor_stats(self.requestor)

    def access(self, addr: int, is_store: bool = False,
               cycle: Optional[int] = None) -> Tuple[bool, int]:
        return self.uncore.access(self.requestor, addr, is_store=is_store,
                                  cycle=cycle)

    def lookup(self, addr: int) -> bool:
        return self.uncore.array.lookup(self.uncore.color(self.requestor,
                                                          addr))

    def block_address(self, addr: int) -> int:
        return self.uncore.array.block_address(addr)

    def flush(self) -> None:
        """Invalidate only this requestor's blocks (neighbors keep theirs).

        No current core flushes the L2 (``fence.i`` flushes the L1I), so
        this exists for interface completeness, not the hot path.
        """
        array = self.uncore.array
        lo = self.requestor << (COLOR_SHIFT - array._set_shift)
        hi = (self.requestor + 1) << (COLOR_SHIFT - array._set_shift)
        for set_index, blocks in enumerate(array._sets):
            mine = [tag for tag in blocks if lo <= tag < hi]
            for tag in mine:
                blocks.remove(tag)
                array._dirty[set_index].pop(tag, None)
        self.uncore.shadows[self.requestor].flush()
