"""PMU: performance events, counter architectures, CSR file, harness."""

from .counters import (AddWiresCounterBank, COUNTER_ARCHITECTURES,
                       ClassicOrCounter, CounterSpec,
                       DistributedCounterBank, ScalarCounterBank,
                       make_counter_bank)
from .csr import CsrFile, INCREMENT_MODES
from .events import (BOOM_EVENTS, Event, EventSet, ROCKET_EVENTS, TmaLevel,
                     decode_selector, encode_selector, events_for_core,
                     new_events_for_core)
from .harness import (CounterAssignment, Measurement, PerfHarness,
                      make_core)
from .sampling import (MultiplexedCsrFile, SamplingComparison,
                       measure_sampled)

__all__ = [
    "AddWiresCounterBank",
    "BOOM_EVENTS",
    "COUNTER_ARCHITECTURES",
    "ClassicOrCounter",
    "CounterAssignment",
    "CounterSpec",
    "CsrFile",
    "DistributedCounterBank",
    "Event",
    "EventSet",
    "INCREMENT_MODES",
    "Measurement",
    "MultiplexedCsrFile",
    "PerfHarness",
    "SamplingComparison",
    "ROCKET_EVENTS",
    "ScalarCounterBank",
    "TmaLevel",
    "decode_selector",
    "encode_selector",
    "events_for_core",
    "make_core",
    "make_counter_bank",
    "measure_sampled",
    "new_events_for_core",
]
