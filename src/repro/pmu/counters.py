"""Behavioural models of the three PMU counter architectures (Fig. 6).

The paper's problem: wide cores assert the *same* event on several
sources (lanes) in one cycle, but a classic Rocket-style counter can only
increment by one.  Icicle evaluates three implementations:

- :class:`ScalarCounterBank` — the naïve scheme: one hardware counter per
  event *source*.  Exact, but burns one of the 31 counters per lane.
- :class:`AddWiresCounterBank` — Fig. 6a: local adders aggregate the
  per-source wires into one multi-bit increment per counter.  Exact and
  counter-frugal, but the sequential adder chain grows with the number of
  sources (the Fig. 9b delay scaling).
- :class:`DistributedCounterBank` — Fig. 6b: an N-bit local counter at
  each source sets an overflow flag every 2^N events; a rotating one-hot
  arbiter drains one flag per cycle into the principal counter.  All
  wires stay one bit wide, but software must post-process the value
  (``principal * 2^N``) and the architecture *undercounts* by whatever is
  left in the local counters — bounded by ``sources * (2^N - 1)`` after a
  drain, the §IV-B bound.

There is also :class:`ClassicOrCounter`, the pre-Icicle behaviour of
Fig. 1 (mapped events OR together; at most +1 per cycle), kept as the
baseline the paper argues is insufficient for wide pipelines.

All banks are :class:`~repro.cores.base.SignalObserver` implementations:
attach them to a core and they consume the same per-cycle lane bitmasks
the tracer sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from .events import Event, events_for_core


@dataclass(frozen=True)
class CounterSpec:
    """One logical counter: a set of same-event-set events to track."""

    events: tuple
    name: str = ""

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a counter needs at least one event")


def _validate_event_set(events: Sequence[Event], spec_name: str) -> None:
    sets = {event.event_set for event in events}
    if len(sets) > 1:
        raise ValueError(
            f"counter {spec_name!r} mixes event sets {sorted(sets)}; "
            "hardware only multiplexes events within one set (§II-A)")


class _BankBase:
    """Shared bookkeeping: resolve event names, track lane widths."""

    def __init__(self, core: str, event_names: Sequence[str]) -> None:
        registry = events_for_core(core)
        self.core = core
        self.event_names = list(event_names)
        self.events: Dict[str, Event] = {}
        for name in event_names:
            if name not in registry:
                raise ValueError(f"unknown event {name!r} for core {core}")
            self.events[name] = registry[name]
        #: Highest lane index seen per event (sources discovered online).
        self.sources_seen: Dict[str, int] = {name: 1 for name in event_names}

    def _note_width(self, name: str, mask: int) -> None:
        width = mask.bit_length()
        if width > self.sources_seen[name]:
            self.sources_seen[name] = width


class ScalarCounterBank(_BankBase):
    """One counter per event source: the exact (and expensive) baseline."""

    def __init__(self, core: str, event_names: Sequence[str],
                 max_lanes: int = 16) -> None:
        super().__init__(core, event_names)
        self.max_lanes = max_lanes
        self._lanes: Dict[str, List[int]] = {
            name: [0] * max_lanes for name in event_names}

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        for name in self.event_names:
            mask = signals.get(name, 0)
            if not mask:
                continue
            self._note_width(name, mask)
            lanes = self._lanes[name]
            bit = 0
            while mask:
                if mask & 1:
                    lanes[bit] += 1
                mask >>= 1
                bit += 1

    def read_lane(self, name: str, lane: int) -> int:
        """Value of the dedicated counter for (event, source lane)."""
        return self._lanes[name][lane]

    def read_event(self, name: str) -> int:
        """Total slots across all of the event's source counters."""
        return sum(self._lanes[name])

    def counters_used(self) -> int:
        """Number of hardware counters this scheme occupies."""
        return sum(self.sources_seen[name] for name in self.event_names)


class AddWiresCounterBank(_BankBase):
    """Fig. 6a: per-event adder chain feeding a multi-bit increment."""

    def __init__(self, core: str, event_names: Sequence[str]) -> None:
        super().__init__(core, event_names)
        self._values: Dict[str, int] = {name: 0 for name in event_names}

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        for name in self.event_names:
            mask = signals.get(name, 0)
            if not mask:
                continue
            self._note_width(name, mask)
            # The adder chain sums the per-source wires; behaviourally
            # this is an exact popcount increment.
            self._values[name] += mask.bit_count()

    def read_event(self, name: str) -> int:
        return self._values[name]

    def increment_width(self, name: str) -> int:
        """Bits of the increment bus (pad target when sharing counters)."""
        return max(1, math.ceil(math.log2(self.sources_seen[name] + 1)))

    def adder_chain_length(self, name: str) -> int:
        """Sequential adders between the farthest source and the counter."""
        return max(0, self.sources_seen[name] - 1)

    def counters_used(self) -> int:
        return len(self.event_names)


class _DistributedEventState:
    """Local counters + overflow flags + rotating arbiter for one event."""

    __slots__ = ("sources", "width", "locals_", "overflow", "pointer",
                 "principal")

    def __init__(self, sources: int) -> None:
        self.sources = max(1, sources)
        # Local counters must hold at least one arbiter round of events.
        self.width = max(1, math.ceil(math.log2(self.sources)))
        self.locals_ = [0] * self.sources
        self.overflow = [False] * self.sources
        self.pointer = 0
        self.principal = 0

    @property
    def wrap(self) -> int:
        return 1 << self.width

    def step(self, mask: int) -> None:
        """One cycle: count events, then arbitrate one overflow flag."""
        if mask:
            bit = 0
            while mask:
                if mask & 1:
                    value = self.locals_[bit] + 1
                    if value >= self.wrap:
                        self.locals_[bit] = 0
                        self.overflow[bit] = True
                    else:
                        self.locals_[bit] = value
                mask >>= 1
                bit += 1
        # Rotating one-hot select: examine one source per cycle; a set
        # flag increments the principal counter and clears (read-clear).
        sel = self.pointer
        if self.overflow[sel]:
            self.principal += 1
            self.overflow[sel] = False
        self.pointer = (sel + 1) % self.sources


class DistributedCounterBank(_BankBase):
    """Fig. 6b: local per-source counters + rotating one-hot arbiter.

    ``read_event`` applies the software post-processing the artifact
    appendix describes (``principal * 2^N``); ``undercount`` exposes the
    residue for accuracy studies, and ``drain`` models the end-of-run
    arbiter rounds that collect still-pending overflow flags.
    """

    def __init__(self, core: str, event_names: Sequence[str],
                 sources: Optional[Mapping[str, int]] = None) -> None:
        super().__init__(core, event_names)
        self._states: Dict[str, _DistributedEventState] = {}
        self._fixed_sources = dict(sources or {})

    def _state(self, name: str, mask: int) -> _DistributedEventState:
        state = self._states.get(name)
        width = self._fixed_sources.get(name, 0) or mask.bit_length() or 1
        if state is None:
            state = _DistributedEventState(width)
            self._states[name] = state
        elif width > state.sources:
            # A wider mask than anticipated: grow the structure, keeping
            # existing counts (models re-synthesis with more sources).
            grown = _DistributedEventState(width)
            grown.locals_[:state.sources] = state.locals_
            grown.overflow[:state.sources] = state.overflow
            carried = state.principal * state.wrap
            grown.principal = carried // grown.wrap
            extra = carried % grown.wrap + grown.locals_[0]
            grown.locals_[0] = extra % grown.wrap
            if extra >= grown.wrap:
                grown.overflow[0] = True
            self._states[name] = grown
            state = grown
        return state

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        for name in self.event_names:
            mask = signals.get(name, 0)
            if mask:
                self._note_width(name, mask)
            state = self._states.get(name)
            if state is None and not mask:
                continue
            self._state(name, mask).step(mask)

    def drain(self) -> None:
        """Run one full arbiter rotation with no new events.

        This collects every pending overflow flag, so the remaining
        undercount is only what sits in the local counters — the
        ``sources * (2^N - 1)`` bound of §IV-B.
        """
        for state in self._states.values():
            for _ in range(state.sources):
                state.step(0)

    def read_event(self, name: str) -> int:
        """Software-visible value after ×2^N post-processing."""
        state = self._states.get(name)
        if state is None:
            return 0
        return state.principal * state.wrap

    def exact_event(self, name: str) -> int:
        """The true count (principal + flags + local residues)."""
        state = self._states.get(name)
        if state is None:
            return 0
        pending = sum(state.wrap for flag in state.overflow if flag)
        return (state.principal * state.wrap + pending
                + sum(state.locals_))

    def undercount(self, name: str) -> int:
        """How much the software-visible value undercounts right now."""
        return self.exact_event(name) - self.read_event(name)

    def undercount_bound(self, name: str) -> int:
        """Worst-case undercount after a drain (§IV-B)."""
        state = self._states.get(name)
        if state is None:
            return 0
        return state.sources * (state.wrap - 1)

    def counters_used(self) -> int:
        return len(self.event_names)


class ClassicOrCounter(_BankBase):
    """Pre-Icicle Fig. 1 behaviour: OR of mapped events, +1 per cycle.

    Two mapped events (or two lanes of one event) asserting in the same
    cycle still increment by one — the undercount that motivates the new
    architectures (§II-A, emphasised in the paper in italics).
    """

    def __init__(self, core: str, event_names: Sequence[str],
                 name: str = "counter") -> None:
        super().__init__(core, event_names)
        registry = events_for_core(core)
        _validate_event_set([registry[n] for n in event_names], name)
        self.name = name
        self.value = 0

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        for event_name in self.event_names:
            if signals.get(event_name, 0):
                self.value += 1
                return

    def read(self) -> int:
        return self.value


#: Registry of architecture names used by the harness/benches.
COUNTER_ARCHITECTURES = ("scalar", "adders", "distributed")


def make_counter_bank(architecture: str, core: str,
                      event_names: Sequence[str]):
    """Factory: build a counter bank of the requested architecture."""
    if architecture == "scalar":
        return ScalarCounterBank(core, event_names)
    if architecture == "adders":
        return AddWiresCounterBank(core, event_names)
    if architecture == "distributed":
        return DistributedCounterBank(core, event_names)
    raise ValueError(
        f"unknown counter architecture {architecture!r}; "
        f"choose from {COUNTER_ARCHITECTURES}")
