"""CSR-file model: the software-visible face of the PMU (§IV-D).

Matches the privileged-spec layout the harness programs: ``mcycle`` /
``minstret`` plus 29 programmable ``mhpmcounter3..31`` (31 counters
total, as in Table IV), each with an ``mhpmevent`` selector holding an
8-bit event-set ID and a 56-bit event mask, gated by ``mcountinhibit``.

The increment logic behind each programmable counter is pluggable with
the counter architectures of :mod:`repro.pmu.counters`:

- ``classic`` — the Fig. 1 OR behaviour (+1 per cycle at most),
- ``adders`` — multi-bit increment (exact popcount across mapped events),
- ``distributed`` — local counters + rotating arbiter per counter, whose
  software read needs the ×2^N post-processing.

The CSR file is itself a :class:`~repro.cores.base.SignalObserver`, so
attaching it to a core models in-band counting end to end.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..isa.csrs import (FIRST_HPM_INDEX, LAST_HPM_INDEX, MCOUNTINHIBIT,
                        MCYCLE, MINSTRET, mhpmcounter_addr, mhpmevent_addr)
from .counters import _DistributedEventState, _validate_event_set
from .events import Event, decode_selector

#: Inhibit-register bit positions: bit 0 = mcycle, bit 2 = minstret,
#: bits 3..31 = the programmable counters (bit 1 is reserved, as in the
#: privileged spec).
_CYCLE_BIT = 0
_INSTRET_BIT = 2

INCREMENT_MODES = ("classic", "adders", "distributed")


class _ProgrammableCounter:
    """One mhpmcounter with its selector and increment logic."""

    def __init__(self, index: int, mode: str) -> None:
        self.index = index
        self.mode = mode
        self.selector = 0
        self.events: List[Event] = []
        self.value = 0
        self._distributed: Optional[_DistributedEventState] = None

    def program(self, selector: int, core: str) -> None:
        self.selector = selector
        if selector == 0:
            self.events = []
            return
        _, events = decode_selector(selector, core)
        _validate_event_set(events, f"mhpmcounter{self.index}")
        self.events = events
        self.value = 0
        self._distributed = None

    def step(self, signals: Mapping[str, int]) -> None:
        if not self.events:
            return
        if self.mode == "classic":
            for event in self.events:
                if signals.get(event.name, 0):
                    self.value += 1
                    return
            return
        if self.mode == "adders":
            # The adder chain sums every source wire of every mapped
            # event; narrower increment signals are zero-padded to the
            # widest (the padding complication of §IV-B), which leaves
            # the arithmetic an exact popcount.
            increment = 0
            for event in self.events:
                increment += signals.get(event.name, 0).bit_count()
            self.value += increment
            return
        # distributed: mapped events share the per-source local counters,
        # so their lane masks OR together before counting.
        combined = 0
        for event in self.events:
            combined |= signals.get(event.name, 0)
        # distributed
        if self._distributed is None or \
                combined.bit_length() > self._distributed.sources:
            sources = max(1, combined.bit_length())
            fresh = _DistributedEventState(sources)
            if self._distributed is not None:
                carried = (self._distributed.principal
                           * self._distributed.wrap
                           + sum(self._distributed.locals_))
                fresh.principal = carried // fresh.wrap
                fresh.locals_[0] = carried % fresh.wrap
            self._distributed = fresh
        self._distributed.step(combined)
        self.value = self._distributed.principal

    def software_value(self) -> int:
        """Raw CSR read (distributed values still need ×2^N scaling)."""
        return self.value

    def corrected_value(self) -> int:
        """Post-processed value (the artifact's counter comparison)."""
        if self.mode == "distributed" and self._distributed is not None:
            return self.value * self._distributed.wrap
        return self.value

    def drain(self) -> None:
        if self._distributed is not None:
            for _ in range(self._distributed.sources):
                self._distributed.step(0)
            self.value = self._distributed.principal


class CsrFile:
    """The machine-mode counter CSRs plus inhibit/selector state."""

    def __init__(self, core: str = "boom",
                 increment_mode: str = "adders",
                 fault_injector=None) -> None:
        if increment_mode not in INCREMENT_MODES:
            raise ValueError(
                f"unknown increment mode {increment_mode!r}; "
                f"choose from {INCREMENT_MODES}")
        self.core = core
        self.increment_mode = increment_mode
        #: Optional :class:`repro.reliability.faults.FaultInjector`-style
        #: hook.  ``on_signals`` may perturb the per-cycle lane masks
        #: before they reach the counters (dropped increments);
        #: ``on_counter_read`` may perturb values at read time
        #: (bit-flips).  ``None`` (the default) is the healthy PMU.
        self.fault_injector = fault_injector
        self.mcycle = 0
        self.minstret = 0
        # All counters start inhibited; step (4) of the harness clears
        # the bits to start counting (§IV-D).
        self.mcountinhibit = (1 << 32) - 1
        self.counters: Dict[int, _ProgrammableCounter] = {
            index: _ProgrammableCounter(index, increment_mode)
            for index in range(FIRST_HPM_INDEX, LAST_HPM_INDEX + 1)}
        self.enabled = False

    # ------------------------------------------------------------------
    # software interface (CSR reads/writes by address)
    # ------------------------------------------------------------------

    def write(self, addr: int, value: int) -> None:
        if addr == MCOUNTINHIBIT:
            self.mcountinhibit = value
            return
        if addr == MCYCLE:
            self.mcycle = value
            return
        if addr == MINSTRET:
            self.minstret = value
            return
        for index, counter in self.counters.items():
            if addr == mhpmevent_addr(index):
                counter.program(value, self.core)
                return
            if addr == mhpmcounter_addr(index):
                counter.value = value
                return
        # Unknown CSRs are ignored (WARL behaviour).

    def read(self, addr: int) -> int:
        if addr == MCOUNTINHIBIT:
            return self.mcountinhibit
        if addr == MCYCLE:
            return self.mcycle
        if addr == MINSTRET:
            return self.minstret
        for index, counter in self.counters.items():
            if addr == mhpmevent_addr(index):
                return counter.selector
            if addr == mhpmcounter_addr(index):
                return counter.software_value()
        return 0

    def inhibited(self, bit: int) -> bool:
        return bool((self.mcountinhibit >> bit) & 1)

    # ------------------------------------------------------------------
    # hardware interface
    # ------------------------------------------------------------------

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        if self.fault_injector is not None:
            signals = self.fault_injector.on_signals(cycle, signals)
        if not self.inhibited(_CYCLE_BIT):
            self.mcycle += 1
        if not self.inhibited(_INSTRET_BIT) \
                and signals.get("instr_retired", 0):
            self.minstret += signals["instr_retired"].bit_count()
        for index, counter in self.counters.items():
            if not self.inhibited(index):
                counter.step(signals)

    # ------------------------------------------------------------------
    # convenience used by the harness
    # ------------------------------------------------------------------

    def counter_for(self, index: int) -> _ProgrammableCounter:
        return self.counters[index]

    def corrected_value_for(self, index: int) -> int:
        """Post-processed read of one counter, through the fault hook."""
        value = self.counters[index].corrected_value()
        if self.fault_injector is not None:
            value = self.fault_injector.on_counter_read(index, value)
        return value

    def corrected_values(self) -> Dict[int, int]:
        """Post-processed values of all programmed counters."""
        return {index: counter.corrected_value()
                for index, counter in self.counters.items()
                if counter.events}

    def drain(self) -> None:
        """End-of-run arbiter drain for the distributed architecture."""
        for counter in self.counters.values():
            counter.drain()
