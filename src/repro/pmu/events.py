"""Performance event definitions for Rocket and BOOM (Table I).

Events are grouped into *event sets* (Basic, Microarchitectural, Memory,
and the TMA set added by Icicle).  A counter may be driven by any subset
of events from a single event set (§II-A, Fig. 1); the hardware encoding
is an 8-bit event-set ID plus a 56-bit event mask written to
``mhpmeventN`` (§IV-D).

Each event is identified by a stable string name; the core timing models
emit a per-cycle bitmask of asserted source lanes for each event, and the
counter architectures in :mod:`repro.pmu.counters` consume those masks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class EventSet(enum.IntEnum):
    """Hardware event-set IDs (low byte of mhpmeventN)."""

    BASIC = 0
    MICROARCH = 1
    MEMORY = 2
    TMA = 3


class TmaLevel(enum.Enum):
    """Where in the TMA hierarchy an added event is consumed (Table I)."""

    NONE = "none"
    TOP = "top"       # dagger in Table I
    LOWER = "lower"   # double-dagger in Table I


@dataclass(frozen=True)
class Event:
    """One performance event.

    Attributes:
        name: stable identifier, also the signal name the cores emit.
        event_set: hardware event set the event belongs to.
        bit: bit position inside the set's 56-bit mask.
        is_new: True for the events Icicle adds (starred in Table I).
        tma_level: TMA hierarchy level the event feeds.
        per_lane: True when the event has one source per pipeline lane
            (the width is core-config dependent); False for single-source
            events.
        description: human-readable summary.
    """

    name: str
    event_set: EventSet
    bit: int
    is_new: bool = False
    tma_level: TmaLevel = TmaLevel.NONE
    per_lane: bool = False
    description: str = ""

    @property
    def selector(self) -> int:
        """The mhpmevent encoding selecting exactly this event."""
        return int(self.event_set) | (1 << (8 + self.bit))


def _build(events: List[Event]) -> Dict[str, Event]:
    table: Dict[str, Event] = {}
    used: Dict[Tuple[EventSet, int], str] = {}
    for event in events:
        if event.name in table:
            raise ValueError(f"duplicate event {event.name}")
        key = (event.event_set, event.bit)
        if key in used:
            raise ValueError(
                f"events {used[key]} and {event.name} share bit {key}")
        used[key] = event.name
        table[event.name] = event
    return table


# ---------------------------------------------------------------------------
# Rocket events (Table I, upper half).  The three starred TMA events are
# the ones Icicle adds to Rocket.
# ---------------------------------------------------------------------------

ROCKET_EVENTS: Dict[str, Event] = _build([
    # Basic set.
    Event("cycles", EventSet.BASIC, 0, description="core clock cycles"),
    Event("instr_retired", EventSet.BASIC, 1,
          description="architecturally retired instructions"),
    Event("load", EventSet.BASIC, 2, description="retired loads"),
    Event("store", EventSet.BASIC, 3, description="retired stores"),
    Event("atomic", EventSet.BASIC, 4, description="retired AMOs"),
    Event("system", EventSet.BASIC, 5, description="retired system instrs"),
    Event("arith", EventSet.BASIC, 6, description="retired arithmetic"),
    Event("branch", EventSet.BASIC, 7, description="retired branches"),
    Event("fence", EventSet.BASIC, 8, tma_level=TmaLevel.TOP,
          description="retired fences (used for M_tf)"),
    # Microarchitectural set.
    Event("load_use_interlock", EventSet.MICROARCH, 0,
          description="load-use interlock stall cycles"),
    Event("long_latency_interlock", EventSet.MICROARCH, 1,
          description="long-latency writeback interlock cycles"),
    Event("csr_interlock", EventSet.MICROARCH, 2,
          description="CSR access interlock cycles"),
    Event("icache_blocked", EventSet.MICROARCH, 3,
          description="cycles frontend blocked on I$ refill"),
    Event("dcache_blocked", EventSet.MICROARCH, 4,
          description="cycles pipeline blocked on D$"),
    Event("cobr_mispredict", EventSet.MICROARCH, 5,
          description="conditional branch direction mispredicts"),
    Event("flush", EventSet.MICROARCH, 6,
          description="pipeline machine flushes"),
    Event("replay", EventSet.MICROARCH, 7,
          description="instruction replays"),
    Event("cf_target_mispredict", EventSet.MICROARCH, 8,
          description="control-flow target mispredicts"),
    Event("muldiv_interlock", EventSet.MICROARCH, 9,
          description="mul/div busy interlock cycles"),
    Event("cf_interlock", EventSet.MICROARCH, 10,
          description="control-flow interlock cycles"),
    # Memory set.
    Event("icache_miss", EventSet.MEMORY, 0, description="L1I misses"),
    Event("dcache_miss", EventSet.MEMORY, 1, description="L1D misses"),
    Event("dcache_release", EventSet.MEMORY, 2,
          description="L1D writebacks/releases"),
    Event("itlb_miss", EventSet.MEMORY, 3, description="ITLB misses"),
    Event("dtlb_miss", EventSet.MEMORY, 4, description="DTLB misses"),
    Event("l2_tlb_miss", EventSet.MEMORY, 5, description="L2 TLB misses"),
    # TMA set — the events this work adds to Rocket (§IV-A).
    Event("instr_issued", EventSet.TMA, 0, is_new=True,
          tma_level=TmaLevel.TOP,
          description="instructions entering execute (incl. later flushed)"),
    Event("fetch_bubbles", EventSet.TMA, 1, is_new=True,
          tma_level=TmaLevel.TOP,
          description="decode ready but IBuf invalid, not recovering"),
    Event("recovering", EventSet.TMA, 2, is_new=True,
          tma_level=TmaLevel.TOP,
          description="cycles from flush until next valid fetch"),
])


# ---------------------------------------------------------------------------
# BOOM events (Table I, lower half).  The seven starred TMA events are the
# ones Icicle adds to BOOM.
# ---------------------------------------------------------------------------

BOOM_EVENTS: Dict[str, Event] = _build([
    # Basic set.
    Event("cycles", EventSet.BASIC, 0, description="core clock cycles"),
    Event("instr_retired", EventSet.BASIC, 1,
          description="architecturally retired instructions"),
    Event("exception", EventSet.BASIC, 2, description="taken exceptions"),
    # Microarchitectural set.
    Event("br_mispredict", EventSet.MICROARCH, 0, tma_level=TmaLevel.TOP,
          description="branch direction mispredicts"),
    Event("cf_target_mispredict", EventSet.MICROARCH, 1,
          description="control-flow target mispredicts"),
    Event("flush", EventSet.MICROARCH, 2, tma_level=TmaLevel.TOP,
          description="machine clears (backend-originated flushes)"),
    Event("branch_resolved", EventSet.MICROARCH, 3,
          description="branches resolved in execute"),
    # Memory set.
    Event("icache_miss", EventSet.MEMORY, 0, description="L1I misses"),
    Event("dcache_miss", EventSet.MEMORY, 1, description="L1D misses"),
    Event("dcache_release", EventSet.MEMORY, 2,
          description="L1D writebacks/releases"),
    Event("itlb_miss", EventSet.MEMORY, 3, description="ITLB misses"),
    Event("dtlb_miss", EventSet.MEMORY, 4, description="DTLB misses"),
    Event("l2_tlb_miss", EventSet.MEMORY, 5, description="L2 TLB misses"),
    # TMA set — the events this work adds to BOOM (§IV-A).
    Event("uops_issued", EventSet.TMA, 0, is_new=True,
          tma_level=TmaLevel.TOP, per_lane=True,
          description="valid signals out of the issue queues (W_I lanes)"),
    Event("fetch_bubbles", EventSet.TMA, 1, is_new=True,
          tma_level=TmaLevel.TOP, per_lane=True,
          description="decoder lane ready but no valid uop, not recovering"),
    Event("recovering", EventSet.TMA, 2, is_new=True,
          tma_level=TmaLevel.TOP,
          description="cycles from flush until a valid fetch packet"),
    Event("uops_retired", EventSet.TMA, 3, is_new=True,
          tma_level=TmaLevel.TOP, per_lane=True,
          description="ROB commit signals (W_C lanes)"),
    Event("fence_retired", EventSet.TMA, 4, is_new=True,
          tma_level=TmaLevel.TOP,
          description="retired fences (intended flushes)"),
    Event("icache_blocked", EventSet.TMA, 5, is_new=True,
          tma_level=TmaLevel.LOWER,
          description="I$ refill in flight and fetch buffer empty"),
    Event("dcache_blocked", EventSet.TMA, 6, is_new=True,
          tma_level=TmaLevel.LOWER, per_lane=True,
          description="issue slot empty, queue non-empty, MSHR busy"),
])


def events_for_core(core: str) -> Dict[str, Event]:
    """Return the event registry for ``"rocket"`` or ``"boom"``."""
    if core == "rocket":
        return ROCKET_EVENTS
    if core == "boom":
        return BOOM_EVENTS
    raise ValueError(f"unknown core {core!r}")


def new_events_for_core(core: str) -> List[Event]:
    """The events Icicle adds (3 for Rocket, 7 for BOOM)."""
    return [e for e in events_for_core(core).values() if e.is_new]


def decode_selector(selector: int, core: str) -> Tuple[EventSet, List[Event]]:
    """Decode an mhpmevent selector into (event_set, selected_events)."""
    event_set = EventSet(selector & 0xFF)
    mask = selector >> 8
    selected = [e for e in events_for_core(core).values()
                if e.event_set == event_set and (mask >> e.bit) & 1]
    return event_set, selected


def encode_selector(event_names: List[str], core: str) -> int:
    """Encode a list of same-set event names into an mhpmevent selector.

    Raises:
        ValueError: if the events span multiple event sets (the hardware
            constraint of §II-A) or a name is unknown.
    """
    registry = events_for_core(core)
    if not event_names:
        raise ValueError("at least one event required")
    events = []
    for name in event_names:
        if name not in registry:
            raise ValueError(f"unknown event {name!r} for {core}")
        events.append(registry[name])
    sets = {e.event_set for e in events}
    if len(sets) > 1:
        raise ValueError(
            f"events {event_names} span multiple event sets {sets}; "
            "a counter can only mix events from one set")
    selector = int(events[0].event_set)
    for event in events:
        selector |= 1 << (8 + event.bit)
    return selector
