"""Perf-like software harness (§IV-D).

The harness programs counters in the paper's four steps: (1) enable the
counter CSRs, (2) write the 8-bit event-set ID into each counter's
control register, (3) set the 56-bit event mask, and (4) clear the
inhibit bits so counting starts.

Two modes mirror the paper:

- ``baremetal`` — the harness pokes the CSR file directly, as a
  bare-metal payload would with ``csrw`` instructions.
- ``linux`` — all four steps need M-mode, so they are emitted as an
  OpenSBI-style boot sequence: real ``csrw``/``li`` instructions that are
  assembled, functionally executed, and whose CSR side effects are then
  applied to the CSR file.  :meth:`PerfHarness.firemarshal_command`
  renders the one-command FireMarshal wrapper UX.

When a workload needs more events than the 29 programmable counters, the
harness multiplexes by re-running the (deterministic) workload in
multiple passes, one counter set per pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cores.base import (BoomConfig, CoreResult, RocketConfig,
                          resolve_timing_engine)
from ..cores.boom import BoomCore
from ..cores.rocket import RocketCore
from ..isa import assemble, execute
from ..isa.csrs import (FIRST_HPM_INDEX, LAST_HPM_INDEX, MCOUNTINHIBIT,
                        mhpmcounter_addr, mhpmevent_addr)
from ..workloads import build_trace
from .csr import CsrFile, INCREMENT_MODES
from .events import encode_selector, events_for_core

NUM_PROGRAMMABLE = LAST_HPM_INDEX - FIRST_HPM_INDEX + 1

CoreConfig = Union[RocketConfig, BoomConfig]


def make_core(config: CoreConfig):
    """Instantiate the right timing model for a Table IV config."""
    if isinstance(config, RocketConfig):
        return RocketCore(config)
    return BoomCore(config)


@dataclass
class CounterAssignment:
    """One pass of counter programming: counter index -> event names."""

    slots: List[Tuple[int, List[str]]] = field(default_factory=list)

    def selectors(self, core: str) -> List[Tuple[int, int]]:
        return [(index, encode_selector(names, core))
                for index, names in self.slots]


@dataclass
class Measurement:
    """Counter values read back after a run (one workload, one config)."""

    workload: str
    config_name: str
    core: str
    events: Dict[str, int]
    cycles: int
    instret: int
    passes: int
    result: Optional[CoreResult] = None
    #: Counter architecture the values were read through; ``adders`` is
    #: an exact popcount, so readings must equal the core's own totals
    #: (the invariant checker relies on this).
    increment_mode: str = "adders"

    @property
    def ipc(self) -> float:
        return self.instret / self.cycles if self.cycles else 0.0


class PerfHarness:
    """Programs counters, runs workloads, reads TMA event values back."""

    def __init__(self, core: str = "boom", increment_mode: str = "adders",
                 mode: str = "baremetal", fault_injector=None,
                 timing_engine: Optional[str] = None) -> None:
        if mode not in ("baremetal", "linux"):
            raise ValueError(f"unknown mode {mode!r}")
        if increment_mode not in INCREMENT_MODES:
            raise ValueError(
                f"unknown increment mode {increment_mode!r}; "
                f"choose from {INCREMENT_MODES}")
        if timing_engine is not None:
            timing_engine = resolve_timing_engine(timing_engine)
        self.core = core
        self.increment_mode = increment_mode
        self.mode = mode
        #: Timing-engine override forwarded to every ``core.run`` call
        #: (None defers to ``REPRO_TIMING_ENGINE``).  Both engines are
        #: bit-identical, so measurements do not depend on the choice.
        self.timing_engine = timing_engine
        #: Optional :class:`repro.reliability.faults.FaultInjector`.
        #: When set, every run is perturbed through the injector's
        #: hooks (trace truncation, core stalls, counter corruption).
        self.fault_injector = fault_injector

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, event_names: Sequence[str]) -> List[CounterAssignment]:
        """Split the requested events into per-pass counter assignments.

        Each event gets its own counter (the scalar/adders/distributed
        increment logic handles multi-source events internally); passes
        are added when more than 29 events are requested.
        """
        registry = events_for_core(self.core)
        for name in event_names:
            if name not in registry:
                raise ValueError(
                    f"unknown event {name!r} for core {self.core}")
        passes: List[CounterAssignment] = []
        current = CounterAssignment()
        counter = FIRST_HPM_INDEX
        for name in event_names:
            if counter > LAST_HPM_INDEX:
                passes.append(current)
                current = CounterAssignment()
                counter = FIRST_HPM_INDEX
            current.slots.append((counter, [name]))
            counter += 1
        if current.slots:
            passes.append(current)
        return passes

    # ------------------------------------------------------------------
    # the four-step setup
    # ------------------------------------------------------------------

    def setup(self, csr: CsrFile, assignment: CounterAssignment) -> None:
        """Program *csr* directly (baremetal path)."""
        # Step 1: enable the counter CSRs.
        csr.enabled = True
        for index, selector in assignment.selectors(self.core):
            # Steps 2+3: event-set ID (low byte) and event mask.
            csr.write(mhpmevent_addr(index), selector)
            csr.write(mhpmcounter_addr(index), 0)
        # Step 4: clear the inhibit bits; counting starts.
        csr.write(MCOUNTINHIBIT, 0)

    def boot_assembly(self, assignment: CounterAssignment) -> str:
        """OpenSBI-style M-mode CSR programming sequence (linux path)."""
        lines = [
            "# OpenSBI boot-time PMU setup (generated by PerfHarness)",
            ".text",
            "_start:",
            "    csrwi mcounteren, 7          # step 1: enable counters",
        ]
        for index, selector in assignment.selectors(self.core):
            lines.append(f"    li t0, {selector}")
            lines.append(
                f"    csrw mhpmevent{index}, t0    "
                f"# steps 2+3: set ID + event mask")
            lines.append(f"    csrw mhpmcounter{index}, zero")
        lines.append("    csrw mcountinhibit, zero     "
                     "# step 4: clear inhibit")
        lines.append("    li a7, 93")
        lines.append("    ecall")
        return "\n".join(lines) + "\n"

    def apply_boot_sequence(self, csr: CsrFile,
                            assignment: CounterAssignment) -> int:
        """Assemble + execute the boot sequence, applying its CSR writes.

        Returns the number of CSR writes that reached the CSR file — the
        linux path exercises the whole assembler/executor stack instead
        of poking the model directly.
        """
        program = assemble(self.boot_assembly(assignment),
                           name="opensbi-boot")
        trace = execute(program)
        writes = 0
        csr.enabled = True
        for inst in trace:
            if inst.csr >= 0 and inst.csr_write is not None:
                csr.write(inst.csr, inst.csr_write)
                writes += 1
        return writes

    def firemarshal_command(self, workload: str,
                            event_names: Sequence[str]) -> str:
        """The one-command FireMarshal wrapper UX the paper describes."""
        events = ",".join(event_names)
        return (f"marshal-pmu build --events {events} "
                f"--counter-arch {self.increment_mode} {workload}.json")

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def measure(self, workload: str, config: CoreConfig,
                event_names: Optional[Sequence[str]] = None,
                scale: float = 1.0,
                max_cycles: Optional[int] = None) -> Measurement:
        """Run *workload* on *config*, returning read-back event values.

        The deterministic simulator makes multiplexed passes exact: each
        pass replays the identical trace with a different counter set.

        *max_cycles* arms the per-pass watchdog of the core models (see
        :meth:`~repro.cores.boom.BoomCore.run`); the resilient runner
        sets it so a hung run raises instead of spinning.
        """
        if event_names is None:
            event_names = sorted(events_for_core(self.core))
        if not event_names:
            raise ValueError(
                "measure() needs at least one event name; an empty list "
                "would silently return zero passes and stale counters")
        passes = self.plan(event_names)
        trace = build_trace(workload, scale=scale)
        injector = self.fault_injector
        if injector is not None:
            trace = injector.perturb_trace(trace)
        values: Dict[str, int] = {}
        cycles = 0
        instret = 0
        last_result: Optional[CoreResult] = None
        for assignment in passes:
            core_model = make_core(config)
            core_model.fault_hook = injector
            csr = CsrFile(core=self.core,
                          increment_mode=self.increment_mode,
                          fault_injector=injector)
            if self.mode == "linux":
                self.apply_boot_sequence(csr, assignment)
            else:
                self.setup(csr, assignment)
            core_model.add_observer(csr)
            result = core_model.run(trace, max_cycles=max_cycles,
                                    engine=self.timing_engine)
            csr.drain()
            for index, names in assignment.slots:
                values[names[0]] = csr.corrected_value_for(index)
            cycles = csr.mcycle
            instret = csr.minstret
            last_result = result
        return Measurement(
            workload=workload, config_name=config.name, core=self.core,
            events=values, cycles=cycles, instret=instret,
            passes=len(passes), result=last_result,
            increment_mode=self.increment_mode)

    def measure_grouped(self, workload: str, config: CoreConfig,
                        groups: Sequence[Sequence[str]],
                        scale: float = 1.0) -> Dict[str, int]:
        """Map several same-set events onto shared counters (Fig. 1).

        Each group occupies ONE hardware counter whose increment is the
        aggregate of the group's events under the configured increment
        mode — the multi-event mapping of §II-A that conserves counters
        at the cost of per-event resolution.  Returns
        ``{"a+b": value}`` keyed by the joined group names.
        """
        assignment = CounterAssignment()
        counter = FIRST_HPM_INDEX
        for group in groups:
            if counter > LAST_HPM_INDEX:
                raise ValueError("more groups than hardware counters")
            assignment.slots.append((counter, list(group)))
            counter += 1
        trace = build_trace(workload, scale=scale)
        core_model = make_core(config)
        csr = CsrFile(core=self.core, increment_mode=self.increment_mode)
        self.setup(csr, assignment)
        core_model.add_observer(csr)
        core_model.run(trace, engine=self.timing_engine)
        csr.drain()
        return {"+".join(names): csr.corrected_value_for(index)
                for index, names in assignment.slots}
