"""Single-run counter multiplexing (time-division sampling).

Proprietary processors amortize the cost of scarce counters by
time-multiplexing event sets within one run and scaling the counts back
up (§I cites the resulting non-determinism as an accepted trade-off).
The deterministic simulator makes this a measurable design point: the
:class:`MultiplexedCsrFile` rotates counter groups every ``interval``
cycles, tracks each group's active-cycle share, and extrapolates —
exactly what ``perf`` does when events exceed hardware counters.

Because the reproduction can also measure the *exact* values (one event
per counter across multiple deterministic passes), the sampling error is
directly quantifiable; ``benchmarks/bench_ablation_sampling.py`` sweeps
the rotation interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..workloads import build_trace
from .events import events_for_core
from .harness import CoreConfig, make_core


class MultiplexedCsrFile:
    """Observer that rotates event groups through one physical counter.

    Each group of events gets a time slice of ``interval`` cycles in
    round-robin order.  At the end of the run, every event's raw count
    is scaled by (total cycles / cycles its group was active).
    """

    def __init__(self, core: str, groups: Sequence[Sequence[str]],
                 interval: int = 1000,
                 increment_mode: str = "adders") -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not groups:
            raise ValueError("at least one event group required")
        registry = events_for_core(core)
        for group in groups:
            for name in group:
                if name not in registry:
                    raise ValueError(f"unknown event {name!r}")
        self.core = core
        self.groups = [list(group) for group in groups]
        self.interval = interval
        self.increment_mode = increment_mode
        self._raw: Dict[str, int] = {name: 0 for group in groups
                                     for name in group}
        self._active_cycles: List[int] = [0] * len(groups)
        self.total_cycles = 0

    def _active_group(self, cycle: int) -> int:
        return (cycle // self.interval) % len(self.groups)

    def on_cycle(self, cycle: int, signals: Mapping[str, int]) -> None:
        self.total_cycles += 1
        index = self._active_group(cycle)
        self._active_cycles[index] += 1
        for name in self.groups[index]:
            mask = signals.get(name, 0)
            if mask:
                if self.increment_mode == "classic":
                    self._raw[name] += 1
                else:
                    self._raw[name] += mask.bit_count()

    def raw_count(self, name: str) -> int:
        return self._raw[name]

    def estimated_count(self, name: str) -> float:
        """Scale the sampled count to the whole run (perf-style)."""
        for index, group in enumerate(self.groups):
            if name in group:
                active = self._active_cycles[index]
                if active == 0:
                    return 0.0
                return self._raw[name] * self.total_cycles / active
        raise KeyError(name)

    def coverage(self, name: str) -> float:
        """Fraction of cycles the event's group was being counted."""
        for index, group in enumerate(self.groups):
            if name in group:
                if self.total_cycles == 0:
                    return 0.0
                return self._active_cycles[index] / self.total_cycles
        raise KeyError(name)


@dataclass
class SamplingComparison:
    """Exact vs sampled counts for one event."""

    event: str
    exact: int
    estimated: float
    coverage: float

    @property
    def relative_error(self) -> float:
        if self.exact == 0:
            return 0.0 if self.estimated == 0 else float("inf")
        return (self.estimated - self.exact) / self.exact


def measure_sampled(workload: str, config: CoreConfig,
                    groups: Sequence[Sequence[str]],
                    interval: int = 1000,
                    scale: float = 1.0) -> List[SamplingComparison]:
    """One run with multiplexed counters, compared against ground truth.

    The exact counts come from the core's own accumulation in the same
    run (the simulator equivalent of a second fully-instrumented pass).
    """
    trace = build_trace(workload, scale=scale)
    core_model = make_core(config)
    mux = MultiplexedCsrFile(config.core, groups, interval=interval)
    core_model.add_observer(mux)
    result = core_model.run(trace)
    comparisons = []
    for group in groups:
        for event in group:
            comparisons.append(SamplingComparison(
                event=event,
                exact=result.event(event),
                estimated=mux.estimated_count(event),
                coverage=mux.coverage(event)))
    return comparisons
