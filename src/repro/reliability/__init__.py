"""Reliability layer: fault injection, invariant checking, resilience.

The subsystem that proves the rest of the pipeline trustworthy:

- :mod:`repro.reliability.faults` — a deterministic, seed-driven fault
  model (dropped counter increments, counter bit-flips, truncated
  traces, corrupted cache entries, stalled cores) injected through
  small hooks in the CSR file, the cores, and the result cache.
- :mod:`repro.reliability.invariants` — the TMA invariant catalog
  (slot conservation, PMU-vs-core agreement, multiplex agreement,
  scale monotonicity) raising a structured error taxonomy.
- :mod:`repro.reliability.retry` — the single
  :class:`RetryPolicy` (capped exponential backoff, deterministic
  jitter, deadline awareness) shared by the runner, the worker pool,
  and the service client.
- :mod:`repro.reliability.breaker` — per-key
  :class:`CircuitBreaker` registry (closed / open / half-open) so
  repeatedly-failing pairs are quarantined instead of re-executed.
- :mod:`repro.reliability.runner` — a resilient (workload x config)
  batch runner with watchdogs, policy-driven retry, deadlines, circuit
  breaking, cache quarantine, and partial-result reporting.
- :mod:`repro.reliability.campaign` — the end-to-end fault-injection
  campaign: inject faults, demand the checker catches 100% of them.
  (System-level chaos campaigns live in :mod:`repro.chaos`.)
"""

from .breaker import BreakerState, CircuitBreaker
from .campaign import (CAMPAIGN_EVENTS, CampaignReport, FaultTrial,
                       run_campaign)
from .errors import (CacheIntegrityError, CounterCorruption,
                     DeadlineExceeded, ReliabilityError, RunTimeout,
                     SlotConservationViolation)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .faults import (BITFLIP_COUNTER, CORRUPT_CACHE, DROP_INCREMENTS,
                     FAULT_CLASSES, FaultInjector, FaultPlan, FaultSpec,
                     STALL_CORE, TRUNCATE_TRACE)
from .invariants import EXACT_INCREMENT_MODES, TmaInvariantChecker
from .runner import (DEFAULT_MAX_CYCLES, ResilientRunner, RunOutcome,
                     SweepReport)

__all__ = [
    "BITFLIP_COUNTER",
    "BreakerState",
    "CAMPAIGN_EVENTS",
    "CORRUPT_CACHE",
    "CacheIntegrityError",
    "CampaignReport",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "CounterCorruption",
    "DEFAULT_MAX_CYCLES",
    "DROP_INCREMENTS",
    "DeadlineExceeded",
    "EXACT_INCREMENT_MODES",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultTrial",
    "ReliabilityError",
    "ResilientRunner",
    "RetryPolicy",
    "RunOutcome",
    "RunTimeout",
    "STALL_CORE",
    "SlotConservationViolation",
    "SweepReport",
    "TRUNCATE_TRACE",
    "TmaInvariantChecker",
    "run_campaign",
]
