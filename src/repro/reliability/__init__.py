"""Reliability layer: fault injection, invariant checking, resilience.

The subsystem that proves the rest of the pipeline trustworthy:

- :mod:`repro.reliability.faults` — a deterministic, seed-driven fault
  model (dropped counter increments, counter bit-flips, truncated
  traces, corrupted cache entries, stalled cores) injected through
  small hooks in the CSR file, the cores, and the result cache.
- :mod:`repro.reliability.invariants` — the TMA invariant catalog
  (slot conservation, PMU-vs-core agreement, multiplex agreement,
  scale monotonicity) raising a structured error taxonomy.
- :mod:`repro.reliability.runner` — a resilient (workload x config)
  batch runner with watchdogs, bounded retry, cache quarantine, and
  partial-result reporting.
- :mod:`repro.reliability.campaign` — the end-to-end fault-injection
  campaign: inject faults, demand the checker catches 100% of them.
"""

from .campaign import (CAMPAIGN_EVENTS, CampaignReport, FaultTrial,
                       run_campaign)
from .errors import (CacheIntegrityError, CounterCorruption,
                     ReliabilityError, RunTimeout,
                     SlotConservationViolation)
from .faults import (BITFLIP_COUNTER, CORRUPT_CACHE, DROP_INCREMENTS,
                     FAULT_CLASSES, FaultInjector, FaultPlan, FaultSpec,
                     STALL_CORE, TRUNCATE_TRACE)
from .invariants import EXACT_INCREMENT_MODES, TmaInvariantChecker
from .runner import (DEFAULT_MAX_CYCLES, ResilientRunner, RunOutcome,
                     SweepReport)

__all__ = [
    "BITFLIP_COUNTER",
    "CAMPAIGN_EVENTS",
    "CORRUPT_CACHE",
    "CacheIntegrityError",
    "CampaignReport",
    "CounterCorruption",
    "DEFAULT_MAX_CYCLES",
    "DROP_INCREMENTS",
    "EXACT_INCREMENT_MODES",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultTrial",
    "ReliabilityError",
    "ResilientRunner",
    "RunOutcome",
    "RunTimeout",
    "STALL_CORE",
    "SlotConservationViolation",
    "SweepReport",
    "TRUNCATE_TRACE",
    "TmaInvariantChecker",
    "run_campaign",
]
