"""Per-key circuit breakers: stop burning pool slots on a broken pair.

A (workload, config) pair — or a service job key — that keeps failing
identically will keep failing: re-dispatching it burns worker slots,
starves healthy work, and floods the report with the same error.  A
:class:`CircuitBreaker` watches terminal failures per key and applies
the classic three-state contract:

- **closed** — failures are counted; ``failure_threshold`` consecutive
  terminal failures trip the circuit;
- **open** — the key is refused outright (callers report the pair
  ``quarantined`` instead of executing it) until ``cooldown`` seconds
  of wall-clock have passed;
- **half-open** — after the cooldown, exactly one probe execution is
  admitted; success closes the circuit, failure re-opens it for
  another cooldown.

The clock is injectable, so tests and the deterministic chaos campaign
drive state transitions without sleeping.  All methods are thread-safe:
the service's dispatcher and HTTP handlers share one instance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["BreakerState", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerState:
    """Mutable per-key circuit state."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: Optional[float] = None
    #: True while the single half-open probe is outstanding.
    probe_in_flight: bool = False
    trips: int = 0

    def to_payload(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }


@dataclass
class CircuitBreaker:
    """Thread-safe registry of per-key circuits."""

    #: Consecutive terminal failures that trip a key open.
    failure_threshold: int = 3
    #: Seconds a tripped key stays open before a half-open probe.
    cooldown: float = 30.0
    #: Injectable wall clock (monotonic preferred in production).
    clock: Callable[[], float] = time.monotonic
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)
    _keys: Dict[str, BreakerState] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")

    # ------------------------------------------------------------------

    def _state(self, key: str) -> BreakerState:
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = BreakerState()
        return state

    def allow(self, key: str) -> bool:
        """May *key* execute now?  (May admit a half-open probe.)"""
        with self._lock:
            entry = self._state(key)
            if entry.state == CLOSED:
                return True
            if entry.state == OPEN:
                opened = entry.opened_at if entry.opened_at is not None else 0
                if self.clock() - opened < self.cooldown:
                    return False
                entry.state = HALF_OPEN
                entry.probe_in_flight = False
            # half-open: exactly one probe at a time.
            if entry.probe_in_flight:
                return False
            entry.probe_in_flight = True
            return True

    def record_success(self, key: str) -> None:
        """A terminal success: close the circuit and reset the count."""
        with self._lock:
            entry = self._state(key)
            entry.state = CLOSED
            entry.consecutive_failures = 0
            entry.opened_at = None
            entry.probe_in_flight = False

    def record_failure(self, key: str) -> None:
        """A terminal failure: count it; trip or re-open as needed."""
        with self._lock:
            entry = self._state(key)
            entry.consecutive_failures += 1
            entry.probe_in_flight = False
            tripped = (entry.state == HALF_OPEN
                       or entry.consecutive_failures
                       >= self.failure_threshold)
            if tripped:
                if entry.state != OPEN:
                    entry.trips += 1
                entry.state = OPEN
                entry.opened_at = self.clock()

    # ------------------------------------------------------------------

    def state(self, key: str) -> str:
        """Current state name for *key* (untouched keys are closed)."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None:
                return CLOSED
            if (entry.state == OPEN and entry.opened_at is not None
                    and self.clock() - entry.opened_at >= self.cooldown):
                return HALF_OPEN
            return entry.state

    def open_keys(self) -> Dict[str, BreakerState]:
        """Snapshot of every currently-tripped key."""
        with self._lock:
            return {key: BreakerState(**vars(entry))
                    for key, entry in self._keys.items()
                    if entry.state != CLOSED}

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-key state map (for /metrics and reports)."""
        with self._lock:
            return {key: entry.to_payload()
                    for key, entry in self._keys.items()}

    def reset(self, key: Optional[str] = None) -> None:
        """Forget one key's history (or everything, when key is None)."""
        with self._lock:
            if key is None:
                self._keys.clear()
            else:
                self._keys.pop(key, None)
