"""The fault-injection campaign: the CounterPoint-style refutation loop.

Injects a deterministic, seed-driven set of faults into otherwise
identical runs and reports which ones the invariant checker caught.
A campaign has three phases:

1. **Clean control** — a fault-free measurement of the same grid must
   report zero violations (multiplex agreement, scale monotonicity, and
   every single-run invariant included).  A checker that cries wolf is
   as useless as one that misses corruption.
2. **Injection trials** — one run per :class:`FaultSpec`; the fault is
   *caught* when a :class:`ReliabilityError` of the right family is
   raised, either by the checker or by the guarded layers themselves
   (watchdog timeout, cache checksum).
3. **Quarantine proof** — the ``corrupt-cache`` trials additionally
   demonstrate the resilient runner completing its sweep by
   quarantining the poisoned entry and re-running, instead of aborting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..cores.base import BoomConfig, RocketConfig
from ..pmu.harness import Measurement, PerfHarness
from ..tools import cache
from .errors import ReliabilityError
from .faults import CORRUPT_CACHE, FaultInjector, FaultPlan, FaultSpec
from .invariants import TmaInvariantChecker
from .runner import ResilientRunner

CoreConfig = Union[RocketConfig, BoomConfig]

#: High-frequency events per core: every one fires often enough that a
#: dropped-increment fault is guaranteed to actually perturb the run,
#: and the list is exactly the set of counters the bitflip fault may
#: target (counters 3 .. 3+len-1).
CAMPAIGN_EVENTS = {
    "boom": ("cycles", "uops_issued", "uops_retired", "fetch_bubbles",
             "recovering"),
    "rocket": ("cycles", "instr_issued", "instr_retired", "fetch_bubbles",
               "recovering"),
}


@dataclass
class FaultTrial:
    """One injected fault and whether the reliability layer caught it."""

    spec: FaultSpec
    caught: bool
    injections: int
    error_class: Optional[str] = None
    detail: str = ""


@dataclass
class CampaignReport:
    """Everything a campaign observed, renderable for the CLI."""

    workload: str
    config_name: str
    seed: int
    scale: float
    clean_ok: bool = True
    clean_detail: str = ""
    trials: List[FaultTrial] = field(default_factory=list)

    @property
    def caught(self) -> int:
        return sum(1 for trial in self.trials if trial.caught)

    @property
    def fault_classes(self) -> List[str]:
        return sorted({trial.spec.kind for trial in self.trials})

    @property
    def passed(self) -> bool:
        return self.clean_ok and self.caught == len(self.trials)

    def render(self) -> str:
        lines = [
            f"fault-injection campaign: {self.workload} on "
            f"{self.config_name} (seed {self.seed}, "
            f"{len(self.trials)} faults, "
            f"{len(self.fault_classes)} classes)",
            "clean control: " + ("PASS (zero violations)" if self.clean_ok
                                 else f"FAIL ({self.clean_detail})"),
        ]
        for trial in self.trials:
            verdict = "CAUGHT" if trial.caught else "MISSED"
            via = f" -> {trial.error_class}" if trial.error_class else ""
            lines.append(f"  {verdict}  {trial.spec.describe()}{via}")
            if trial.detail:
                lines.append(f"          {trial.detail}")
        lines.append(f"detected {self.caught}/{len(self.trials)} "
                     f"injected faults")
        lines.append("campaign " + ("PASSED" if self.passed else "FAILED"))
        return "\n".join(lines)


def _run_clean_control(harness: PerfHarness,
                       checker: TmaInvariantChecker,
                       workload: str, config: CoreConfig,
                       events: Sequence[str], scale: float,
                       max_cycles: Optional[int]) -> Measurement:
    """Full clean-phase audit; returns the reference measurement."""
    # Multiplexed vs single-pass agreement (returns the combined run).
    reference = checker.check_multiplex_agreement(
        harness, workload, config, events, scale=scale,
        max_cycles=max_cycles)
    checker.check_measurement(reference)
    # Event monotonicity across scales.
    smaller = harness.measure(workload, config, event_names=list(events),
                              scale=scale * 0.6, max_cycles=max_cycles)
    checker.check_measurement(smaller)
    checker.check_monotonic([smaller, reference])
    # The resilient runner's own clean sweep must complete cleanly too.
    runner = ResilientRunner(harness=harness, checker=checker,
                             event_names=events, scale=scale,
                             max_cycles=max_cycles)
    sweep = runner.run_grid([workload], [config])
    if sweep.failed or sweep.quarantined_keys:
        raise ReliabilityError(
            "clean sweep reported failures",
            invariant="clean-control", workload=workload,
            config=config.name, observed=sweep.summary())
    return reference


def _run_cache_trial(spec: FaultSpec, checker: TmaInvariantChecker,
                     reference: Measurement, workload: str,
                     config: CoreConfig, events: Sequence[str],
                     scale: float,
                     max_cycles: Optional[int]) -> FaultTrial:
    """Poison the pair's cache entry, then prove quarantine + recovery."""
    injector = FaultInjector(spec)
    key = cache.cache_key(workload, scale, config)
    if reference.result is not None:
        cache.store(key, reference.result)
    injector.corrupt_cache_file(cache.entry_path(key))
    harness = PerfHarness(core=config.core)
    runner = ResilientRunner(harness=harness, checker=checker,
                             event_names=events, scale=scale,
                             max_cycles=max_cycles)
    sweep = runner.run_grid([workload], [config])
    outcome = sweep.outcomes[0]
    caught = outcome.quarantined
    detail = (f"entry quarantined, sweep completed "
              f"{len(sweep.completed)}/{len(sweep.outcomes)} pairs"
              if caught and outcome.ok else
              f"quarantined={outcome.quarantined} status={outcome.status}")
    return FaultTrial(spec=spec, caught=caught,
                      injections=injector.injections,
                      error_class=outcome.error_class, detail=detail)


def _run_injection_trial(spec: FaultSpec, checker: TmaInvariantChecker,
                         reference: Measurement, workload: str,
                         config: CoreConfig, events: Sequence[str],
                         scale: float,
                         max_cycles: Optional[int]) -> FaultTrial:
    """One perturbed run; the checker must refute it."""
    injector = FaultInjector(spec)
    harness = PerfHarness(core=config.core, fault_injector=injector)
    try:
        measurement = harness.measure(workload, config,
                                      event_names=list(events),
                                      scale=scale, max_cycles=max_cycles)
        checker.check_measurement(measurement)
        checker.check_matches_reference(measurement, reference)
    except ReliabilityError as exc:
        return FaultTrial(spec=spec, caught=True,
                          injections=injector.injections,
                          error_class=type(exc).__name__,
                          detail=str(exc))
    detail = ("fault never fired (vacuous trial)"
              if injector.injections == 0 else "fault escaped detection")
    return FaultTrial(spec=spec, caught=False,
                      injections=injector.injections, detail=detail)


def run_campaign(seed: int = 0, faults: int = 5,
                 workload: str = "median",
                 config: Optional[CoreConfig] = None,
                 scale: float = 0.3,
                 max_cycles: Optional[int] = 200_000) -> CampaignReport:
    """Run the end-to-end fault-injection campaign.

    With ``faults >= 5`` every fault class is injected at least once
    (the plan covers classes round-robin).  Returns a report whose
    ``passed`` property is the acceptance gate: clean control with zero
    violations AND 100% of injected faults detected.
    """
    if config is None:
        from ..cores.configs import LARGE_BOOM
        config = LARGE_BOOM
    events = CAMPAIGN_EVENTS[config.core]
    harness = PerfHarness(core=config.core)
    checker = TmaInvariantChecker()
    report = CampaignReport(workload=workload, config_name=config.name,
                            seed=seed, scale=scale)
    try:
        reference = _run_clean_control(harness, checker, workload, config,
                                       events, scale, max_cycles)
    except ReliabilityError as exc:
        report.clean_ok = False
        report.clean_detail = str(exc)
        return report
    plan = FaultPlan(seed=seed, count=faults,
                     counter_event_names=events)
    for spec in plan.specs():
        if spec.kind == CORRUPT_CACHE:
            trial = _run_cache_trial(spec, checker, reference, workload,
                                     config, events, scale, max_cycles)
        else:
            trial = _run_injection_trial(spec, checker, reference,
                                         workload, config, events, scale,
                                         max_cycles)
        report.trials.append(trial)
    return report
