"""The reliability-violation taxonomy.

The base class and the two subclasses raised *below* this package
(:class:`RunTimeout` by the core run loops, :class:`CacheIntegrityError`
by the result cache) live in :mod:`repro.isa.errors` — an import leaf —
so the cores and tools can raise them without importing this package.
This module completes the taxonomy with the violations the invariant
checker itself detects, and re-exports the whole family so callers can
``from repro.reliability import ReliabilityError`` and catch everything.
"""

from __future__ import annotations

from ..isa.errors import (CacheIntegrityError, DeadlineExceeded,
                          ReliabilityError, RunTimeout)

__all__ = [
    "CacheIntegrityError",
    "CounterCorruption",
    "DeadlineExceeded",
    "ReliabilityError",
    "RunTimeout",
    "SlotConservationViolation",
]


class CounterCorruption(ReliabilityError):
    """A counter reading disagrees with trusted ground truth.

    Raised when a PMU-read value diverges from the core model's own
    accumulation, from a reference run of the same deterministic trace,
    from a single-pass measurement of the same events, or from the
    monotonicity expected across workload scales — the CounterPoint-style
    refutation: the counters themselves expose the broken assumption.
    """


class SlotConservationViolation(ReliabilityError):
    """TMA slot accounting failed a conservation law.

    The four top-level classes must partition the ``width x cycles``
    slot budget; per-event totals must respect their structural bounds
    (issued >= retired, per-cycle events <= cycles, per-slot events <=
    width x cycles).  A violation means the measurement cannot be a
    truthful accounting of any real run.
    """
