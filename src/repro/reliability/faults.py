"""Deterministic fault injection: the fault model and its hooks.

A :class:`FaultSpec` names one concrete fault; a :class:`FaultPlan`
samples a campaign of specs deterministically from a seed; a
:class:`FaultInjector` turns one spec into the runtime hooks the
instrumented layers consult:

===================  ============================================
fault class          injection point
===================  ============================================
``drop-increments``  :meth:`FaultInjector.on_signals` — the CSR
                     file's view of the per-cycle lane masks loses
                     increments (a broken counter wire), while the
                     core's own accumulation stays correct.
``bitflip-counter``  :meth:`FaultInjector.on_counter_read` — one
                     HPM counter value is read back with a flipped
                     bit (a stuck read port / SEU).
``truncate-trace``   :meth:`FaultInjector.perturb_trace` — the
                     dynamic trace is cut short before replay (a
                     truncated TracerV dump).
``corrupt-cache``    :meth:`FaultInjector.corrupt_cache_file` —
                     bytes of an on-disk result entry are flipped
                     (bit rot / torn write).
``stall-core``       :meth:`FaultInjector.stall_cycle` — from a
                     chosen cycle on, the core freezes forever (a
                     hung memory system); only a watchdog ends it.
===================  ============================================

Every decision is drawn from ``random.Random(spec.seed)``, so a
campaign is exactly reproducible from ``(seed, count)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

from ..isa.dyn_trace import DynamicTrace

DROP_INCREMENTS = "drop-increments"
BITFLIP_COUNTER = "bitflip-counter"
TRUNCATE_TRACE = "truncate-trace"
CORRUPT_CACHE = "corrupt-cache"
STALL_CORE = "stall-core"

#: Every fault class the campaign can draw, in injection order.
FAULT_CLASSES = (DROP_INCREMENTS, BITFLIP_COUNTER, TRUNCATE_TRACE,
                 CORRUPT_CACHE, STALL_CORE)


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault, fully determined by its fields.

    Only the fields relevant to ``kind`` are consulted; the rest keep
    their defaults.
    """

    kind: str
    seed: int = 0
    #: drop-increments: which event's increments are dropped, and with
    #: what per-cycle probability.
    event: str = "uops_retired"
    drop_rate: float = 0.5
    #: bitflip-counter: which programmable counter index (3..31) is
    #: perturbed at read time, and which bit flips.
    counter_index: int = 3
    bit: int = 37
    #: truncate-trace: fraction of the dynamic trace that survives.
    keep_fraction: float = 0.5
    #: stall-core: first frozen cycle (the stall never releases).
    stall_at: int = 64

    def describe(self) -> str:
        if self.kind == DROP_INCREMENTS:
            return (f"{self.kind}: drop {self.drop_rate:.0%} of "
                    f"{self.event!r} increments")
        if self.kind == BITFLIP_COUNTER:
            return (f"{self.kind}: flip bit {self.bit} of "
                    f"mhpmcounter{self.counter_index} at read")
        if self.kind == TRUNCATE_TRACE:
            return (f"{self.kind}: keep first "
                    f"{self.keep_fraction:.0%} of the trace")
        if self.kind == CORRUPT_CACHE:
            return f"{self.kind}: flip bytes of the on-disk entry"
        if self.kind == STALL_CORE:
            return f"{self.kind}: freeze the core from cycle {self.stall_at}"
        return self.kind


class FaultPlan:
    """Deterministically sample *count* fault specs from *seed*.

    Classes are covered round-robin (so ``count >= len(classes)``
    guarantees every class appears); per-fault parameters are drawn
    from a seed-derived RNG.  ``counter_event_names`` bounds the
    bitflip target to a counter that will actually be programmed.
    """

    def __init__(self, seed: int = 0, count: int = 5,
                 classes: Sequence[str] = FAULT_CLASSES,
                 counter_event_names: Sequence[str] = ()) -> None:
        for kind in classes:
            if kind not in FAULT_CLASSES:
                raise ValueError(f"unknown fault class {kind!r}; "
                                 f"choose from {FAULT_CLASSES}")
        self.seed = seed
        self.count = count
        self.classes = tuple(classes)
        self.counter_event_names = tuple(counter_event_names)

    def specs(self) -> List[FaultSpec]:
        rng = random.Random(self.seed)
        n_counters = max(1, len(self.counter_event_names) or 4)
        specs: List[FaultSpec] = []
        for i in range(self.count):
            kind = self.classes[i % len(self.classes)]
            spec = FaultSpec(
                kind=kind,
                seed=rng.randrange(1 << 30),
                event=(rng.choice(list(self.counter_event_names))
                       if self.counter_event_names else "uops_retired"),
                drop_rate=rng.uniform(0.3, 0.7),
                counter_index=3 + rng.randrange(n_counters),
                bit=rng.randrange(33, 48),
                keep_fraction=rng.uniform(0.3, 0.8),
                stall_at=rng.randrange(16, 256),
            )
            specs.append(spec)
        return specs


class FaultInjector:
    """Runtime hooks for one :class:`FaultSpec`.

    An injector is single-fault and single-use per run: create one per
    (spec, run) pair.  Hooks not owned by the spec's class are exact
    pass-throughs, so the same injector object can be handed to every
    instrumented layer at once.  ``injections`` counts how many times
    the fault actually fired, letting a campaign discard vacuous trials.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.injections = 0

    # ------------------------------------------------------------------
    # CsrFile hooks
    # ------------------------------------------------------------------

    def on_signals(self, cycle: int,
                   signals: Mapping[str, int]) -> Mapping[str, int]:
        """Perturb the CSR file's view of one cycle's lane masks."""
        spec = self.spec
        if spec.kind != DROP_INCREMENTS:
            return signals
        mask = signals.get(spec.event, 0)
        if not mask or self.rng.random() >= spec.drop_rate:
            return signals
        # Drop the lowest asserted lane bit this cycle.
        perturbed: Dict[str, int] = dict(signals)
        perturbed[spec.event] = mask & (mask - 1)
        self.injections += 1
        return perturbed

    def on_counter_read(self, index: int, value: int) -> int:
        """Perturb one counter value at software-read time."""
        spec = self.spec
        if spec.kind != BITFLIP_COUNTER or index != spec.counter_index:
            return value
        self.injections += 1
        return value ^ (1 << spec.bit)

    # ------------------------------------------------------------------
    # core hooks
    # ------------------------------------------------------------------

    def stall_cycle(self, cycle: int) -> bool:
        """True when the core must freeze this cycle (never releases)."""
        spec = self.spec
        if spec.kind != STALL_CORE or cycle < spec.stall_at:
            return False
        self.injections += 1
        return True

    # ------------------------------------------------------------------
    # trace hook
    # ------------------------------------------------------------------

    def perturb_trace(self, trace: DynamicTrace) -> DynamicTrace:
        """Cut the dynamic trace short before it reaches the core."""
        spec = self.spec
        if spec.kind != TRUNCATE_TRACE:
            return trace
        keep = max(1, int(len(trace) * spec.keep_fraction))
        if keep >= len(trace):
            keep = len(trace) - 1
        self.injections += 1
        return DynamicTrace(
            instructions=trace.instructions[:keep],
            program_name=trace.program_name,
            exit_code=trace.exit_code,
            halt_reason="truncated",
            final_int_regs=list(trace.final_int_regs),
            instret=keep)

    # ------------------------------------------------------------------
    # cache hook
    # ------------------------------------------------------------------

    def corrupt_cache_file(self, path: Path) -> None:
        """Flip bytes of an on-disk cache entry in place."""
        spec = self.spec
        if spec.kind != CORRUPT_CACHE:
            return
        raw = bytearray(Path(path).read_bytes())
        if not raw:
            return
        for _ in range(max(1, len(raw) // 64)):
            offset = self.rng.randrange(len(raw))
            raw[offset] ^= 1 << self.rng.randrange(8)
        Path(path).write_bytes(bytes(raw))
        self.injections += 1
