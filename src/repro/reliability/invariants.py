"""TMA invariant checking: proving the counters are trustworthy.

The paper validates Icicle's PMU against TracerV traces; CounterPoint
uses event counters to refute broken microarchitectural assumptions.
:class:`TmaInvariantChecker` is this reproduction's equivalent: a
catalog of conservation laws every healthy measurement must satisfy,
raising the structured :mod:`repro.reliability.errors` taxonomy when
one fails.

Invariant catalog
-----------------

``pmu-vs-core``        PMU-read values equal the core model's own
                       accumulation (exact for the ``adders``
                       architecture — it is a popcount).
``cycles-agree``       ``mcycle``/``minstret`` equal the core result's
                       cycle/retire totals.
``slot-conservation``  The four top-level TMA classes each stay within
                       ``[0, 1]`` (tolerance-padded); they partition the
                       ``W_C x cycles`` slot budget by construction, so
                       an inflated counter surfaces as a negative or
                       >1 sibling class.
``issued-ge-retired``  Issued uops/instructions >= retired.
``event-bounds``       No event total exceeds ``max(W_C, W_I) x cycles``.
``reference-divergence``  A rerun of a deterministic trace must
                       reproduce the reference exactly.
``scale-monotonicity`` Cycles and retired instructions are
                       non-decreasing in workload scale.
``multiplex-agreement``  Multiplexed-pass totals equal single-pass
                       totals on deterministic traces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.tma import compute_tma
from ..cores.base import CoreResult
from ..pmu.harness import Measurement, PerfHarness
from .errors import (CounterCorruption, ReliabilityError,
                     SlotConservationViolation)

#: Counter architectures whose readings are exact popcounts, so the
#: PMU-vs-core cross-check may demand equality.
EXACT_INCREMENT_MODES = ("adders",)


class TmaInvariantChecker:
    """Validates measurements and core results against the catalog.

    ``slot_tolerance`` pads the TMA fraction bounds: the Table II
    formulas mix slot and cycle units, so healthy runs can sit a few
    hundredths outside the ideal ``[0, 1]`` interval.
    """

    def __init__(self, slot_tolerance: float = 0.05) -> None:
        self.slot_tolerance = slot_tolerance

    # ------------------------------------------------------------------
    # single-run invariants
    # ------------------------------------------------------------------

    def violations(self, measurement: Measurement
                   ) -> List[ReliabilityError]:
        """All violations of the single-run invariants (empty = clean)."""
        found: List[ReliabilityError] = []
        found.extend(self._cross_check(measurement))
        found.extend(self._structural_bounds(measurement))
        found.extend(self._slot_conservation(measurement))
        return found

    def check_measurement(self, measurement: Measurement) -> None:
        """Raise the first single-run violation, if any."""
        for violation in self.violations(measurement):
            raise violation

    def check_core_result(self, result: CoreResult) -> None:
        """Slot-conservation audit of a bare core run (no PMU)."""
        measurement = Measurement(
            workload=result.workload, config_name=result.config_name,
            core=result.core, events=dict(result.events),
            cycles=result.cycles, instret=result.instret, passes=0,
            result=result)
        for violation in self._slot_conservation(measurement):
            raise violation
        for violation in self._structural_bounds(measurement):
            raise violation

    def _cross_check(self, m: Measurement) -> List[ReliabilityError]:
        """PMU readings vs the core model's own accumulation."""
        found: List[ReliabilityError] = []
        result = m.result
        if result is None:
            return found
        if m.cycles != result.cycles:
            found.append(CounterCorruption(
                "mcycle disagrees with the core's cycle count",
                invariant="cycles-agree", workload=m.workload,
                config=m.config_name, observed=m.cycles,
                expected=result.cycles))
        if m.instret != result.instret:
            found.append(CounterCorruption(
                "minstret disagrees with the core's retire count",
                invariant="cycles-agree", workload=m.workload,
                config=m.config_name, observed=m.instret,
                expected=result.instret))
        if m.increment_mode in EXACT_INCREMENT_MODES:
            for name, value in m.events.items():
                expected = result.event(name)
                if value != expected:
                    found.append(CounterCorruption(
                        f"counter {name!r} disagrees with the core's "
                        f"own accumulation",
                        invariant="pmu-vs-core", workload=m.workload,
                        config=m.config_name, observed=value,
                        expected=expected))
        return found

    def _structural_bounds(self, m: Measurement) -> List[ReliabilityError]:
        """Width-scaled upper bounds no real run can exceed."""
        found: List[ReliabilityError] = []
        if m.cycles < 0 or m.instret < 0:
            found.append(CounterCorruption(
                "negative cycle or retire count",
                invariant="event-bounds", workload=m.workload,
                config=m.config_name,
                observed=(m.cycles, m.instret), expected=">= 0"))
            return found
        result = m.result
        commit_width = result.commit_width if result is not None else 1
        issue_width = result.issue_width if result is not None else 1
        width_cap = max(commit_width, issue_width, 1)
        budget = width_cap * m.cycles
        for name, value in m.events.items():
            if value < 0 or value > budget:
                found.append(SlotConservationViolation(
                    f"event {name!r} exceeds the width x cycles budget",
                    invariant="event-bounds", workload=m.workload,
                    config=m.config_name, observed=value,
                    expected=f"0 <= value <= {budget}"))
        issued = m.events.get("uops_issued", m.events.get("instr_issued"))
        retired = m.events.get("uops_retired",
                               m.events.get("instr_retired"))
        if issued is not None and retired is not None and issued < retired:
            found.append(SlotConservationViolation(
                "more uops retired than issued",
                invariant="issued-ge-retired", workload=m.workload,
                config=m.config_name, observed=issued,
                expected=f">= {retired}"))
        return found

    def _slot_conservation(self, m: Measurement
                           ) -> List[ReliabilityError]:
        """Every top-level TMA class within its tolerance-padded range."""
        found: List[ReliabilityError] = []
        if m.cycles <= 0:
            if m.instret > 0:
                found.append(CounterCorruption(
                    "instructions retired in zero cycles",
                    invariant="slot-conservation", workload=m.workload,
                    config=m.config_name, observed=m.instret,
                    expected=0))
            return found
        try:
            tma = compute_tma(m)
        except (ValueError, ZeroDivisionError) as exc:
            found.append(SlotConservationViolation(
                f"TMA model rejected the measurement: {exc}",
                invariant="slot-conservation", workload=m.workload,
                config=m.config_name))
            return found
        tol = self.slot_tolerance
        for name, fraction in tma.level1.items():
            if not -tol <= fraction <= 1.0 + tol:
                found.append(SlotConservationViolation(
                    f"top-level class {name!r} outside [0, 1]",
                    invariant="slot-conservation", workload=m.workload,
                    config=m.config_name, observed=round(fraction, 6),
                    expected=f"[-{tol}, {1.0 + tol}]"))
        return found

    # ------------------------------------------------------------------
    # cross-run invariants
    # ------------------------------------------------------------------

    def check_matches_reference(self, measurement: Measurement,
                                reference: Measurement) -> None:
        """A deterministic trace must reproduce its reference exactly."""
        if measurement.cycles != reference.cycles:
            raise CounterCorruption(
                "cycle count diverged from the reference run",
                invariant="reference-divergence",
                workload=measurement.workload,
                config=measurement.config_name,
                observed=measurement.cycles, expected=reference.cycles)
        if measurement.instret != reference.instret:
            raise CounterCorruption(
                "retire count diverged from the reference run",
                invariant="reference-divergence",
                workload=measurement.workload,
                config=measurement.config_name,
                observed=measurement.instret, expected=reference.instret)
        for name, expected in reference.events.items():
            observed = measurement.events.get(name)
            if observed is not None and observed != expected:
                raise CounterCorruption(
                    f"counter {name!r} diverged from the reference run",
                    invariant="reference-divergence",
                    workload=measurement.workload,
                    config=measurement.config_name,
                    observed=observed, expected=expected)

    def check_monotonic(self, measurements: Sequence[Measurement]) -> None:
        """Cycles/instret non-decreasing across ascending scales."""
        previous: Optional[Measurement] = None
        for m in measurements:
            if previous is not None:
                if m.cycles < previous.cycles:
                    raise CounterCorruption(
                        "cycle count shrank as the scale grew",
                        invariant="scale-monotonicity",
                        workload=m.workload, config=m.config_name,
                        observed=m.cycles, expected=f">= {previous.cycles}")
                if m.instret < previous.instret:
                    raise CounterCorruption(
                        "retire count shrank as the scale grew",
                        invariant="scale-monotonicity",
                        workload=m.workload, config=m.config_name,
                        observed=m.instret,
                        expected=f">= {previous.instret}")
            previous = m

    def check_multiplex_agreement(self, harness: PerfHarness,
                                  workload: str, config,
                                  event_names: Sequence[str],
                                  scale: float = 1.0,
                                  max_cycles: Optional[int] = None
                                  ) -> Measurement:
        """Multiplexed-pass totals == single-pass totals (deterministic).

        Measures all *event_names* together, then each alone (one pass
        per event — the fully multiplexed decomposition), and demands
        exact agreement.  Returns the combined measurement.
        """
        combined = harness.measure(workload, config,
                                   event_names=list(event_names),
                                   scale=scale, max_cycles=max_cycles)
        for name in event_names:
            alone = harness.measure(workload, config, event_names=[name],
                                    scale=scale, max_cycles=max_cycles)
            if alone.events[name] != combined.events[name]:
                raise CounterCorruption(
                    f"multiplexed reading of {name!r} disagrees with "
                    f"its single-pass reading",
                    invariant="multiplex-agreement", workload=workload,
                    config=combined.config_name,
                    observed=combined.events[name],
                    expected=alone.events[name])
        return combined
