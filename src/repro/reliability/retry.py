"""The one retry policy: capped exponential backoff, deterministic jitter.

Before this module, three ad-hoc retry loops had grown independently —
the resilient runner's attempt loop, the worker pool's
rebuild-and-resubmit, and the service client's 429 loop — each with its
own cap, its own backoff shape, and no jitter.  :class:`RetryPolicy` is
the single value object they all share now:

- **Capped exponential backoff.**  Attempt ``k`` (0-based) sleeps
  ``min(base_delay * multiplier**k, max_delay)`` before retrying.
- **Deterministic jitter.**  Real deployments need jitter so a thousand
  clients do not retry in lockstep; tests and chaos campaigns need the
  exact same schedule every run.  Jitter here is a pure function of
  ``(seed, salt, attempt)``, so a seeded policy produces an identical
  delay sequence on every run while distinct salts (e.g. per job key)
  still de-correlate from each other.
- **Deadline awareness.**  :meth:`delay` never schedules a sleep past a
  caller-supplied wall-clock deadline, and :meth:`call` raises
  :class:`~repro.isa.errors.DeadlineExceeded` instead of starting an
  attempt that no caller is still waiting for.
- **Injectable clock and sleeper**, so unit tests never really sleep.

The policy is frozen (hashable, picklable): it can ride inside a
:class:`~repro.tools.pool.RunnerSpec` across a process boundary.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Tuple, Type

from ..isa.errors import DeadlineExceeded

__all__ = ["RetryPolicy", "DeadlineExceeded"]


def _jitter_fraction(seed: int, salt: str, attempt: int) -> float:
    """Uniform [0, 1) fraction, a pure function of its arguments."""
    digest = hashlib.sha256(
        f"{seed}:{salt}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic, seeded jitter."""

    #: Total attempts (first try included); >= 1.
    max_attempts: int = 3
    #: Backoff before the first retry (seconds); 0 disables sleeping.
    base_delay: float = 0.0
    #: Hard cap on any single backoff sleep.
    max_delay: float = 2.0
    #: Exponential growth factor per retry.
    multiplier: float = 2.0
    #: Fraction of the delay randomized (0 = none, 0.5 = +/-50%).
    jitter: float = 0.0
    #: Seed for the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    # ------------------------------------------------------------------

    def delay(self, attempt: int, salt: str = "",
              deadline: Optional[float] = None,
              now: Optional[float] = None) -> float:
        """Backoff before retry *attempt* (0-based retry index).

        The returned delay is clamped to ``max_delay``, jittered
        deterministically from ``(seed, salt, attempt)``, and never
        extends past *deadline* (when given, with *now* as the current
        wall-clock reading).
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        delay = min(self.base_delay * (self.multiplier ** attempt),
                    self.max_delay)
        if delay > 0 and self.jitter:
            fraction = _jitter_fraction(self.seed, salt, attempt)
            # Symmetric jitter: delay * (1 +/- jitter).
            delay *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        if deadline is not None:
            now = time.time() if now is None else now
            delay = max(0.0, min(delay, deadline - now))
        return delay

    def delays(self, salt: str = "") -> Iterator[float]:
        """The full deterministic backoff schedule (len = retries)."""
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt, salt=salt)

    def salted(self, salt_seed: int) -> "RetryPolicy":
        """A copy whose jitter stream is re-seeded (e.g. per client)."""
        return replace(self, seed=salt_seed)

    # ------------------------------------------------------------------

    def check_deadline(self, deadline: Optional[float],
                       now: Optional[float] = None,
                       what: str = "run") -> None:
        """Raise :class:`DeadlineExceeded` when *deadline* has lapsed."""
        if deadline is None:
            return
        now = time.time() if now is None else now
        if now >= deadline:
            raise DeadlineExceeded(
                f"deadline lapsed before {what} could start",
                invariant="deadline",
                observed=round(now, 3), expected=round(deadline, 3))

    def call(self, fn: Callable[[], object],
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             salt: str = "",
             deadline: Optional[float] = None,
             sleep: Callable[[float], None] = time.sleep,
             clock: Callable[[], float] = time.time,
             on_retry: Optional[Callable[[int, BaseException], None]] = None):
        """Run *fn* under this policy; returns its first success.

        Exceptions in *retry_on* are retried (with backoff) up to
        ``max_attempts`` total tries; the final failure re-raises.  A
        lapsed *deadline* raises :class:`DeadlineExceeded` instead of
        starting another attempt.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if attempt:
                pause = self.delay(attempt - 1, salt=salt,
                                   deadline=deadline, now=clock())
                if pause > 0:
                    sleep(pause)
            self.check_deadline(deadline, now=clock(),
                                what=f"attempt {attempt + 1}")
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop
                last = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
        assert last is not None
        raise last


#: Default policy used where callers do not inject one: three attempts,
#: no sleeping (the simulator's transient failures are injected, so
#: tests stay instant); services override with real delays.
DEFAULT_RETRY_POLICY = RetryPolicy()
