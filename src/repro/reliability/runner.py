"""Resilient batch runner: sweeps that degrade instead of dying.

:class:`ResilientRunner` wraps :meth:`PerfHarness.measure` over a
(workload x config) grid with the guard rails a production-scale sweep
needs:

- a per-run cycle-budget watchdog (a hung or truncated run raises
  :class:`~repro.isa.errors.RunTimeout` instead of spinning),
- invariant checking of every measurement through
  :class:`~repro.reliability.invariants.TmaInvariantChecker`,
- bounded retry through the shared
  :class:`~repro.reliability.retry.RetryPolicy` (capped exponential
  backoff, deterministic jitter, injectable sleeper),
- wall-clock **deadline propagation**: a deadline stamped by the CLI or
  a service job is checked before every attempt, so a pair nobody is
  still waiting for fails fast with
  :class:`~repro.isa.errors.DeadlineExceeded` instead of burning time,
- an optional per-(workload, config) **circuit breaker**: a pair that
  keeps failing trips open and is reported ``quarantined`` instead of
  re-executing (see :mod:`repro.reliability.breaker`),
- quarantine of poisoned cache entries — verified, deleted, re-run —
  via the checksummed result cache,
- partial-result reporting: one bad pair marks its own outcome failed
  and the sweep continues.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.tma import TmaResult, compute_tma
from ..cores.base import BoomConfig, RocketConfig, resolve_timing_engine
from ..isa.errors import DeadlineExceeded
from ..pmu.harness import Measurement, PerfHarness
from ..tools import cache
from ..workloads import trace_cache
from .breaker import CircuitBreaker
from .errors import CacheIntegrityError, ReliabilityError
from .invariants import TmaInvariantChecker
from .retry import RetryPolicy

CoreConfig = Union[RocketConfig, BoomConfig]

#: Default per-run watchdog: generous for every registered workload at
#: the scales the sweeps use, tiny next to a genuine hang.
DEFAULT_MAX_CYCLES = 2_000_000


@dataclass
class RunOutcome:
    """What happened to one (workload, config) pair of a sweep.

    ``status == "quarantined"`` means the pair never executed because
    its circuit breaker was open — the pair is skipped, not failed on
    its own merits this time around.
    """

    workload: str
    config_name: str
    status: str = "ok"                  # "ok" | "failed" | "quarantined"
    attempts: int = 0
    quarantined: bool = False
    error_class: Optional[str] = None
    error: Optional[str] = None
    measurement: Optional[Measurement] = None
    tma: Optional[TmaResult] = None
    #: Trace-memoization counter movement attributed to this run
    #: (mem_hits / disk_hits / misses), so parallel shards and service
    #: jobs can report cache behaviour across process boundaries.
    trace_cache: Optional[Dict[str, int]] = None
    #: Structured result document for job kinds whose output is not a
    #: Measurement+TMA pair (multicore scenario runs ship their whole
    #: payload here; :func:`repro.service.job.outcome_payload` passes
    #: it through under its own key).
    payload: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepReport:
    """Partial-result report of a whole grid sweep."""

    outcomes: List[RunOutcome] = field(default_factory=list)
    quarantined_keys: List[str] = field(default_factory=list)

    @property
    def completed(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def quarantined_pairs(self) -> List[RunOutcome]:
        """Pairs skipped because their circuit breaker was open."""
        return [o for o in self.outcomes if o.status == "quarantined"]

    def trace_cache_stats(self) -> Dict[str, int]:
        """Trace-memoization counters summed across all outcomes."""
        total: Dict[str, int] = {}
        for outcome in self.outcomes:
            for key, value in (outcome.trace_cache or {}).items():
                total[key] = total.get(key, 0) + value
        return total

    @property
    def trace_cache_hit_rate(self) -> float:
        return trace_cache.hit_rate(self.trace_cache_stats())

    def summary(self) -> str:
        lines = [f"sweep: {len(self.completed)}/{len(self.outcomes)} "
                 f"pairs completed, {len(self.quarantined_keys)} cache "
                 f"entries quarantined"]
        for outcome in self.outcomes:
            if outcome.status == "quarantined":
                flag = "OPEN"
            else:
                flag = "ok " if outcome.ok else "FAIL"
            extra = ""
            if outcome.quarantined:
                extra += " [quarantined+rerun]"
            if outcome.error_class:
                extra += f" [{outcome.error_class}: {outcome.error}]"
            lines.append(f"  {flag} {outcome.workload:<14s} "
                         f"{outcome.config_name:<14s} "
                         f"attempts={outcome.attempts}{extra}")
        return "\n".join(lines)


class ResilientRunner:
    """Fault-tolerant (workload x config) measurement sweeps.

    Retries follow ``retry_policy`` (the shared
    :class:`~repro.reliability.retry.RetryPolicy`); the legacy
    ``max_attempts`` / ``backoff_base`` arguments build an equivalent
    policy when none is injected, so existing callers keep their exact
    behaviour.  ``sleep`` is injectable for testing.

    ``deadline`` is an absolute ``time.time()`` epoch: once it lapses,
    remaining attempts (and remaining grid pairs) fail fast with
    :class:`~repro.isa.errors.DeadlineExceeded`.  ``breaker`` is an
    optional :class:`~repro.reliability.breaker.CircuitBreaker`; pairs
    whose circuit is open are reported ``quarantined`` without
    executing.
    """

    def __init__(self, harness: Optional[PerfHarness] = None,
                 checker: Optional[TmaInvariantChecker] = None,
                 event_names: Optional[Sequence[str]] = None,
                 scale: float = 1.0,
                 max_attempts: int = 3,
                 max_cycles: Optional[int] = DEFAULT_MAX_CYCLES,
                 backoff_base: float = 0.0,
                 use_cache: bool = True,
                 timing_engine: Optional[str] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 deadline: Optional[float] = None,
                 clock: Callable[[], float] = time.time,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if retry_policy is None:
            # Legacy-compatible schedule: backoff_base doubling per
            # retry, effectively uncapped, no jitter.
            retry_policy = RetryPolicy(max_attempts=max_attempts,
                                       base_delay=backoff_base,
                                       max_delay=3600.0,
                                       multiplier=2.0)
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.deadline = deadline
        self.clock = clock
        self.harness = harness or PerfHarness(timing_engine=timing_engine)
        if timing_engine is not None:
            # An explicit runner-level engine wins over whatever the
            # supplied harness was built with (both engines are
            # bit-identical, so this only changes *how* the result is
            # computed, never the result).
            self.harness.timing_engine = resolve_timing_engine(timing_engine)
        self.timing_engine = self.harness.timing_engine
        self.checker = checker or TmaInvariantChecker()
        self.event_names = list(event_names) if event_names else None
        self.scale = scale
        # Mirror the policy so RunnerSpec.from_runner (and old callers
        # reading these attributes) keep seeing the effective values.
        self.max_attempts = retry_policy.max_attempts
        self.max_cycles = max_cycles
        self.backoff_base = retry_policy.base_delay
        self.use_cache = use_cache
        self.sleep = sleep

    # ------------------------------------------------------------------

    def _harness_for(self, config: CoreConfig) -> PerfHarness:
        """The configured harness, re-targeted if the core differs."""
        if self.harness.core == config.core:
            return self.harness
        return PerfHarness(core=config.core,
                           increment_mode=self.harness.increment_mode,
                           mode=self.harness.mode,
                           fault_injector=self.harness.fault_injector,
                           timing_engine=self.timing_engine)

    def _events_for(self, config: CoreConfig) -> Optional[Sequence[str]]:
        """Configured event names, but only for the matching core."""
        if self.event_names is None or self.harness.core == config.core:
            return self.event_names
        return None

    def _quarantine_if_poisoned(self, workload: str, config: CoreConfig,
                                outcome: RunOutcome,
                                report: Optional[SweepReport]) -> None:
        """Verify the pair's cache entry; delete it if it is poisoned."""
        if not self.use_cache:
            return
        key = cache.cache_key(workload, self.scale, config)
        try:
            cache.verify_entry(key)
        except CacheIntegrityError as exc:
            cache.quarantine(key)
            outcome.quarantined = True
            outcome.error_class = type(exc).__name__
            outcome.error = str(exc)
            if report is not None:
                report.quarantined_keys.append(key)

    def pair_key(self, workload: str, config: CoreConfig) -> str:
        """Circuit-breaker / jitter-salt key for one grid pair."""
        return f"{workload}:{config.name}"

    def run_one(self, workload: str, config: CoreConfig,
                report: Optional[SweepReport] = None) -> RunOutcome:
        """Measure one pair with watchdog, validation, and retries."""
        outcome = RunOutcome(workload=workload, config_name=config.name)
        pair = self.pair_key(workload, config)
        if self.breaker is not None and not self.breaker.allow(pair):
            outcome.status = "quarantined"
            outcome.error_class = "CircuitOpen"
            outcome.error = (f"circuit open for {pair} "
                             f"({self.breaker.state(pair)}); skipped")
            return outcome
        self._quarantine_if_poisoned(workload, config, outcome, report)
        harness = self._harness_for(config)
        event_names = self._events_for(config)
        cache_before = trace_cache.stats()
        last_error: Optional[ReliabilityError] = None
        for attempt in range(self.retry_policy.max_attempts):
            outcome.attempts = attempt + 1
            if attempt:
                pause = self.retry_policy.delay(
                    attempt - 1, salt=pair,
                    deadline=self.deadline, now=self.clock())
                if pause > 0:
                    self.sleep(pause)
            try:
                self.retry_policy.check_deadline(
                    self.deadline, now=self.clock(),
                    what=f"{pair} attempt {attempt + 1}")
                measurement = harness.measure(
                    workload, config, event_names=event_names,
                    scale=self.scale, max_cycles=self.max_cycles)
                self.checker.check_measurement(measurement)
            except DeadlineExceeded as exc:
                # No point retrying a lapsed deadline.
                last_error = exc
                break
            except ReliabilityError as exc:
                last_error = exc
                continue
            outcome.status = "ok"
            outcome.measurement = measurement
            outcome.tma = compute_tma(measurement)
            if not outcome.quarantined:
                outcome.error_class = None
                outcome.error = None
            if self.use_cache and measurement.result is not None:
                key = cache.cache_key(workload, self.scale, config)
                cache.store(key, measurement.result)
            outcome.trace_cache = trace_cache.stats_delta(cache_before)
            if self.breaker is not None:
                self.breaker.record_success(pair)
            return outcome
        outcome.status = "failed"
        outcome.error_class = type(last_error).__name__
        outcome.error = str(last_error)
        outcome.trace_cache = trace_cache.stats_delta(cache_before)
        if self.breaker is not None:
            self.breaker.record_failure(pair)
        return outcome

    def run_grid(self, workloads: Sequence[str],
                 configs: Sequence[CoreConfig]) -> SweepReport:
        """Sweep the full grid; failures degrade, never abort."""
        report = SweepReport()
        for workload in workloads:
            for config in configs:
                report.outcomes.append(
                    self.run_one(workload, config, report))
        return report
