"""Queue-driven TMA analysis service.

Turns the one-shot CLI pipeline into a long-running service: clients
submit :class:`TMAJob` analyses over a stdlib JSON HTTP API (or
in-process), a bounded priority scheduler coalesces duplicates and
applies backpressure, a crash-surviving worker pool executes through
the resilient runner, repeat requests are served O(1) from the
checksummed disk cache, and live counters/gauges/latency histograms
are one ``GET /metrics`` away.  See ``docs/service.md``.

Quickstart (in-process)::

    from repro.service import TMAService

    service = TMAService(workers=2, executor="thread").start()
    receipt = service.submit_payload({"workload": "vvadd", "scale": 0.2})
    ...
    service.drain()

Or over HTTP: ``repro-tma serve`` + ``repro-tma submit`` /
:class:`ServiceClient`.
"""

from .app import TMAService
from .client import JobRejected, ServiceClient, ServiceError
from .job import (GridJob, JobRecord, JobValidationError, MulticoreJob,
                  TMAJob, outcome_payload)
from .metrics import Histogram, MetricsRegistry
from .scheduler import JobScheduler, SubmitReceipt
from .server import ServiceServer, make_server, serve_in_thread
from .store import ResultStore
from .workers import WorkerPool, execute_job

__all__ = [
    "GridJob",
    "Histogram",
    "JobRecord",
    "JobRejected",
    "JobScheduler",
    "JobValidationError",
    "MetricsRegistry",
    "MulticoreJob",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SubmitReceipt",
    "TMAJob",
    "TMAService",
    "WorkerPool",
    "execute_job",
    "make_server",
    "outcome_payload",
    "serve_in_thread",
]
