"""Queue-driven TMA analysis service.

Turns the one-shot CLI pipeline into a long-running service: clients
submit :class:`TMAJob` analyses over a stdlib JSON HTTP API (or
in-process), a bounded priority scheduler coalesces duplicates and
applies backpressure, a crash-surviving worker pool executes through
the resilient runner, repeat requests are served O(1) from the
checksummed disk cache, and live counters/gauges/latency histograms
are one ``GET /metrics`` away.  See ``docs/service.md``.

The service also scales out: N shard servers each own a deterministic
slice of the canonical job-key space via a consistent-hash ring
(:mod:`repro.service.hashring`), a stateless gateway
(:mod:`repro.service.gateway`) routes submissions, fans grids out,
and rebalances on shard join/leave, and every job's lifecycle is
observable live over SSE (:mod:`repro.service.stream`,
``GET /jobs/<id>/events``).

Quickstart (in-process)::

    from repro.service import TMAService

    service = TMAService(workers=2, executor="thread").start()
    receipt = service.submit_payload({"workload": "vvadd", "scale": 0.2})
    ...
    service.drain()

Or over HTTP: ``repro-tma serve`` + ``repro-tma submit`` /
:class:`ServiceClient`; multi-node: ``repro-tma serve --shard-id sK``
per shard + ``repro-tma gateway --shards ...``.
"""

from .app import TMAService
from .client import JobRejected, ServiceClient, ServiceError
from .gateway import (Gateway, GatewayServer, make_gateway_server,
                      serve_gateway_in_thread)
from .hashring import (DEFAULT_VNODES, HashRing, parse_shard_spec,
                       ring_position, stable_hash)
from .job import (GridJob, JobRecord, JobValidationError, MulticoreJob,
                  TMAJob, outcome_payload)
from .metrics import Histogram, MetricsRegistry, merge_snapshots
from .scheduler import JobScheduler, SubmitReceipt
from .server import ServiceServer, make_server, serve_in_thread
from .shard import ShardExecutor, ShardInfo, make_shard_service
from .store import ResultStore
from .stream import EventJournal, JobEvent, parse_sse, sse_encode
from .workers import WorkerPool, execute_job

__all__ = [
    "DEFAULT_VNODES",
    "EventJournal",
    "Gateway",
    "GatewayServer",
    "GridJob",
    "HashRing",
    "Histogram",
    "JobEvent",
    "JobRecord",
    "JobRejected",
    "JobScheduler",
    "JobValidationError",
    "MetricsRegistry",
    "MulticoreJob",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardExecutor",
    "ShardInfo",
    "SubmitReceipt",
    "TMAJob",
    "TMAService",
    "WorkerPool",
    "execute_job",
    "make_gateway_server",
    "make_server",
    "make_shard_service",
    "merge_snapshots",
    "outcome_payload",
    "parse_shard_spec",
    "parse_sse",
    "ring_position",
    "serve_gateway_in_thread",
    "serve_in_thread",
    "sse_encode",
    "stable_hash",
]
