"""`TMAService`: the queue-driven analysis service facade.

Wires the subsystem together — admission through
:class:`~repro.service.scheduler.JobScheduler`, O(1) repeat-request
serving through :class:`~repro.service.store.ResultStore`, execution
through :class:`~repro.service.workers.WorkerPool`, observability
through :class:`~repro.service.metrics.MetricsRegistry` — behind a
small, thread-safe API the HTTP layer (and tests) call directly:

``submit`` / ``status`` / ``metrics_snapshot`` / ``healthz`` /
``drain``.

Lifecycle: a single dispatcher thread pulls primaries off the
scheduler only when a worker slot is free (so queue depth and
backpressure stay meaningful — the executor's internal queue is never
used as a second, unbounded buffer), submits them to the pool, and
resolves completions:

- success → result payload fans out to the primary and every coalesced
  follower (one execution, N completions);
- job-level failure → the failure fans out the same way;
- worker crash → the pool is rebuilt and the job re-queued at the
  front (bounded by ``max_requeues``), with the crash test hook
  disabled for the retry.

``drain()`` closes admission, lets in-flight work finish, and
persists any still-queued accepted jobs to disk via the result store —
accepted jobs either complete or are durably re-queued; none are
silently lost.  ``start(resume=True)`` resubmits persisted jobs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from .. import __version__
from ..cores.base import resolve_timing_engine
from ..reliability.breaker import CircuitBreaker
from .job import (DEFAULT_PRIORITY, MAX_PRIORITY, GridJob, JobRecord,
                  JobValidationError, MulticoreJob, TMAJob, outcome_payload)
from .metrics import MetricsRegistry
from .scheduler import JobScheduler, SubmitReceipt
from .store import ResultStore
from .stream import EventJournal
from .workers import WorkerPool

#: Fallback retry-after hint before any latency samples exist.
_DEFAULT_RETRY_AFTER = 1.0

#: States whose records may be evicted once ``record_retention`` is
#: exceeded — nothing further will ever happen to them.
_TERMINAL_RECORD_STATES = frozenset(("done", "failed", "rejected",
                                     "requeued", "quarantined"))

#: Default bound on retained job records (live records never count
#: against it — they are already bounded by queue capacity).
DEFAULT_RECORD_RETENTION = 4096

#: Bound on retained grid records (each is a thin index over job
#: records, which carry the actual results and have their own bound).
DEFAULT_GRID_RETENTION = 512


@dataclass
class GridRecord:
    """Service-side index of one fanned-out grid submission.

    A grid record owns no results — it maps canonical grid point keys
    to the job records that do, so grid status is an aggregation over
    the normal per-job lifecycle.
    """

    id: str
    key: str
    workload: str
    scale: float
    client: str
    point_keys: List[str]
    point_record_ids: Dict[str, str]
    accepted: bool
    submitted_at: float = field(default_factory=time.time)
    #: Grid id of the earlier submission with the same canonical grid
    #: key, when one exists (grid-level dedup accounting).
    coalesced_with: Optional[str] = None


class TMAService:
    """The long-running, queue-driven TMA analysis service."""

    def __init__(self,
                 workers: int = 2,
                 queue_capacity: int = 256,
                 executor: str = "process",
                 executor_factory=None,
                 max_requeues: int = 2,
                 record_retention: int = DEFAULT_RECORD_RETENTION,
                 metrics: Optional[MetricsRegistry] = None,
                 timing_engine: Optional[str] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 shard=None) -> None:
        if record_retention < 1:
            raise ValueError("record_retention must be >= 1")
        if timing_engine is not None:
            timing_engine = resolve_timing_engine(timing_engine)
        #: Timing-engine override stamped onto every worker-bound
        #: :class:`~repro.tools.pool.RunnerSpec` (None defers to
        #: ``REPRO_TIMING_ENGINE`` in the worker process).  Engines are
        #: bit-identical, so this never changes job results or dedup.
        self.timing_engine = timing_engine
        #: Shard identity (:class:`repro.service.shard.ShardInfo`) when
        #: this instance serves one consistent-hash slice of the job-key
        #: space; None for a plain single-node deployment.  Shards get
        #: a per-shard drain-persistence file so clusters sharing one
        #: cache directory never clobber each other's pending jobs.
        self.shard = shard
        self.metrics = metrics or MetricsRegistry()
        self.scheduler = JobScheduler(capacity=queue_capacity)
        self.store = ResultStore(
            instance=shard.id if shard is not None else None)
        self.events = EventJournal()
        self.pool = WorkerPool(workers=workers, style=executor,
                               factory=executor_factory)
        #: Per-(workload, config) circuit breaker: a pair that keeps
        #: failing trips open, and jobs for it resolve ``quarantined``
        #: without burning a worker slot until the cooldown admits a
        #: half-open probe.
        self.breaker = CircuitBreaker(failure_threshold=breaker_threshold,
                                      cooldown=breaker_cooldown)
        self.max_requeues = max_requeues
        self.record_retention = record_retention
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._grids: Dict[str, GridRecord] = {}
        #: canonical grid key -> id of the first accepted grid record.
        self._grid_primaries: Dict[str, str] = {}
        self._grid_sequence = 0
        self._sequence = 0
        self._in_flight = 0
        self._idle = threading.Condition(self._lock)
        self._slots = threading.Semaphore(workers)
        self._dispatcher: Optional[threading.Thread] = None
        self._running = False
        self._state = "idle"  # idle | serving | draining | drained
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self, resume: bool = True) -> "TMAService":
        """Boot the dispatcher; optionally resubmit persisted jobs."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._state = "serving"
            self.started_at = time.time()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="tma-dispatcher", daemon=True)
        self._dispatcher.start()
        if resume:
            for job in self.store.load_pending():
                receipt = self.submit_job(job, client="resume")
                if receipt.accepted:
                    self.metrics.inc("jobs_resumed")
        return self

    def _dispatch_loop(self) -> None:
        while True:
            acquired = self._slots.acquire(timeout=0.1)
            with self._lock:
                if not self._running and self.scheduler.queue_depth == 0:
                    if acquired:
                        self._slots.release()
                    return
            if not acquired:
                continue
            record = self.scheduler.next_job(timeout=0.1)
            if record is None:
                self._slots.release()
                with self._lock:
                    stop = not self._running
                if stop and self.scheduler.queue_depth == 0:
                    return
                continue
            self._launch(record)

    def _launch(self, record: JobRecord) -> None:
        breaker_key = self._breaker_key(record)
        if not self.breaker.allow(breaker_key):
            # Circuit open: the pair has been failing repeatedly, so
            # skip it — the job resolves immediately instead of
            # burning a worker slot on a likely failure.
            self.metrics.inc("jobs_quarantined")
            self._resolve(record, state="quarantined",
                          error=f"circuit open for {breaker_key}; "
                                f"job skipped")
            self._slots.release()
            self._refresh_gauges()
            return
        record.started_at = time.time()
        with self._lock:
            self._in_flight += 1
        self.metrics.inc("jobs_executed")
        self._emit(record, "running")
        allow_crash_hook = record.requeues == 0
        spec = record.job.runner_spec()
        if self.timing_engine is not None:
            spec = replace(spec, timing_engine=self.timing_engine)
        if record.job.deadline_seconds is not None:
            # Relative budget -> absolute deadline, stamped at launch
            # so queue wait does not eat into the execution budget.
            spec = replace(spec, deadline=(record.started_at
                                           + record.job.deadline_seconds))
        # Windowed jobs stream per-window ticks when the executor keeps
        # the work in-process; progress callbacks cannot cross process
        # or shard boundaries, so those deployments stream lifecycle
        # events only.
        progress = None
        if spec.windows is not None and self.pool.supports_callbacks:
            record_id = record.id
            progress = (lambda message:
                        self.events.append(record_id, "progress",
                                           {"message": message}))
        try:
            future = self.pool.submit(spec,
                                      record.job.workload,
                                      record.job.config,
                                      allow_crash_hook,
                                      progress=progress)
        except Exception as exc:  # noqa: BLE001 - submission itself died
            self._finish_execution(record, error=exc)
            return
        future.add_done_callback(
            lambda fut, rec=record: self._on_future_done(rec, fut))

    @staticmethod
    def _breaker_key(record: JobRecord) -> str:
        return f"{record.job.workload}:{record.job.config}"

    def _on_future_done(self, record: JobRecord, future) -> None:
        error = future.exception()
        if error is not None:
            self._finish_execution(record, error=error, future=future)
            return
        self._finish_execution(record, outcome=future.result())

    def _finish_execution(self, record: JobRecord,
                          outcome=None, error: Optional[BaseException] = None,
                          future=None) -> None:
        breaker_key = self._breaker_key(record)
        try:
            if error is not None and self.pool.note_broken(error, future):
                self.metrics.inc("worker_crashes")
                if record.requeues < self.max_requeues:
                    self.metrics.inc("jobs_requeued")
                    self.scheduler.requeue(record)
                    return
                self.breaker.record_failure(breaker_key)
                self._resolve(record, state="failed",
                              error=f"worker crashed "
                                    f"{record.requeues + 1} times: {error}")
                return
            if error is not None:
                self.breaker.record_failure(breaker_key)
                self._resolve(record, state="failed",
                              error=f"{type(error).__name__}: {error}")
                return
            self._account_trace_cache(outcome)
            payload = outcome_payload(outcome)
            state = "done" if outcome.ok else "failed"
            if outcome.ok:
                self.breaker.record_success(breaker_key)
            else:
                self.breaker.record_failure(breaker_key)
            self._resolve(record, state=state,
                          result=payload,
                          error=None if outcome.ok else outcome.error)
        finally:
            with self._lock:
                self._in_flight -= 1
                self._idle.notify_all()
            self._slots.release()
            self._refresh_gauges()

    def _account_trace_cache(self, outcome) -> None:
        """Fold a run's trace-memoization counter delta into metrics.

        Worker processes ship the delta home on the
        :class:`~repro.reliability.runner.RunOutcome`, so the registry
        reflects cache behaviour across the whole pool.
        """
        delta = getattr(outcome, "trace_cache", None) or {}
        for key, amount in delta.items():
            if amount:
                self.metrics.inc(f"trace_cache_{key}", amount)

    def _emit(self, record: JobRecord, event: str, **data: Any) -> None:
        """Journal one lifecycle event for SSE subscribers."""
        self.events.append(record.id, event,
                           dict(data, job_key=record.job_key))

    def _emit_terminal(self, record: JobRecord) -> None:
        """Journal a record's terminal event, result payload included.

        Streaming clients get the full result in the final frame, so a
        successful stream never needs a follow-up status poll.
        """
        data: Dict[str, Any] = {"state": record.state}
        if record.error:
            data["error"] = record.error
        if record.result is not None:
            data["result"] = record.result
        self._emit(record, record.state, **data)

    def _resolve(self, record: JobRecord, state: str,
                 result: Optional[Dict[str, Any]] = None,
                 error: Optional[str] = None) -> None:
        """Complete a primary and fan its result out to followers."""
        followers = self.scheduler.resolve(record)
        now = time.time()
        for target in [record] + followers:
            target.state = state
            target.finished_at = now
            target.result = result
            target.error = error
            self._emit_terminal(target)
            latency = target.latency()
            if latency is not None:
                self.metrics.observe("job_latency_seconds", latency)
            if record.started_at is not None and target is record:
                self.metrics.observe("exec_seconds",
                                     now - record.started_at)
            self.metrics.inc("jobs_completed" if state == "done"
                             else "jobs_failed")
        self._prune_records()

    # ------------------------------------------------------------------
    # Client-facing API

    def submit_payload(self, payload: Dict[str, Any]) -> SubmitReceipt:
        """Admit a raw JSON submission: ``{job fields..., client, priority}``."""
        if not isinstance(payload, dict):
            raise JobValidationError("submission must be a JSON object")
        body = dict(payload)
        client = str(body.pop("client", "anonymous")) or "anonymous"
        try:
            priority = int(body.pop("priority", DEFAULT_PRIORITY))
        except (TypeError, ValueError):
            raise JobValidationError("priority must be an integer") from None
        if not (0 <= priority <= MAX_PRIORITY):
            raise JobValidationError(
                f"priority must be in [0, {MAX_PRIORITY}]")
        job = TMAJob.from_payload(body)
        return self.submit_job(job, client=client, priority=priority)

    def submit_job(self, job: TMAJob, client: str = "anonymous",
                   priority: int = DEFAULT_PRIORITY) -> SubmitReceipt:
        job.validate()
        record = self._new_record(job, client, priority)
        self.metrics.inc("jobs_submitted")

        # O(1) fast path: an exact cached result short-circuits the
        # queue and the pool entirely.
        cached = self.store.lookup(job)
        if cached is not None:
            now = time.time()
            record.state = "done"
            record.started_at = now
            record.finished_at = now
            record.result = cached
            self.metrics.inc("jobs_accepted")
            self.metrics.inc("cache_hits")
            self.metrics.inc("jobs_completed")
            self._emit(record, "queued", client=client)
            self._emit_terminal(record)
            latency = record.latency()
            if latency is not None:
                self.metrics.observe("job_latency_seconds", latency)
            self._refresh_gauges()
            return SubmitReceipt(record=record, accepted=True,
                                 queue_depth=self.scheduler.queue_depth)

        receipt = self.scheduler.submit(record)
        if receipt.accepted:
            self.metrics.inc("jobs_accepted")
            self._emit(record, "queued", client=client,
                       coalesced_with=record.coalesced_with)
            if receipt.deduped:
                self.metrics.inc("dedup_hits")
        else:
            self.metrics.inc("jobs_rejected")
            receipt.retry_after = self._retry_after_estimate()
            self._emit_terminal(record)
        self._refresh_gauges()
        return receipt

    def submit_multicore_payload(self,
                                 payload: Dict[str, Any]) -> SubmitReceipt:
        """Admit a raw multicore submission: ``{scenario..., client, priority}``.

        The resulting :class:`MulticoreJob` rides the exact TMAJob
        path — admission, in-flight dedup, breaker, cached-payload
        fast path, drain persistence — via :meth:`submit_job`.
        """
        if not isinstance(payload, dict):
            raise JobValidationError("submission must be a JSON object")
        body = dict(payload)
        client = str(body.pop("client", "anonymous")) or "anonymous"
        try:
            priority = int(body.pop("priority", DEFAULT_PRIORITY))
        except (TypeError, ValueError):
            raise JobValidationError("priority must be an integer") from None
        if not (0 <= priority <= MAX_PRIORITY):
            raise JobValidationError(
                f"priority must be in [0, {MAX_PRIORITY}]")
        job = MulticoreJob.from_payload(body)
        self.metrics.inc("multicore_submitted")
        return self.submit_job(job, client=client, priority=priority)

    def submit_grid_payload(self, payload: Dict[str, Any]) -> GridRecord:
        """Admit a raw grid submission: ``{grid fields..., client, priority}``."""
        if not isinstance(payload, dict):
            raise JobValidationError("submission must be a JSON object")
        body = dict(payload)
        client = str(body.pop("client", "anonymous")) or "anonymous"
        try:
            priority = int(body.pop("priority", DEFAULT_PRIORITY))
        except (TypeError, ValueError):
            raise JobValidationError("priority must be an integer") from None
        if not (0 <= priority <= MAX_PRIORITY):
            raise JobValidationError(
                f"priority must be in [0, {MAX_PRIORITY}]")
        grid_job = GridJob.from_payload(body)
        return self.submit_grid(grid_job, client=client, priority=priority)

    def submit_grid(self, grid_job: GridJob, client: str = "anonymous",
                    priority: int = DEFAULT_PRIORITY) -> GridRecord:
        """Fan one grid request into per-point jobs; returns the index.

        Each point rides the normal job path — result-store hits
        complete immediately, the rest are admitted *atomically*
        through :meth:`JobScheduler.submit_many` (all points queued or
        the whole grid rejected, never a partial matrix) and coalesce
        point-by-point onto any in-flight duplicates, including points
        of other clients' overlapping grids.  The ``grid_points_*``
        counters and the ``grid_share_rate`` gauge expose how much of
        the design space was served without a fresh execution.
        """
        grid_job.validate()
        pairs = grid_job.expand()
        grid_key = grid_job.grid_key()
        self.metrics.inc("grids_submitted")
        self.metrics.inc("grid_points_total", len(pairs))

        point_record_ids: Dict[str, str] = {}
        queued: List[JobRecord] = []
        for point, job in pairs:
            record = self._new_record(job, client, priority)
            self.metrics.inc("jobs_submitted")
            point_record_ids[point.key] = record.id
            cached = self.store.lookup(job)
            if cached is not None:
                now = time.time()
                record.state = "done"
                record.started_at = now
                record.finished_at = now
                record.result = cached
                self.metrics.inc("jobs_accepted")
                self.metrics.inc("cache_hits")
                self.metrics.inc("jobs_completed")
                self.metrics.inc("grid_points_cached")
                self._emit(record, "queued", client=client)
                self._emit_terminal(record)
                latency = record.latency()
                if latency is not None:
                    self.metrics.observe("job_latency_seconds", latency)
                continue
            queued.append(record)

        accepted = True
        if queued:
            receipts = self.scheduler.submit_many(queued)
            accepted = all(receipt.accepted for receipt in receipts)
            if accepted:
                for receipt in receipts:
                    self.metrics.inc("jobs_accepted")
                    self._emit(receipt.record, "queued", client=client,
                               coalesced_with=receipt.record.coalesced_with)
                    if receipt.deduped:
                        self.metrics.inc("dedup_hits")
                        self.metrics.inc("grid_points_coalesced")
            else:
                self.metrics.inc("jobs_rejected", len(queued))
                self.metrics.inc("grids_rejected")
                for record in queued:
                    self._emit_terminal(record)

        with self._lock:
            self._grid_sequence += 1
            grid_id = f"grid-{self._grid_sequence:04d}"
            primary_id = self._grid_primaries.get(grid_key)
            grid_record = GridRecord(
                id=grid_id, key=grid_key, workload=grid_job.workload,
                scale=grid_job.scale, client=client,
                point_keys=[point.key for point, _ in pairs],
                point_record_ids=point_record_ids,
                accepted=accepted, coalesced_with=primary_id)
            if primary_id is not None:
                self.metrics.inc("grid_dedup_hits")
            elif accepted:
                self._grid_primaries[grid_key] = grid_id
            self._grids[grid_id] = grid_record
            while len(self._grids) > DEFAULT_GRID_RETENTION:
                victim_id, victim = next(iter(self._grids.items()))
                del self._grids[victim_id]
                if self._grid_primaries.get(victim.key) == victim_id:
                    del self._grid_primaries[victim.key]
        self._refresh_gauges()
        return grid_record

    def grid_status(self, grid_id: str) -> Optional[Dict[str, Any]]:
        """Aggregate matrix view of one grid submission (None = 404)."""
        with self._lock:
            grid = self._grids.get(grid_id)
            if grid is None:
                return None
            points: Dict[str, Any] = {}
            states: List[str] = []
            for key in grid.point_keys:
                record_id = grid.point_record_ids.get(key)
                record = self._records.get(record_id or "")
                if record is None:
                    points[key] = {"record": record_id, "state": "evicted"}
                    states.append("evicted")
                    continue
                entry: Dict[str, Any] = {"record": record_id,
                                         "state": record.state}
                if record.result is not None:
                    entry["result"] = record.result
                if record.error:
                    entry["error"] = record.error
                points[key] = entry
                states.append(record.state)
        if not grid.accepted:
            state = "rejected"
        elif any(s in ("failed", "rejected", "quarantined", "evicted")
                 for s in states):
            state = ("failed" if all(s in _TERMINAL_RECORD_STATES
                                     or s == "evicted" for s in states)
                     else "running")
        elif all(s == "done" for s in states):
            state = "done"
        else:
            state = "running"
        return {
            "id": grid.id,
            "grid_key": grid.key,
            "workload": grid.workload,
            "scale": grid.scale,
            "client": grid.client,
            "state": state,
            "accepted": grid.accepted,
            "submitted_at": grid.submitted_at,
            "coalesced_with": grid.coalesced_with,
            "points": points,
        }

    def _new_record(self, job: TMAJob, client: str,
                    priority: int) -> JobRecord:
        with self._lock:
            self._sequence += 1
            record = JobRecord(id=f"job-{self._sequence:06d}", job=job,
                               client=client, priority=priority)
            self._records[record.id] = record
            self._prune_records_locked()
            return record

    def _prune_records_locked(self) -> None:
        """Evict the oldest terminal records beyond ``record_retention``.

        Live records (queued/running) are never evicted — they are
        bounded by the admission queue — so a long-running service
        holds at most ``record_retention`` finished records plus the
        bounded live set, instead of every record ever submitted.
        Evicted job ids answer 404 afterwards.
        """
        excess = len(self._records) - self.record_retention
        if excess <= 0:
            return
        victims = []
        for job_id, record in self._records.items():
            if record.state in _TERMINAL_RECORD_STATES:
                victims.append(job_id)
                if len(victims) >= excess:
                    break
        for job_id in victims:
            del self._records[job_id]
            self.events.discard(job_id)
        if victims:
            self.metrics.inc("records_evicted", len(victims))

    def _prune_records(self) -> None:
        with self._lock:
            self._prune_records_locked()

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            record = self._records.get(job_id)
        return record.to_payload() if record else None

    def records(self) -> List[JobRecord]:
        with self._lock:
            return list(self._records.values())

    def _retry_after_estimate(self) -> float:
        """Seconds until a queue slot should free up under current load."""
        mean = self.metrics.histogram_mean("exec_seconds")
        if mean <= 0:
            return _DEFAULT_RETRY_AFTER
        depth = self.scheduler.queue_depth + self.in_flight
        return round(max(0.05, mean * depth / self.pool.workers), 3)

    # ------------------------------------------------------------------
    # Observability

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _refresh_gauges(self) -> None:
        self.metrics.set_gauge("queue_depth", self.scheduler.queue_depth)
        self.metrics.set_gauge("in_flight", self.in_flight)
        self.metrics.set_gauge("draining",
                               1.0 if self._state in ("draining", "drained")
                               else 0.0)
        hits = (self.metrics.counter("trace_cache_mem_hits")
                + self.metrics.counter("trace_cache_disk_hits"))
        lookups = hits + self.metrics.counter("trace_cache_misses")
        if lookups:
            self.metrics.set_gauge("trace_cache_hit_rate", hits / lookups)
        points_total = self.metrics.counter("grid_points_total")
        if points_total:
            shared = (self.metrics.counter("grid_points_cached")
                      + self.metrics.counter("grid_points_coalesced"))
            self.metrics.set_gauge("grid_share_rate", shared / points_total)

    def metrics_snapshot(self) -> Dict[str, Any]:
        self._refresh_gauges()
        snapshot = self.metrics.snapshot()
        snapshot["state"] = self._state
        if self.started_at is not None:
            snapshot["uptime_seconds"] = round(
                time.time() - self.started_at, 3)
        return snapshot

    def healthz(self) -> Dict[str, Any]:
        with self._lock:
            state = self._state
        payload = {
            "status": "ok" if state == "serving" else state,
            "state": state,
            "version": __version__,
            "queue_depth": self.scheduler.queue_depth,
            "in_flight": self.in_flight,
            "workers": self.pool.workers,
            "executor": self.pool.kind,
            "breaker_open": sorted(self.breaker.open_keys()),
        }
        if self.shard is not None:
            # Topology self-report: the gateway and the smoke harness
            # assert shard identity and ring placement from here
            # instead of guessing.
            payload["shard"] = self.shard.to_payload()
        return payload

    # ------------------------------------------------------------------
    # Drain and shutdown

    def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown: finish what we can, persist the rest.

        Closes admission immediately, waits up to ``timeout`` seconds
        for the queue and in-flight jobs to finish, then persists any
        still-queued accepted jobs (and marks their records
        ``requeued``).  Returns a drain report whose ``persisted``
        figure counts every accepted submission left undone — queued
        primaries *plus* their coalesced followers, matching the
        ``jobs_persisted`` counter — so callers asserting zero loss
        check ``completed + failed + persisted == accepted``.
        (The pending file itself stores each unique job once.)
        """
        with self._lock:
            if self._state in ("draining", "drained"):
                return {"state": self._state, "persisted": 0}
            self._state = "draining"
        self.scheduler.close()
        self._refresh_gauges()

        deadline = time.time() + timeout
        with self._idle:
            while (self._in_flight > 0 or self.scheduler.queue_depth > 0):
                remaining = deadline - time.time()
                if remaining <= 0:
                    break
                self._idle.wait(min(remaining, 0.1))

        # Whatever is still queued gets durably persisted; whatever is
        # still in flight gets a short grace period from shutdown(wait).
        leftovers = self.scheduler.drain_queued()
        persisted_jobs: List[TMAJob] = []
        persisted_records = 0
        for record in leftovers:
            followers = self.scheduler.resolve(record)
            persisted_jobs.append(record.job)
            for target in [record] + followers:
                target.state = "requeued"
                self._emit_terminal(target)
                self.metrics.inc("jobs_persisted")
                persisted_records += 1
        if persisted_jobs:
            self.store.persist_pending(persisted_jobs)

        with self._lock:
            self._running = False
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        self.pool.shutdown(wait=True)
        with self._lock:
            self._state = "drained"
        self._refresh_gauges()
        return {
            "state": "drained",
            "persisted": persisted_records,
            "completed": self.metrics.counter("jobs_completed"),
            "failed": self.metrics.counter("jobs_failed"),
            "accepted": self.metrics.counter("jobs_accepted"),
            # Handoff manifest: a gateway removing this shard from the
            # ring resubmits these payloads to the surviving owners, so
            # a graceful leave rebalances pending work immediately
            # instead of waiting for this node to restart.
            "pending_jobs": [job.to_payload() for job in persisted_jobs],
        }

    def stop(self) -> None:
        """Hard stop for tests: drain with a tiny timeout."""
        self.drain(timeout=0.5)
