"""Thin Python client for the analysis service's JSON API.

Stdlib-only (:mod:`urllib.request`).  The client mirrors the service's
backpressure contract: a 429 raises :class:`JobRejected` carrying the
server's ``retry_after`` hint, and :meth:`ServiceClient.submit` can
optionally honour it for you (``retries > 0``), which is what the CLI
and the smoke harness use to push a burst through a bounded queue.

Transport resilience: connection-level failures (refused, reset, DNS)
surface as :class:`ServiceError` with ``status == 0``.  *Idempotent*
requests — every GET, plus ``POST /admin/drain`` which the service
makes safe to repeat — are retried through the shared
:class:`~repro.reliability.retry.RetryPolicy` (capped exponential
backoff, deterministic jitter) before that error is allowed to
propagate.  Submissions are **not** retried on connection errors (the
job may have been accepted before the connection died); they are only
retried on explicit 429 rejections, where the server has vouched that
nothing was enqueued.

The chaos layer (:mod:`repro.chaos`) hooks the transport seam: an
active plan may refuse/reset/delay individual requests, which exercises
exactly these retry paths.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional

from ..chaos import injector as chaos
from ..reliability.retry import RetryPolicy
from .stream import TERMINAL_EVENTS, parse_sse

#: Transport retry schedule: three tries, fast capped backoff.  Small
#: enough that a genuinely-down service fails in well under a second.
DEFAULT_CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.05, max_delay=0.5, multiplier=2.0)

#: Environment override for the default request timeout (seconds).
TIMEOUT_ENV = "REPRO_CLIENT_TIMEOUT"
#: Environment override for the liveness-probe timeout (seconds).
CONNECT_TIMEOUT_ENV = "REPRO_CLIENT_CONNECT_TIMEOUT"

#: Built-in default when neither the constructor nor the environment
#: picks a timeout.
DEFAULT_TIMEOUT = 10.0


def _env_timeout(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class ServiceError(RuntimeError):
    """A non-2xx response that is not backpressure (4xx/5xx).

    ``status == 0`` means the request never got an HTTP response at
    all: connection refused/reset, DNS failure, timeout.
    """

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class JobRejected(ServiceError):
    """HTTP 429: the queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(status, payload)
        self.retry_after = float(payload.get("retry_after", 1.0))


class ServiceClient:
    """Submit/poll/stream helper bound to one service base URL.

    Timeouts are configurable per client and through the environment
    (``REPRO_CLIENT_TIMEOUT`` / ``REPRO_CLIENT_CONNECT_TIMEOUT``):
    explicit constructor arguments win, the environment fills in the
    rest, and ``connect_timeout`` falls back to ``timeout``.  The two
    knobs exist because stdlib ``urllib`` has a single socket timeout:
    ``timeout`` bounds ordinary request/response exchanges, while
    ``connect_timeout`` bounds the cheap liveness probes
    (:meth:`healthz`, :meth:`metrics`) where a hung connect should
    fail fast — the gateway uses exactly that split when probing
    shards.
    """

    def __init__(self, base_url: str, timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 connect_timeout: Optional[float] = None) -> None:
        self.base_url = base_url.rstrip("/")
        if timeout is None:
            timeout = _env_timeout(TIMEOUT_ENV) or DEFAULT_TIMEOUT
        self.timeout = timeout
        if connect_timeout is None:
            connect_timeout = _env_timeout(CONNECT_TIMEOUT_ENV) or timeout
        self.connect_timeout = connect_timeout
        self.retry_policy = retry_policy or DEFAULT_CLIENT_RETRY_POLICY
        self._request_sequence = 0

    # ------------------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]],
                      attempt: int,
                      timeout: Optional[float] = None) -> Dict[str, Any]:
        # Chaos transport seam.  The per-client request sequence is
        # part of the decision key, so a retried request draws a fresh
        # decision (a single flaky connection, not a permanently dead
        # route) and distinct requests to the same path fault
        # independently.
        del attempt  # folded into the sequence below
        sequence = self._request_sequence
        self._request_sequence += 1
        fault = chaos.client_fault(f"{method}:{path}:req-{sequence}")
        if fault == "delay":
            active = chaos.plan()
            if active is not None:
                time.sleep(active.delay_seconds)
        elif fault is not None:
            raise ServiceError(
                0, {"error": f"chaos-injected connection {fault}"})
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            effective = timeout if timeout is not None else self.timeout
            with urllib.request.urlopen(request,
                                        timeout=effective) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            if exc.code == 429:
                raise JobRejected(exc.code, payload) from None
            raise ServiceError(exc.code, payload) from None
        except urllib.error.URLError as exc:
            # Connection-level failure (refused, DNS, timeout): status 0.
            raise ServiceError(0, {"error": str(exc.reason)}) from None

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 idempotent: Optional[bool] = None,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        if idempotent is None:
            idempotent = method == "GET"
        attempts = self.retry_policy.max_attempts if idempotent else 1
        last_error: Optional[ServiceError] = None
        for attempt in range(attempts):
            if attempt:
                pause = self.retry_policy.delay(
                    attempt - 1, salt=f"{method}:{path}")
                if pause > 0:
                    time.sleep(pause)
            try:
                return self._request_once(method, path, body, attempt,
                                          timeout=timeout)
            except ServiceError as exc:
                if exc.status != 0 or not idempotent:
                    raise
                last_error = exc  # connection-level: retry
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------

    def submit(self, workload: str, retries: int = 0,
               **fields: Any) -> Dict[str, Any]:
        """POST /jobs; optionally retry (honouring Retry-After) on 429.

        The pause before each retry is the larger of the retry policy's
        scheduled backoff and the server's (capped) ``retry_after``
        hint, so the client never hammers a loaded queue faster than
        the server asked it to.
        """
        body = {"workload": workload, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                pause = max(self.retry_policy.delay(
                                attempt, salt=f"submit:{workload}"),
                            min(rejected.retry_after, 2.0))
                attempt += 1
                time.sleep(pause)

    def submit_multicore(self, scenario: str, retries: int = 0,
                         **fields: Any) -> Dict[str, Any]:
        """POST /multicore; optionally retry (honouring Retry-After) on 429."""
        body = {"scenario": scenario, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/multicore", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                pause = max(self.retry_policy.delay(
                                attempt, salt=f"multicore:{scenario}"),
                            min(rejected.retry_after, 2.0))
                attempt += 1
                time.sleep(pause)

    def submit_grid(self, workload: str, retries: int = 0,
                    **fields: Any) -> Dict[str, Any]:
        """POST /grids; optionally retry (honouring Retry-After) on 429.

        A grid rejection is all-or-nothing (the server admits the whole
        design-space matrix atomically or none of it), so retrying a
        429 is always safe: nothing was enqueued.
        """
        body = {"workload": workload, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/grids", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                pause = max(self.retry_policy.delay(
                                attempt, salt=f"grid:{workload}"),
                            min(rejected.retry_after, 2.0))
                attempt += 1
                time.sleep(pause)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def grid_status(self, grid_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/grids/{grid_id}")

    def wait_grid(self, grid_id: str, timeout: float = 120.0,
                  poll: float = 0.05,
                  deadline: Optional[float] = None) -> Dict[str, Any]:
        """Poll until every grid point reaches a terminal state.

        ``deadline`` is an *absolute* ``time.time()`` cutoff that wins
        over ``timeout`` — the same plumbing ``submit --deadline``
        stamps onto jobs, so a CLI grid wait and the jobs it watches
        share one wall-clock budget instead of two drifting ones.
        """
        if deadline is None:
            deadline = time.time() + timeout
        terminal = ("done", "failed", "rejected")
        while True:
            payload = self.grid_status(grid_id)
            if payload["state"] in terminal:
                return payload
            if time.time() >= deadline:
                raise TimeoutError(
                    f"grid {grid_id} still {payload['state']!r} "
                    f"at deadline (timeout {timeout:.1f}s)")
            time.sleep(poll)

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05,
             deadline: Optional[float] = None) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or timeout).

        ``deadline`` (absolute, optional) wins over ``timeout`` — see
        :meth:`wait_grid`.
        """
        if deadline is None:
            deadline = time.time() + timeout
        terminal = ("done", "failed", "rejected", "requeued", "quarantined")
        while True:
            payload = self.status(job_id)
            if payload["state"] in terminal:
                return payload
            if time.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']!r} "
                    f"at deadline (timeout {timeout:.1f}s)")
            time.sleep(poll)

    def stream(self, job_id: str, last_event_id: int = 0,
               reconnect: bool = True,
               read_timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield SSE lifecycle events for a job until its terminal event.

        Events are ``{"id": seq, "event": name, "data": {...}}`` in
        journal order: ``queued`` → ``running`` → ``progress``\\* →
        one terminal event (whose data carries the full result), after
        which the generator returns.  On a dropped connection the
        client reconnects with the last seen sequence number
        (``Last-Event-ID``), so resumed streams never replay events —
        and never duplicate the terminal one.  Pass
        ``reconnect=False`` to surface transport failures as
        :class:`ServiceError` instead.
        """
        last = last_event_id
        while True:
            request = urllib.request.Request(
                f"{self.base_url}/jobs/{job_id}/events?after={last}",
                headers={"Accept": "text/event-stream",
                         "Last-Event-ID": str(last)})
            try:
                timeout = (read_timeout if read_timeout is not None
                           else self.timeout)
                with urllib.request.urlopen(request,
                                            timeout=timeout) as response:
                    for event in parse_sse(response):
                        last = max(last, int(event.get("id", 0)))
                        yield event
                        if event.get("event") in TERMINAL_EVENTS:
                            return
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read().decode("utf-8"))
                except ValueError:
                    payload = {"error": str(exc)}
                raise ServiceError(exc.code, payload) from None
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                if not reconnect:
                    raise ServiceError(0, {"error": str(exc)}) from None
                time.sleep(self.retry_policy.delay(
                    0, salt=f"stream:{job_id}"))
            # Server closed the stream without a terminal event (drain,
            # relay hop died): reconnect and resume after `last`.
            if not reconnect:
                raise ServiceError(
                    0, {"error": f"stream for {job_id} ended early"})

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics",
                             timeout=self.connect_timeout)

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz",
                             timeout=self.connect_timeout)

    def drain(self) -> Dict[str, Any]:
        # Draining twice is safe (the second is a no-op), so transport
        # retries are allowed even though this is a POST.
        return self._request("POST", "/admin/drain", idempotent=True)
