"""Thin Python client for the analysis service's JSON API.

Stdlib-only (:mod:`urllib.request`).  The client mirrors the service's
backpressure contract: a 429 raises :class:`JobRejected` carrying the
server's ``retry_after`` hint, and :meth:`ServiceClient.submit` can
optionally honour it for you (``retries > 0``), which is what the CLI
and the smoke harness use to push a burst through a bounded queue.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServiceError(RuntimeError):
    """A non-2xx response that is not backpressure (4xx/5xx)."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class JobRejected(ServiceError):
    """HTTP 429: the queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(status, payload)
        self.retry_after = float(payload.get("retry_after", 1.0))


class ServiceClient:
    """Submit/poll helper bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            if exc.code == 429:
                raise JobRejected(exc.code, payload) from None
            raise ServiceError(exc.code, payload) from None
        except urllib.error.URLError as exc:
            # Connection-level failure (refused, DNS, timeout): status 0.
            raise ServiceError(0, {"error": str(exc.reason)}) from None

    # ------------------------------------------------------------------

    def submit(self, workload: str, retries: int = 0,
               **fields: Any) -> Dict[str, Any]:
        """POST /jobs; optionally retry (honouring Retry-After) on 429."""
        body = {"workload": workload, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(min(rejected.retry_after, 2.0))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or timeout)."""
        deadline = time.time() + timeout
        while True:
            payload = self.status(job_id)
            if payload["state"] in ("done", "failed", "rejected", "requeued"):
                return payload
            if time.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']!r} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/admin/drain")
