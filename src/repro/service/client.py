"""Thin Python client for the analysis service's JSON API.

Stdlib-only (:mod:`urllib.request`).  The client mirrors the service's
backpressure contract: a 429 raises :class:`JobRejected` carrying the
server's ``retry_after`` hint, and :meth:`ServiceClient.submit` can
optionally honour it for you (``retries > 0``), which is what the CLI
and the smoke harness use to push a burst through a bounded queue.

Transport resilience: connection-level failures (refused, reset, DNS)
surface as :class:`ServiceError` with ``status == 0``.  *Idempotent*
requests — every GET, plus ``POST /admin/drain`` which the service
makes safe to repeat — are retried through the shared
:class:`~repro.reliability.retry.RetryPolicy` (capped exponential
backoff, deterministic jitter) before that error is allowed to
propagate.  Submissions are **not** retried on connection errors (the
job may have been accepted before the connection died); they are only
retried on explicit 429 rejections, where the server has vouched that
nothing was enqueued.

The chaos layer (:mod:`repro.chaos`) hooks the transport seam: an
active plan may refuse/reset/delay individual requests, which exercises
exactly these retry paths.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from ..chaos import injector as chaos
from ..reliability.retry import RetryPolicy

#: Transport retry schedule: three tries, fast capped backoff.  Small
#: enough that a genuinely-down service fails in well under a second.
DEFAULT_CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.05, max_delay=0.5, multiplier=2.0)


class ServiceError(RuntimeError):
    """A non-2xx response that is not backpressure (4xx/5xx).

    ``status == 0`` means the request never got an HTTP response at
    all: connection refused/reset, DNS failure, timeout.
    """

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class JobRejected(ServiceError):
    """HTTP 429: the queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(status, payload)
        self.retry_after = float(payload.get("retry_after", 1.0))


class ServiceClient:
    """Submit/poll helper bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 10.0,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry_policy = retry_policy or DEFAULT_CLIENT_RETRY_POLICY
        self._request_sequence = 0

    # ------------------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]],
                      attempt: int) -> Dict[str, Any]:
        # Chaos transport seam.  The per-client request sequence is
        # part of the decision key, so a retried request draws a fresh
        # decision (a single flaky connection, not a permanently dead
        # route) and distinct requests to the same path fault
        # independently.
        del attempt  # folded into the sequence below
        sequence = self._request_sequence
        self._request_sequence += 1
        fault = chaos.client_fault(f"{method}:{path}:req-{sequence}")
        if fault == "delay":
            active = chaos.plan()
            if active is not None:
                time.sleep(active.delay_seconds)
        elif fault is not None:
            raise ServiceError(
                0, {"error": f"chaos-injected connection {fault}"})
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            if exc.code == 429:
                raise JobRejected(exc.code, payload) from None
            raise ServiceError(exc.code, payload) from None
        except urllib.error.URLError as exc:
            # Connection-level failure (refused, DNS, timeout): status 0.
            raise ServiceError(0, {"error": str(exc.reason)}) from None

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 idempotent: Optional[bool] = None) -> Dict[str, Any]:
        if idempotent is None:
            idempotent = method == "GET"
        attempts = self.retry_policy.max_attempts if idempotent else 1
        last_error: Optional[ServiceError] = None
        for attempt in range(attempts):
            if attempt:
                pause = self.retry_policy.delay(
                    attempt - 1, salt=f"{method}:{path}")
                if pause > 0:
                    time.sleep(pause)
            try:
                return self._request_once(method, path, body, attempt)
            except ServiceError as exc:
                if exc.status != 0 or not idempotent:
                    raise
                last_error = exc  # connection-level: retry
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------

    def submit(self, workload: str, retries: int = 0,
               **fields: Any) -> Dict[str, Any]:
        """POST /jobs; optionally retry (honouring Retry-After) on 429.

        The pause before each retry is the larger of the retry policy's
        scheduled backoff and the server's (capped) ``retry_after``
        hint, so the client never hammers a loaded queue faster than
        the server asked it to.
        """
        body = {"workload": workload, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                pause = max(self.retry_policy.delay(
                                attempt, salt=f"submit:{workload}"),
                            min(rejected.retry_after, 2.0))
                attempt += 1
                time.sleep(pause)

    def submit_multicore(self, scenario: str, retries: int = 0,
                         **fields: Any) -> Dict[str, Any]:
        """POST /multicore; optionally retry (honouring Retry-After) on 429."""
        body = {"scenario": scenario, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/multicore", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                pause = max(self.retry_policy.delay(
                                attempt, salt=f"multicore:{scenario}"),
                            min(rejected.retry_after, 2.0))
                attempt += 1
                time.sleep(pause)

    def submit_grid(self, workload: str, retries: int = 0,
                    **fields: Any) -> Dict[str, Any]:
        """POST /grids; optionally retry (honouring Retry-After) on 429.

        A grid rejection is all-or-nothing (the server admits the whole
        design-space matrix atomically or none of it), so retrying a
        429 is always safe: nothing was enqueued.
        """
        body = {"workload": workload, **fields}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/grids", body)
            except JobRejected as rejected:
                if attempt >= retries:
                    raise
                pause = max(self.retry_policy.delay(
                                attempt, salt=f"grid:{workload}"),
                            min(rejected.retry_after, 2.0))
                attempt += 1
                time.sleep(pause)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def grid_status(self, grid_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/grids/{grid_id}")

    def wait_grid(self, grid_id: str, timeout: float = 120.0,
                  poll: float = 0.05) -> Dict[str, Any]:
        """Poll until every grid point reaches a terminal state."""
        deadline = time.time() + timeout
        terminal = ("done", "failed", "rejected")
        while True:
            payload = self.grid_status(grid_id)
            if payload["state"] in terminal:
                return payload
            if time.time() >= deadline:
                raise TimeoutError(
                    f"grid {grid_id} still {payload['state']!r} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or timeout)."""
        deadline = time.time() + timeout
        terminal = ("done", "failed", "rejected", "requeued", "quarantined")
        while True:
            payload = self.status(job_id)
            if payload["state"] in terminal:
                return payload
            if time.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']!r} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def drain(self) -> Dict[str, Any]:
        # Draining twice is safe (the second is a no-op), so transport
        # retries are allowed even though this is a POST.
        return self._request("POST", "/admin/drain", idempotent=True)
