"""Gateway: one stateless front door for a shard cluster.

The gateway owns no queue and executes nothing.  It routes each
submission to the shard that owns the job's canonical key on the
consistent-hash ring (:mod:`repro.service.hashring`), fans design-space
grids out as per-shard sub-grids, aggregates status across the cluster,
relays SSE event streams, and survives shard failure by re-routing
accepted work to the surviving owners.

**Routing exactness.**  A job's canonical key lands on exactly one
shard, so the cluster-wide dedup story is the single-node one: every
duplicate of an analysis converges on the same scheduler.  Grid points
route by their *point job's* key — the same key a direct ``POST /jobs``
of that analysis would route by — so grids and individual submissions
coalesce shard-side exactly as they do on one node.

**Failure handling.**  Transport failures against a shard
(``ServiceError.status == 0``) feed a per-shard
:class:`~repro.reliability.breaker.CircuitBreaker`; when a shard's
breaker trips, the gateway *evicts* it — removes it from the ring and
resubmits every non-terminal route it owned to the new ring owners.
Results already completed live in the shared result store, so
re-routed duplicates are served from cache without re-execution;
``use_cache=False`` jobs re-execute (at-least-once on failover, by
design).  A graceful ``leave`` drains the shard first and immediately
resubmits the drain report's ``pending_jobs`` manifest, so rebalance
on planned departure loses nothing and waits for nothing.

**Backpressure.**  A 429 from the owner shard propagates to the caller
verbatim (with its ``Retry-After``): the owner being busy is not a
routing failure, and re-routing around it would break dedup exactness.

Gateway ids are composite — ``<shard>:<remote job id>`` as first
minted — and double as keys into a bounded soft-state route table that
tracks re-homing; a fresh gateway process can still resolve any
not-yet-rerouted id statelessly by parsing it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import __version__
from ..reliability.breaker import CircuitBreaker
from .client import ServiceClient, ServiceError
from .hashring import HashRing, parse_shard_spec
from .job import GridJob, JobValidationError, MulticoreJob, TMAJob
from .metrics import MetricsRegistry, merge_snapshots

#: Bound on retained job routes (terminal routes are pruned oldest
#: first past this; live routes always survive).
DEFAULT_ROUTE_RETENTION = 4096

#: Bound on retained grid routes.
DEFAULT_GRID_ROUTE_RETENTION = 512

#: Consecutive transport failures before a shard is evicted.
DEFAULT_EVICT_THRESHOLD = 2


@dataclass
class JobRoute:
    """Where one accepted submission currently lives."""

    id: str
    shard_id: str
    remote_id: str
    path: str               # "/jobs" | "/multicore"
    body: Dict[str, Any]    # original submission, for re-routing
    job_key: str
    terminal: bool = False
    #: True once the job has been re-homed off its original shard; the
    #: SSE relay then ignores stale client cursors (the new record's
    #: journal restarts its sequence numbers).
    rerouted: bool = False


@dataclass
class GridPart:
    """One shard's slice of a fanned-out grid."""

    shard_id: str
    remote_id: str
    keys: List[str]


@dataclass
class GridRoute:
    """Cluster-wide index of one grid submission."""

    id: str
    grid_key: str
    workload: str
    scale: float
    client: str
    point_keys: List[str]
    #: Shared template fields, used to rebuild per-point jobs (routing
    #: keys) and per-shard sub-grid bodies during re-routing.
    template: Dict[str, Any]
    parts: List[GridPart] = field(default_factory=list)
    accepted: bool = True
    submitted_at: float = field(default_factory=time.time)


class Gateway:
    """Routing + aggregation facade over a cluster of shard servers."""

    def __init__(self, shards: Any,
                 client_factory: Callable[[str], ServiceClient]
                 = ServiceClient,
                 evict_threshold: int = DEFAULT_EVICT_THRESHOLD,
                 breaker_cooldown: float = 30.0,
                 route_retention: int = DEFAULT_ROUTE_RETENTION) -> None:
        if isinstance(shards, str):
            shards = parse_shard_spec(shards)
        if not shards:
            raise ValueError("gateway needs at least one shard")
        self.urls: Dict[str, str] = dict(shards)
        self.clients: Dict[str, ServiceClient] = {
            shard_id: client_factory(url)
            for shard_id, url in self.urls.items()
        }
        self._client_factory = client_factory
        self.ring = HashRing(self.clients)
        self.breaker = CircuitBreaker(failure_threshold=evict_threshold,
                                      cooldown=breaker_cooldown)
        self.metrics = MetricsRegistry()
        self.route_retention = route_retention
        self._lock = threading.RLock()
        self._routes: Dict[str, JobRoute] = {}
        self._grids: Dict[str, GridRoute] = {}
        self._grid_sequence = 0
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Shard liveness

    def _live_shards(self) -> List[str]:
        with self._lock:
            return sorted(self.clients)

    def _owner_order(self, job_key: str,
                     avoid: Optional[set] = None) -> List[str]:
        """Owner-first failover order, skipping known-down shards.

        Shards whose breaker is open are deprioritised, not removed:
        if every owner is suspect, the original order stands (a
        half-open probe may revive one).
        """
        with self._lock:
            if not len(self.ring):
                raise ServiceError(0, {"error": "cluster has no shards"})
            order = self.ring.owners(job_key, len(self.ring))
        if avoid:
            order = [s for s in order if s not in avoid] or order
        healthy = [s for s in order if self.breaker.allow(s)]
        return healthy or order

    def _note_shard_failure(self, shard_id: str) -> None:
        """Count one transport failure; evict the shard on trip."""
        self.metrics.inc("shard_transport_failures")
        self.breaker.record_failure(shard_id)
        if not self.breaker.allow(shard_id):
            with self._lock:
                still_member = shard_id in self.clients
            if still_member:
                self.evict(shard_id)

    # ------------------------------------------------------------------
    # Job routing

    @staticmethod
    def _strip_meta(body: Dict[str, Any]) -> Dict[str, Any]:
        return {key: value for key, value in body.items()
                if key not in ("client", "priority")}

    def _route_submit(self, path: str, body: Dict[str, Any],
                      job_key: str) -> Tuple[Dict[str, Any], str]:
        """Submit to the owner, walking the failover order on dead shards.

        429s propagate (backpressure is the owner's honest answer);
        only transport failures advance to the next owner.
        """
        last_error: Optional[ServiceError] = None
        for shard_id in self._owner_order(job_key):
            with self._lock:
                client = self.clients.get(shard_id)
            if client is None:
                continue  # evicted while we walked the order
            fields = {key: value for key, value in body.items()
                      if key not in ("workload", "scenario")}
            try:
                if path == "/multicore":
                    receipt = client.submit_multicore(body["scenario"],
                                                      **fields)
                else:
                    receipt = client.submit(body["workload"], **fields)
            except ServiceError as exc:
                if exc.status == 0:
                    last_error = exc
                    self._note_shard_failure(shard_id)
                    continue
                raise
            self.breaker.record_success(shard_id)
            return receipt, shard_id
        raise last_error or ServiceError(
            0, {"error": "no shards reachable"})

    def submit_payload(self, payload: Dict[str, Any],
                       multicore: bool = False) -> Dict[str, Any]:
        if not isinstance(payload, dict):
            raise JobValidationError("submission must be a JSON object")
        body = dict(payload)
        job_cls = MulticoreJob if multicore else TMAJob
        job = job_cls.from_payload(self._strip_meta(body))
        path = "/multicore" if multicore else "/jobs"
        receipt, shard_id = self._route_submit(path, body, job.job_key())
        route = JobRoute(id=f"{shard_id}:{receipt['id']}",
                         shard_id=shard_id, remote_id=receipt["id"],
                         path=path, body=body, job_key=job.job_key())
        with self._lock:
            self._routes[route.id] = route
            self._prune_routes_locked()
        self.metrics.inc("routed_jobs")
        return dict(receipt, id=route.id, shard=shard_id)

    def submit_multicore_payload(self,
                                 payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.submit_payload(payload, multicore=True)

    def _prune_routes_locked(self) -> None:
        excess = len(self._routes) - self.route_retention
        if excess <= 0:
            return
        victims = [route_id for route_id, route in self._routes.items()
                   if route.terminal][:excess]
        for route_id in victims:
            del self._routes[route_id]
        while len(self._grids) > DEFAULT_GRID_ROUTE_RETENTION:
            del self._grids[next(iter(self._grids))]

    def _resolve_route(self, gateway_id: str) -> Optional[JobRoute]:
        with self._lock:
            route = self._routes.get(gateway_id)
            if route is not None:
                return route
        # Stateless fallback: a fresh gateway (or one that pruned the
        # route) can still resolve a never-rerouted composite id.
        shard_id, _, remote_id = gateway_id.partition(":")
        with self._lock:
            known = shard_id in self.clients
        if not known or not remote_id:
            return None
        return JobRoute(id=gateway_id, shard_id=shard_id,
                        remote_id=remote_id, path="/jobs", body={},
                        job_key="")

    def status(self, gateway_id: str) -> Optional[Dict[str, Any]]:
        route = self._resolve_route(gateway_id)
        if route is None:
            return None
        with self._lock:
            client = self.clients.get(route.shard_id)
        if client is None and route.body:
            # Owner is gone but we still hold the original submission:
            # re-home on demand.  This is how *terminal* routes survive
            # a leave/evict (the bulk reroute deliberately skips them):
            # resubmission is a shared-store cache hit, so the new
            # owner answers with the completed result immediately.
            try:
                receipt, new_shard = self._route_submit(
                    route.path, route.body, route.job_key)
            except ServiceError:
                receipt, new_shard = None, None
            if receipt is not None:
                with self._lock:
                    route.shard_id = new_shard
                    route.remote_id = receipt["id"]
                    route.rerouted = True
                    route.terminal = False
                    client = self.clients.get(new_shard)
                self.metrics.inc("jobs_rerouted")
        if client is None:
            # Reroute has not landed (or the cluster is fully down):
            # report the route as still moving rather than lying.
            return {"id": gateway_id, "state": "running",
                    "shard": route.shard_id, "degraded": "rerouting"}
        try:
            payload = client.status(route.remote_id)
        except ServiceError as exc:
            if exc.status == 0:
                # Shard unreachable: keep pollers polling while the
                # breaker decides; eviction will re-home the route.
                self._note_shard_failure(route.shard_id)
                return {"id": gateway_id, "state": "running",
                        "shard": route.shard_id,
                        "degraded": "shard unreachable"}
            if exc.status == 404:
                return None
            raise
        self.breaker.record_success(route.shard_id)
        if payload.get("state") in ("done", "failed", "rejected",
                                    "quarantined"):
            route.terminal = True
        return dict(payload, id=gateway_id, shard=route.shard_id)

    # ------------------------------------------------------------------
    # Grid fan-out

    def _point_jobs(self, template: Dict[str, Any],
                    keys: List[str]) -> Dict[str, str]:
        """point key → canonical job key under *template*."""
        mapping: Dict[str, str] = {}
        for key in keys:
            job = TMAJob.from_payload(dict(template, config=key))
            mapping[key] = job.job_key()
        return mapping

    def _place_grid_parts(self, template: Dict[str, Any],
                          keys: List[str],
                          client_meta: Dict[str, Any]) -> List[GridPart]:
        """Place point keys on owner shards as sub-grid submissions.

        Keys group by the ring owner of their point job's key; a shard
        that fails at transport level drops out of the placement
        (``down``) and its keys regroup on the surviving owners next
        round.  Raises when no shard can take a group.
        """
        job_keys = self._point_jobs(template, keys)
        unplaced = dict(job_keys)
        down: set = set()
        parts: List[GridPart] = []
        for _ in range(len(self._live_shards()) + 2):
            if not unplaced:
                break
            groups: Dict[str, List[str]] = {}
            for point_key, job_key in unplaced.items():
                owner = self._owner_order(job_key, avoid=down)[0]
                groups.setdefault(owner, []).append(point_key)
            next_unplaced: Dict[str, str] = {}
            for shard_id in sorted(groups):
                group = groups[shard_id]
                with self._lock:
                    client = self.clients.get(shard_id)
                if client is None:
                    down.add(shard_id)
                    for key in group:
                        next_unplaced[key] = unplaced[key]
                    continue
                fields = dict(self._strip_meta(template), **client_meta,
                              grid=",".join(group), vary=[])
                fields.pop("workload", None)
                fields.pop("config", None)
                try:
                    receipt = client.submit_grid(template["workload"],
                                                 **fields)
                except ServiceError as exc:
                    if exc.status == 0:
                        self._note_shard_failure(shard_id)
                        down.add(shard_id)
                        for key in group:
                            next_unplaced[key] = unplaced[key]
                        continue
                    raise
                self.breaker.record_success(shard_id)
                parts.append(GridPart(shard_id=shard_id,
                                      remote_id=receipt["id"],
                                      keys=list(group)))
            unplaced = next_unplaced
        if unplaced:
            raise ServiceError(
                0, {"error": f"no shards reachable for "
                             f"{len(unplaced)} grid points"})
        return parts

    def submit_grid_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Fan one grid across the cluster as per-shard sub-grids.

        Admission is atomic *per shard* (each sub-grid is all-or-
        nothing on its owner), not cluster-global: a 429 from any
        owner propagates after the other sub-grids were accepted.
        Retrying the whole grid is still safe and cheap — already-
        accepted points coalesce or serve from the shared store.
        """
        if not isinstance(payload, dict):
            raise JobValidationError("submission must be a JSON object")
        body = dict(payload)
        grid_job = GridJob.from_payload(self._strip_meta(body))
        points = grid_job.points()
        # The template is the grid body minus the grid/vary axes: each
        # point key is self-describing, so sub-grids list point keys
        # explicitly and vary collapses to nothing.
        template = {key: value
                    for key, value in grid_job.to_payload().items()
                    if key not in ("grid", "vary")}
        client_meta = {key: body[key] for key in ("client", "priority")
                      if key in body}
        parts = self._place_grid_parts(template,
                                       [point.key for point in points],
                                       client_meta)
        with self._lock:
            self._grid_sequence += 1
            grid_id = f"grid-gw-{self._grid_sequence:04d}"
            route = GridRoute(
                id=grid_id, grid_key=grid_job.grid_key(),
                workload=grid_job.workload, scale=grid_job.scale,
                client=str(body.get("client", "anonymous")),
                point_keys=[point.key for point in points],
                template=template, parts=parts)
            self._grids[grid_id] = route
        self.metrics.inc("routed_grids")
        self.metrics.inc("routed_grid_points", len(points))
        return {
            "id": grid_id,
            "grid_key": route.grid_key,
            "workload": route.workload,
            "points": len(points),
            "parts": {part.shard_id: part.remote_id for part in parts},
        }

    def grid_status(self, grid_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            route = self._grids.get(grid_id)
            if route is None:
                return None
            parts = list(route.parts)
        points: Dict[str, Any] = {}
        states: List[str] = []
        for part in parts:
            with self._lock:
                client = self.clients.get(part.shard_id)
            payload = None
            if client is not None:
                try:
                    payload = client.grid_status(part.remote_id)
                except ServiceError as exc:
                    if exc.status == 0:
                        self._note_shard_failure(part.shard_id)
                    payload = None
            if payload is None:
                for key in part.keys:
                    points[key] = {"state": "running",
                                   "degraded": "shard unreachable"}
                    states.append("running")
                continue
            for key, entry in payload.get("points", {}).items():
                points[key] = dict(entry, shard=part.shard_id)
                states.append(entry.get("state", "running"))
        terminal = ("done", "failed", "rejected", "quarantined", "evicted")
        if states and all(state == "done" for state in states):
            state = "done"
        elif states and all(state in terminal for state in states):
            state = "failed"
        else:
            state = "running"
        return {
            "id": grid_id,
            "grid_key": route.grid_key,
            "workload": route.workload,
            "scale": route.scale,
            "client": route.client,
            "state": state,
            "accepted": route.accepted,
            "submitted_at": route.submitted_at,
            "points": points,
            "parts": {part.shard_id: part.remote_id for part in parts},
        }

    # ------------------------------------------------------------------
    # Membership: join / leave / evict and re-routing

    def join(self, shard_id: str, url: str) -> Dict[str, Any]:
        """Add a shard to the ring.

        Rebalance semantics: only *future* submissions whose keys now
        hash to the new member route there; routed in-flight records
        stay on their current owner, and every completed result remains
        servable by any member through the shared result store.
        """
        with self._lock:
            if shard_id in self.clients:
                raise JobValidationError(
                    f"shard {shard_id!r} is already a member")
            self.urls[shard_id] = url.rstrip("/")
            self.clients[shard_id] = self._client_factory(self.urls[shard_id])
            self.ring.add(shard_id)
        self.breaker.record_success(shard_id)
        self.metrics.inc("shard_joins")
        return self.topology()

    def leave(self, shard_id: str) -> Dict[str, Any]:
        """Gracefully remove a shard: drain it, then adopt its pending.

        The drain report's ``pending_jobs`` manifest is resubmitted to
        the surviving owners immediately — planned departure rebalances
        queued work with zero loss and zero restart-wait.
        """
        with self._lock:
            client = self.clients.get(shard_id)
        if client is None:
            raise JobValidationError(f"unknown shard {shard_id!r}")
        try:
            report = client.drain()
        except ServiceError:
            report = {"state": "unreachable", "pending_jobs": []}
        self._remove_member(shard_id)
        adopted = 0
        for job_payload in report.get("pending_jobs", []):
            try:
                self.submit_payload(
                    job_payload,
                    multicore=(isinstance(job_payload, dict)
                               and job_payload.get("type") == "multicore"))
                adopted += 1
            except ServiceError:
                continue  # counted by the zero-loss audit, not hidden
        self._reroute_from(shard_id)
        self.metrics.inc("shard_leaves")
        self.metrics.inc("jobs_adopted", adopted)
        return dict(self.topology(), drain=report, adopted=adopted)

    def evict(self, shard_id: str) -> Dict[str, Any]:
        """Hard-remove a dead shard and re-home everything it owned."""
        self._remove_member(shard_id)
        self.metrics.inc("shard_evictions")
        self._reroute_from(shard_id)
        return self.topology()

    def _remove_member(self, shard_id: str) -> None:
        with self._lock:
            self.clients.pop(shard_id, None)
            self.urls.pop(shard_id, None)
            if shard_id in self.ring:
                self.ring.remove(shard_id)

    def _reroute_from(self, shard_id: str) -> None:
        """Resubmit every non-terminal route the shard owned.

        Completed analyses re-serve from the shared result store on
        their new owner; genuinely pending ones re-execute there.
        Routes that cannot be placed (cluster-wide outage) keep their
        stale owner and surface as ``degraded`` in status.
        """
        with self._lock:
            job_routes = [route for route in self._routes.values()
                          if route.shard_id == shard_id
                          and not route.terminal and route.body]
            grid_routes = [
                (grid, [part for part in grid.parts
                        if part.shard_id == shard_id])
                for grid in self._grids.values()
            ]
        for route in job_routes:
            try:
                receipt, new_shard = self._route_submit(
                    route.path, route.body, route.job_key)
            except ServiceError:
                continue
            with self._lock:
                route.shard_id = new_shard
                route.remote_id = receipt["id"]
                route.rerouted = True
            self.metrics.inc("jobs_rerouted")
        for grid, dead_parts in grid_routes:
            if not dead_parts:
                continue
            keys = [key for part in dead_parts for key in part.keys]
            try:
                new_parts = self._place_grid_parts(
                    grid.template, keys, {"client": grid.client})
            except ServiceError:
                continue
            with self._lock:
                grid.parts = [part for part in grid.parts
                              if part.shard_id != shard_id] + new_parts
            self.metrics.inc("grid_parts_rerouted", len(new_parts))

    # ------------------------------------------------------------------
    # Streaming relay

    def stream_source(self, gateway_id: str) -> Optional[Tuple[str, str, bool]]:
        """(shard base URL, remote job id, drop_cursor) for the relay."""
        route = self._resolve_route(gateway_id)
        if route is None:
            return None
        with self._lock:
            url = self.urls.get(route.shard_id)
        if url is None:
            return None
        return url, route.remote_id, route.rerouted

    # ------------------------------------------------------------------
    # Aggregation and admin

    def topology(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "ring": self.ring.to_payload(),
                "shards": dict(sorted(self.urls.items())),
            }

    def healthz(self) -> Dict[str, Any]:
        shards: Dict[str, Any] = {}
        for shard_id in self._live_shards():
            with self._lock:
                client = self.clients.get(shard_id)
            if client is None:
                continue
            try:
                shards[shard_id] = client.healthz()
                self.breaker.record_success(shard_id)
            except ServiceError as exc:
                shards[shard_id] = {"status": "unreachable",
                                    "error": str(exc)}
        return {
            "status": "ok",
            "role": "gateway",
            "version": __version__,
            "ring": self.ring.to_payload(),
            "breaker_open": sorted(self.breaker.open_keys()),
            "shards": shards,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        shard_snapshots: Dict[str, Any] = {}
        for shard_id in self._live_shards():
            with self._lock:
                client = self.clients.get(shard_id)
            if client is None:
                continue
            try:
                shard_snapshots[shard_id] = client.metrics()
            except ServiceError as exc:
                shard_snapshots[shard_id] = {"error": str(exc)}
        live = [snapshot for snapshot in shard_snapshots.values()
                if "counters" in snapshot]
        gateway = self.metrics.snapshot()
        gateway["uptime_seconds"] = round(time.time() - self.started_at, 3)
        return {
            "role": "gateway",
            "gateway": gateway,
            "cluster": merge_snapshots(live),
            "shards": shard_snapshots,
        }

    def drain_all(self) -> Dict[str, Any]:
        reports: Dict[str, Any] = {}
        for shard_id in self._live_shards():
            with self._lock:
                client = self.clients.get(shard_id)
            if client is None:
                continue
            try:
                reports[shard_id] = client.drain()
            except ServiceError as exc:
                reports[shard_id] = {"state": "unreachable",
                                     "error": str(exc)}
        return {"state": "drained", "shards": reports}


# ---------------------------------------------------------------------------
# HTTP front


class GatewayRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning server's Gateway."""

    server_version = "repro-tma-gateway/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def gateway(self) -> Gateway:
        return self.server.gateway  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as exc:
            raise JobValidationError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise JobValidationError("body must be a JSON object")
        return payload

    def _guarded(self, action: Callable[[], None]) -> None:
        """Run a handler body with the gateway's error contract."""
        try:
            action()
        except JobValidationError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceError as exc:
            if exc.status == 429:
                retry_after = float(exc.payload.get("retry_after", 1.0))
                self._send_json(429, dict(exc.payload),
                                headers={"Retry-After":
                                         f"{retry_after:.3f}"})
            elif exc.status == 0:
                self._send_json(503, {"error": str(exc)})
            else:
                self._send_json(exc.status, dict(exc.payload))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/jobs":
            self._guarded(lambda: self._send_json(
                202, self.gateway.submit_payload(self._read_json_body())))
        elif self.path == "/multicore":
            self._guarded(lambda: self._send_json(
                202, self.gateway.submit_payload(self._read_json_body(),
                                                 multicore=True)))
        elif self.path == "/grids":
            self._guarded(lambda: self._send_json(
                202, self.gateway.submit_grid_payload(
                    self._read_json_body())))
        elif self.path == "/admin/drain":
            self._guarded(lambda: self._send_json(
                200, self.gateway.drain_all()))
        elif self.path == "/admin/join":
            def _join() -> None:
                body = self._read_json_body()
                if not body.get("id") or not body.get("url"):
                    raise JobValidationError("join requires 'id' and 'url'")
                self._send_json(200, self.gateway.join(str(body["id"]),
                                                       str(body["url"])))
            self._guarded(_join)
        elif self.path == "/admin/leave":
            def _leave() -> None:
                body = self._read_json_body()
                if not body.get("id"):
                    raise JobValidationError("leave requires 'id'")
                self._send_json(200, self.gateway.leave(str(body["id"])))
            self._guarded(_leave)
        elif self.path == "/admin/evict":
            def _evict() -> None:
                body = self._read_json_body()
                if not body.get("id"):
                    raise JobValidationError("evict requires 'id'")
                self._send_json(200, self.gateway.evict(str(body["id"])))
            self._guarded(_evict)
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.startswith("/jobs/"):
            rest = self.path[len("/jobs/"):]
            if rest.endswith("/events") or "/events?" in rest:
                job_id, _, query = rest.partition("/events")
                self._relay_events(job_id, query.lstrip("?"))
                return
            self._guarded(lambda: self._get_status(rest))
        elif self.path.startswith("/grids/"):
            grid_id = self.path[len("/grids/"):]
            payload = self.gateway.grid_status(grid_id)
            if payload is None:
                self._send_json(404, {"error": f"unknown grid {grid_id!r}"})
            else:
                self._send_json(200, payload)
        elif self.path == "/metrics":
            self._send_json(200, self.gateway.metrics_snapshot())
        elif self.path == "/healthz":
            self._send_json(200, self.gateway.healthz())
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    def _get_status(self, job_id: str) -> None:
        payload = self.gateway.status(job_id)
        if payload is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
        else:
            self._send_json(200, payload)

    def _relay_events(self, gateway_id: str, query: str) -> None:
        """Byte-wise SSE relay from the owning shard.

        The relay holds no journal: it copies the shard's stream line
        by line.  If the hop dies mid-stream the client's own
        reconnect logic resumes — by then the route may point at a new
        shard (after eviction), whose journal restarts sequence
        numbers, so rerouted relays drop the stale client cursor and
        replay the new record's lifecycle from the top (the terminal
        event still arrives exactly once: the dead shard never sent
        one).
        """
        source = self.gateway.stream_source(gateway_id)
        if source is None:
            self._send_json(404, {"error": f"unknown job {gateway_id!r}"})
            return
        base_url, remote_id, drop_cursor = source
        after = "0"
        if not drop_cursor:
            params = urllib.parse.parse_qs(query)
            if params.get("after"):
                after = params["after"][0]
            elif self.headers.get("Last-Event-ID"):
                after = self.headers["Last-Event-ID"]
        request = urllib.request.Request(
            f"{base_url}/jobs/{remote_id}/events?after="
            f"{urllib.parse.quote(after)}",
            headers={"Accept": "text/event-stream"})
        try:
            upstream = urllib.request.urlopen(request, timeout=30.0)
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            self._send_json(exc.code, payload)
            return
        except (urllib.error.URLError, OSError) as exc:
            self._send_json(503, {"error": f"shard stream failed: {exc}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            with upstream:
                for line in upstream:
                    self.wfile.write(line)
                    if line == b"\n":  # frame boundary: push it out
                        self.wfile.flush()
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return


class GatewayServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a Gateway reference."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], gateway: Gateway,
                 verbose: bool = False) -> None:
        super().__init__(address, GatewayRequestHandler)
        self.gateway = gateway
        self.verbose = verbose


def make_gateway_server(gateway: Gateway, host: str = "127.0.0.1",
                        port: int = 0,
                        verbose: bool = False) -> GatewayServer:
    """Bind (port 0 = ephemeral) but do not start serving yet."""
    return GatewayServer((host, port), gateway, verbose=verbose)


def serve_gateway_in_thread(
    gateway: Gateway, host: str = "127.0.0.1", port: int = 0,
) -> Tuple[GatewayServer, threading.Thread]:
    """Start a gateway server on a daemon thread (tests and smoke)."""
    server = make_gateway_server(gateway, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="tma-gateway", daemon=True)
    thread.start()
    return server, thread


__all__ = [
    "Gateway",
    "GatewayServer",
    "GridPart",
    "GridRoute",
    "JobRoute",
    "make_gateway_server",
    "serve_gateway_in_thread",
]
