"""Consistent-hash ring: deterministic key → shard placement.

The multi-node service tier routes every canonical job key
(:meth:`repro.service.job.TMAJob.job_key`) through one of these rings
to exactly one shard server, which is what keeps in-flight dedup
*exact* under sharding: a duplicate submission hashes to the same
shard, where the single-node scheduler coalesces it as usual.

Placement must be stable across processes (the gateway, every shard,
and the smoke harness each build their own ring from the same member
list), so positions come from SHA-256 — never from Python's builtin
``hash``, which is salted per process.  Each node projects ``vnodes``
virtual points onto a 64-bit ring; a key is owned by the first virtual
point at or after its own hash (wrapping).  Virtual points give the
two properties the tests pin down:

- **bounded churn** — adding or removing a node only moves keys
  between that node and the ring neighbours of its virtual points;
  every other key keeps its owner;
- **balance** — with the default ``vnodes`` the largest shard's share
  stays within 2x of uniform for small clusters (N ≤ 8).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual points per node.  96 keeps the worst observed share within
#: 2x of uniform for the cluster sizes the tests cover (N in {2,3,5,8})
#: while keeping ring rebuilds trivially cheap.
DEFAULT_VNODES = 96


def stable_hash(value: str) -> int:
    """64-bit position of *value* on the ring, stable across processes."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def ring_position(node: str) -> int:
    """Position of a node's first virtual point (for healthz/topology)."""
    return stable_hash(f"{node}#0")


class HashRing:
    """Mutable consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted (position, node) pairs; ties break on the node name,
        #: deterministically, because tuples compare lexicographically.
        self._ring: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # Membership

    def add(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        positions = [stable_hash(f"{node}#{i}") for i in range(self.vnodes)]
        self._nodes[node] = positions
        for position in positions:
            bisect.insort(self._ring, (position, node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        del self._nodes[node]
        self._ring = [entry for entry in self._ring if entry[1] != node]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def positions(self, node: str) -> List[int]:
        """All virtual-point positions of *node* (raises if absent)."""
        return list(self._nodes[node])

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Routing

    def owner(self, key: str) -> str:
        """The node that owns *key* (raises on an empty ring)."""
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        position = stable_hash(key)
        index = bisect.bisect_left(self._ring, (position, ""))
        if index == len(self._ring):
            index = 0  # wrap past the top of the ring
        return self._ring[index][1]

    def owners(self, key: str, count: int) -> List[str]:
        """Up to *count* distinct nodes walking clockwise from *key*.

        The first entry is :meth:`owner`; the rest are the failover
        order a caller should try when the owner is unreachable.
        """
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        position = stable_hash(key)
        index = bisect.bisect_left(self._ring, (position, ""))
        found: List[str] = []
        for step in range(len(self._ring)):
            node = self._ring[(index + step) % len(self._ring)][1]
            if node not in found:
                found.append(node)
                if len(found) >= count:
                    break
        return found

    def assignment(self, keys: Iterable[str]) -> Dict[str, str]:
        """key → owner for a batch (convenience for tests/smoke)."""
        return {key: self.owner(key) for key in keys}

    def shares(self, keys: Iterable[str]) -> Dict[str, float]:
        """Fraction of *keys* owned per node (balance diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        total = 0
        for key in keys:
            counts[self.owner(key)] += 1
            total += 1
        if not total:
            return {node: 0.0 for node in counts}
        return {node: count / total for node, count in counts.items()}

    def to_payload(self) -> Dict[str, object]:
        """Topology document for healthz endpoints."""
        return {
            "vnodes": self.vnodes,
            "nodes": {node: ring_position(node) for node in self.nodes},
        }


def parse_shard_spec(spec: str) -> Dict[str, str]:
    """Parse ``"s1=http://h:p,s2=http://h:p"`` (or bare URLs) to id→url.

    Bare URLs get ids ``shard-0``, ``shard-1``, … in listed order —
    every participant must list shards in the same order for those
    derived ids (and therefore ring placement) to agree, so named
    entries are strongly preferred everywhere but throwaway scripts.
    """
    shards: Dict[str, str] = {}
    for index, chunk in enumerate(part for part in spec.split(",") if part):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" in chunk and not chunk.startswith(("http://", "https://")):
            shard_id, _, url = chunk.partition("=")
            shard_id = shard_id.strip()
        else:
            shard_id, url = f"shard-{index}", chunk
        url = url.strip().rstrip("/")
        if not shard_id or not url:
            raise ValueError(f"malformed shard spec entry {chunk!r}")
        if shard_id in shards:
            raise ValueError(f"duplicate shard id {shard_id!r}")
        shards[shard_id] = url
    if not shards:
        raise ValueError("shard spec names no shards")
    return shards


__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "parse_shard_spec",
    "ring_position",
    "stable_hash",
]
