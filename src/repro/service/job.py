"""Typed job model for the TMA analysis service.

A :class:`TMAJob` is the unit of work a client submits: one
workload × scale × core-config measurement, plus the harness options
(counter architecture, baremetal/linux mode, explicit event list) and
execution policy (cache use, watchdog budget).  Jobs are value objects
with a canonical :meth:`TMAJob.job_key` built on
:func:`repro.tools.cache.cache_key`, so two requests for the same
analysis — regardless of submitting client or priority — share one key
and can be coalesced by the scheduler and served by the result store.

:class:`JobRecord` is the service-side lifecycle wrapper: identity,
client, priority, state machine, timestamps, attempts, and the JSON
result payload handed back through the API.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..cores import CONFIGS_BY_NAME
from ..cores.batch import (DEFAULT_GRID, GridPoint, canonical_grid_key,
                           parse_grid, resolve_config_spec)
from ..pmu.csr import INCREMENT_MODES
from ..reliability.runner import DEFAULT_MAX_CYCLES, RunOutcome
from ..tools.cache import cache_key
from ..tools.pool import RunnerSpec
from ..workloads import workload_names

#: Job lifecycle states.  ``queued -> running -> done|failed`` is the
#: happy path; ``rejected`` marks backpressure refusals (never entered
#: the queue), ``requeued`` marks jobs durably persisted by a drain,
#: and ``quarantined`` marks jobs skipped because their
#: (workload, config) circuit breaker was open.
JOB_STATES = ("queued", "running", "done", "failed", "rejected", "requeued",
              "quarantined")

#: Priorities are small ints, 0 = most urgent.
DEFAULT_PRIORITY = 1
MAX_PRIORITY = 9


class JobValidationError(ValueError):
    """A submitted job payload failed validation (HTTP 400)."""


@dataclass(frozen=True)
class TMAJob:
    """One requested analysis: workload × scale × config × options."""

    workload: str
    config: str = "large-boom"
    scale: float = 1.0
    increment_mode: str = "adders"
    mode: str = "baremetal"
    events: Optional[Tuple[str, ...]] = None
    use_cache: bool = True
    max_cycles: Optional[int] = DEFAULT_MAX_CYCLES
    #: Relative wall-clock budget in seconds.  The service converts it
    #: to an absolute deadline when the job launches and propagates it
    #: into the worker-side runner (see ``RunnerSpec.deadline``).
    deadline_seconds: Optional[float] = None
    #: Windowed execution: shard the trace into K windows simulated in
    #: parallel and stitched (:mod:`repro.cores.windowed`).  ``huge``
    #: tier workloads are accepted *only* with ``windows`` set.
    windows: Optional[int] = None
    warmup: Optional[int] = None
    sampled: bool = False

    def validate(self) -> None:
        if self.workload not in workload_names():
            # Huge-tier workloads are excluded from the default
            # enumeration; they are valid submissions, but only through
            # the windowed path.
            if self.workload in workload_names("huge"):
                if self.windows is None:
                    raise JobValidationError(
                        f"workload {self.workload!r} is in the 'huge' tier "
                        f"and requires 'windows'")
            else:
                raise JobValidationError(
                    f"unknown workload {self.workload!r}")
        # A config is a Table IV registry name or a canonical grid
        # point key ("large-boom+l1d=16"), so design-space variants
        # fanned out of a grid submission ride the normal job path.
        try:
            resolve_config_spec(self.config)
        except (KeyError, ValueError):
            raise JobValidationError(
                f"unknown config {self.config!r}; choose from "
                f"{sorted(CONFIGS_BY_NAME)} or a canonical grid point "
                f"key such as 'large-boom+l1d=16'") from None
        if not (0 < self.scale <= 10.0):
            raise JobValidationError(
                f"scale must be in (0, 10], got {self.scale}")
        if self.increment_mode not in INCREMENT_MODES:
            raise JobValidationError(
                f"unknown increment mode {self.increment_mode!r}")
        if self.mode not in ("baremetal", "linux"):
            raise JobValidationError(f"unknown mode {self.mode!r}")
        if self.max_cycles is not None and self.max_cycles < 1:
            raise JobValidationError("max_cycles must be >= 1 or null")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise JobValidationError(
                "deadline_seconds must be > 0 or null")
        if self.windows is not None and self.windows < 1:
            raise JobValidationError("windows must be >= 1 or null")
        if self.warmup is not None:
            if self.windows is None:
                raise JobValidationError("warmup requires windows")
            if self.warmup < 0:
                raise JobValidationError("warmup must be >= 0 or null")
        if self.sampled and self.windows is None:
            raise JobValidationError("sampled=true requires windows")

    def config_obj(self):
        return resolve_config_spec(self.config)

    def job_key(self) -> str:
        """Canonical dedup/store key for this analysis.

        Reuses the disk cache's (fingerprint, workload, scale, config)
        key and folds in every option that changes what a measurement
        returns: the harness options (so e.g. a ``distributed``-counter
        request never coalesces with an exact ``adders`` one) *and* the
        execution policy — a ``use_cache=False`` force-fresh submission
        must not be served a cached result via a ``use_cache=True``
        primary, and jobs with different watchdog budgets must not
        share a timeout verdict produced under someone else's smaller
        ``max_cycles``.
        """
        base = self.cache_key()
        digest = hashlib.sha256(base.encode())
        digest.update(self.increment_mode.encode())
        digest.update(self.mode.encode())
        digest.update(repr(self.events).encode())
        digest.update(repr(self.use_cache).encode())
        digest.update(repr(self.max_cycles).encode())
        digest.update(repr(self.deadline_seconds).encode())
        # The window plan is already folded through cache_key() when
        # windows is set, but fold the raw triple too so a future
        # cache-key simplification can never silently coalesce a
        # windowed job with a plain one.
        digest.update(
            repr((self.windows, self.warmup, self.sampled)).encode())
        return digest.hexdigest()[:24]

    def cache_key(self) -> str:
        """Key of the underlying core-result disk-cache entry.

        Windowed jobs key through
        :func:`repro.tools.cache.windowed_cache_key`, so they read and
        write the same entries :func:`repro.cores.windowed.run_windowed`
        uses — and never collide with plain runs.
        """
        if self.windows is not None:
            from ..cores.windowed import normalized_warmup
            from ..tools.cache import windowed_cache_key

            return windowed_cache_key(
                self.workload, self.scale, self.config_obj(), self.windows,
                normalized_warmup(self.windows, self.warmup, self.sampled),
                self.sampled)
        return cache_key(self.workload, self.scale, self.config_obj())

    def runner_spec(self) -> RunnerSpec:
        return RunnerSpec(
            core=self.config_obj().core,
            increment_mode=self.increment_mode,
            mode=self.mode,
            event_names=self.events,
            scale=self.scale,
            max_cycles=self.max_cycles,
            use_cache=self.use_cache,
            windows=self.windows,
            windows_warmup=self.warmup,
            windows_sampled=self.sampled,
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "config": self.config,
            "scale": self.scale,
            "increment_mode": self.increment_mode,
            "mode": self.mode,
            "events": list(self.events) if self.events else None,
            "use_cache": self.use_cache,
            "max_cycles": self.max_cycles,
            "deadline_seconds": self.deadline_seconds,
            "windows": self.windows,
            "warmup": self.warmup,
            "sampled": self.sampled,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TMAJob":
        if not isinstance(payload, dict):
            raise JobValidationError("job payload must be a JSON object")
        if "workload" not in payload:
            raise JobValidationError("job payload requires 'workload'")
        known = {"workload", "config", "scale", "increment_mode", "mode",
                 "events", "use_cache", "max_cycles", "deadline_seconds",
                 "windows", "warmup", "sampled"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobValidationError(f"unknown job fields: {unknown}")
        events = payload.get("events")
        if events is not None:
            if (not isinstance(events, (list, tuple))
                    or not all(isinstance(e, str) for e in events)):
                raise JobValidationError("'events' must be a string list")
            events = tuple(events)
        try:
            job = cls(
                workload=str(payload["workload"]),
                config=str(payload.get("config", "large-boom")),
                scale=float(payload.get("scale", 1.0)),
                increment_mode=str(payload.get("increment_mode", "adders")),
                mode=str(payload.get("mode", "baremetal")),
                events=events,
                use_cache=bool(payload.get("use_cache", True)),
                max_cycles=(None if payload.get("max_cycles") is None
                            else int(payload["max_cycles"])),
                deadline_seconds=(
                    None if payload.get("deadline_seconds") is None
                    else float(payload["deadline_seconds"])),
                windows=(None if payload.get("windows") is None
                         else int(payload["windows"])),
                warmup=(None if payload.get("warmup") is None
                        else int(payload["warmup"])),
                sampled=bool(payload.get("sampled", False)),
            )
        except (TypeError, ValueError) as exc:
            raise JobValidationError(f"malformed job payload: {exc}") from exc
        job.validate()
        return job


@dataclass(frozen=True)
class GridJob:
    """One design-space request: workload × grid of core configs.

    A grid submission fans out into one :class:`TMAJob` per grid point
    (:meth:`expand`); each point job carries the canonical point key as
    its ``config`` and rides the normal scheduler path, so overlapping
    grids from different clients coalesce point-by-point through the
    existing in-flight dedup, and repeated grids are served by the
    result store.  :meth:`grid_key` is the order-independent identity
    of the whole request, used for grid-level dedup accounting.
    """

    workload: str
    grid: str = DEFAULT_GRID
    vary: Tuple[str, ...] = ()
    scale: float = 1.0
    increment_mode: str = "adders"
    mode: str = "baremetal"
    events: Optional[Tuple[str, ...]] = None
    use_cache: bool = True
    max_cycles: Optional[int] = DEFAULT_MAX_CYCLES
    deadline_seconds: Optional[float] = None

    def points(self) -> Tuple[GridPoint, ...]:
        return tuple(parse_grid(self.grid, vary=self.vary))

    def validate(self) -> Tuple[GridPoint, ...]:
        try:
            points = self.points()
        except (KeyError, ValueError) as exc:
            raise JobValidationError(f"bad grid spec: {exc}") from exc
        # Every per-point field constraint is enforced by the point
        # jobs themselves; validating the first catches the shared
        # template fields exactly once.
        self._point_job(points[0]).validate()
        return points

    def _point_job(self, point: GridPoint) -> TMAJob:
        return TMAJob(
            workload=self.workload,
            config=point.key,
            scale=self.scale,
            increment_mode=self.increment_mode,
            mode=self.mode,
            events=self.events,
            use_cache=self.use_cache,
            max_cycles=self.max_cycles,
            deadline_seconds=self.deadline_seconds,
        )

    def expand(self) -> Tuple[Tuple[GridPoint, TMAJob], ...]:
        """One (point, job) pair per grid point, in grid order."""
        return tuple((point, self._point_job(point))
                     for point in self.points())

    def grid_key(self) -> str:
        """Canonical identity of the whole grid request.

        Order-independent over the grid points (two clients listing
        the same points differently coalesce) and folded with every
        template option that changes what the point jobs return.
        """
        base = canonical_grid_key(self.workload, self.points(), self.scale)
        digest = hashlib.sha256(base.encode())
        digest.update(self.increment_mode.encode())
        digest.update(self.mode.encode())
        digest.update(repr(self.events).encode())
        digest.update(repr(self.use_cache).encode())
        digest.update(repr(self.max_cycles).encode())
        digest.update(repr(self.deadline_seconds).encode())
        return digest.hexdigest()[:24]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "grid": self.grid,
            "vary": list(self.vary),
            "scale": self.scale,
            "increment_mode": self.increment_mode,
            "mode": self.mode,
            "events": list(self.events) if self.events else None,
            "use_cache": self.use_cache,
            "max_cycles": self.max_cycles,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "GridJob":
        if not isinstance(payload, dict):
            raise JobValidationError("grid payload must be a JSON object")
        if "workload" not in payload:
            raise JobValidationError("grid payload requires 'workload'")
        known = {"workload", "grid", "vary", "scale", "increment_mode",
                 "mode", "events", "use_cache", "max_cycles",
                 "deadline_seconds"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobValidationError(f"unknown grid fields: {unknown}")
        vary = payload.get("vary") or ()
        if not isinstance(vary, (list, tuple)) \
                or not all(isinstance(v, str) for v in vary):
            raise JobValidationError("'vary' must be a string list")
        events = payload.get("events")
        if events is not None:
            if (not isinstance(events, (list, tuple))
                    or not all(isinstance(e, str) for e in events)):
                raise JobValidationError("'events' must be a string list")
            events = tuple(events)
        try:
            job = cls(
                workload=str(payload["workload"]),
                grid=str(payload.get("grid") or DEFAULT_GRID),
                vary=tuple(vary),
                scale=float(payload.get("scale", 1.0)),
                increment_mode=str(payload.get("increment_mode", "adders")),
                mode=str(payload.get("mode", "baremetal")),
                events=events,
                use_cache=bool(payload.get("use_cache", True)),
                max_cycles=(None if payload.get("max_cycles") is None
                            else int(payload["max_cycles"])),
                deadline_seconds=(
                    None if payload.get("deadline_seconds") is None
                    else float(payload["deadline_seconds"])),
            )
        except (TypeError, ValueError) as exc:
            raise JobValidationError(
                f"malformed grid payload: {exc}") from exc
        job.validate()
        return job


@dataclass(frozen=True)
class MulticoreJob:
    """One requested multicore scenario run (see :mod:`repro.multicore`).

    Duck-types the :class:`TMAJob` surface the scheduler, store, and
    dispatcher rely on (``workload``/``config``/``job_key``/
    ``runner_spec``/``deadline_seconds``), so scenario jobs ride the
    normal admission, dedup, breaker, and drain-persistence paths
    unchanged.  ``workload`` is the scenario name and ``config`` is the
    fixed tag ``"multicore"`` — together they form the breaker key, so
    a repeatedly-failing scenario quarantines without affecting
    single-core jobs.
    """

    scenario: str
    cores: Optional[int] = None
    scale: Optional[float] = None
    shared_bus: Optional[bool] = None
    arbitration: Optional[str] = None
    use_cache: bool = True
    deadline_seconds: Optional[float] = None

    @property
    def workload(self) -> str:
        return self.scenario

    @property
    def config(self) -> str:
        return "multicore"

    def resolved(self):
        """The scenario with this job's overrides applied."""
        from ..multicore import get_scenario

        return get_scenario(self.scenario).with_overrides(
            cores=self.cores, scale=self.scale,
            shared_bus=self.shared_bus, arbitration=self.arbitration)

    def validate(self) -> None:
        if self.scale is not None and not (0 < self.scale <= 10.0):
            raise JobValidationError(
                f"scale must be in (0, 10], got {self.scale}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise JobValidationError(
                "deadline_seconds must be > 0 or null")
        try:
            self.resolved().validate()
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise JobValidationError(str(message)) from None

    def cache_key(self) -> str:
        """Key of the underlying scenario-payload disk-cache entry."""
        from ..multicore import scenario_cache_key

        return scenario_cache_key(self.resolved())

    def job_key(self) -> str:
        """Canonical dedup/store key for this scenario run.

        Built on the scenario disk-cache key (which already folds the
        resolved slots, scale, bus, arbitration, and the model +
        multicore fingerprints) plus the execution policy, mirroring
        :meth:`TMAJob.job_key`.
        """
        digest = hashlib.sha256(self.cache_key().encode())
        digest.update(repr(self.use_cache).encode())
        digest.update(repr(self.deadline_seconds).encode())
        return digest.hexdigest()[:24]

    def runner_spec(self) -> RunnerSpec:
        return RunnerSpec(
            scale=self.scale if self.scale is not None else 1.0,
            max_cycles=None,
            use_cache=self.use_cache,
            scenario=self.scenario,
            scenario_cores=self.cores,
            scenario_scale=self.scale,
            scenario_shared_bus=self.shared_bus,
            scenario_arbitration=self.arbitration,
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "type": "multicore",
            "scenario": self.scenario,
            "cores": self.cores,
            "scale": self.scale,
            "shared_bus": self.shared_bus,
            "arbitration": self.arbitration,
            "use_cache": self.use_cache,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MulticoreJob":
        if not isinstance(payload, dict):
            raise JobValidationError(
                "multicore payload must be a JSON object")
        if "scenario" not in payload:
            raise JobValidationError(
                "multicore payload requires 'scenario'")
        known = {"type", "scenario", "cores", "scale", "shared_bus",
                 "arbitration", "use_cache", "deadline_seconds"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobValidationError(
                f"unknown multicore fields: {unknown}")
        try:
            job = cls(
                scenario=str(payload["scenario"]),
                cores=(None if payload.get("cores") is None
                       else int(payload["cores"])),
                scale=(None if payload.get("scale") is None
                       else float(payload["scale"])),
                shared_bus=(None if payload.get("shared_bus") is None
                            else bool(payload["shared_bus"])),
                arbitration=(None if payload.get("arbitration") is None
                             else str(payload["arbitration"])),
                use_cache=bool(payload.get("use_cache", True)),
                deadline_seconds=(
                    None if payload.get("deadline_seconds") is None
                    else float(payload["deadline_seconds"])),
            )
        except (TypeError, ValueError) as exc:
            raise JobValidationError(
                f"malformed multicore payload: {exc}") from exc
        job.validate()
        return job


def outcome_payload(outcome: RunOutcome,
                    from_cache: bool = False) -> Dict[str, Any]:
    """JSON-ready result summary for one finished execution."""
    payload: Dict[str, Any] = {
        "status": outcome.status,
        "attempts": outcome.attempts,
        "from_cache": from_cache,
    }
    if outcome.error_class:
        payload["error_class"] = outcome.error_class
        payload["error"] = outcome.error
    measurement = outcome.measurement
    if measurement is not None:
        payload["cycles"] = measurement.cycles
        payload["instret"] = measurement.instret
        payload["ipc"] = round(measurement.ipc, 6)
    tma = outcome.tma
    if tma is not None:
        payload["tma"] = {
            "level1": {k: round(v, 6) for k, v in tma.level1.items()},
            "level2": {k: round(v, 6) for k, v in tma.level2.items()},
            "dominant": tma.dominant_class(),
        }
    if outcome.payload is not None:
        # Payload-carried flavours: windowed runs label themselves with
        # kind="windowed" (and always surface the sampled flag — a
        # sampled extrapolation must never masquerade as an exact run);
        # kind="remote" is a result document that already went through
        # this function on a shard server (ShardExecutor dispatch), so
        # it splices back in verbatim — remote and local execution
        # produce byte-identical result payloads; anything else is a
        # multicore scenario payload.
        if (isinstance(outcome.payload, dict)
                and outcome.payload.get("kind") == "windowed"):
            payload["windowed"] = outcome.payload
            payload["sampled"] = bool(outcome.payload.get("sampled", False))
        elif (isinstance(outcome.payload, dict)
                and outcome.payload.get("kind") == "remote"):
            inner = {key: value for key, value in outcome.payload.items()
                     if key != "kind"}
            payload.update(inner)
        else:
            payload["multicore"] = outcome.payload
    return payload


@dataclass
class JobRecord:
    """Service-side lifecycle of one submitted job."""

    id: str
    job: TMAJob
    client: str = "anonymous"
    priority: int = DEFAULT_PRIORITY
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    requeues: int = 0
    #: Primary record id this (duplicate) submission coalesced onto,
    #: or None when this record is itself the executing primary.
    coalesced_with: Optional[str] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    @property
    def job_key(self) -> str:
        return self.job.job_key()

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed", "rejected", "quarantined")

    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "job": self.job.to_payload(),
            "job_key": self.job_key,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "requeues": self.requeues,
        }
        if self.coalesced_with:
            payload["coalesced_with"] = self.coalesced_with
        if self.error:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        latency = self.latency()
        if latency is not None:
            payload["latency_seconds"] = round(latency, 6)
        return payload
