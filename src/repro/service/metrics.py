"""Live metrics for the analysis service: counters, gauges, histograms.

Deliberately stdlib-only and tiny — the service exposes one JSON
snapshot (``GET /metrics``), so the registry optimises for cheap
thread-safe updates and a self-describing snapshot rather than for a
wire-format ecosystem.

Histograms keep a bounded sample window with deterministic wraparound
replacement (sample ``n`` lands in slot ``n mod capacity``), which
gives exact quantiles until the window wraps and a sliding-window
approximation after — good enough for p50/p95/p99 latency reporting,
with strictly bounded memory no matter how long the service runs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Histogram:
    """Bounded-window latency histogram with p50/p95/p99 snapshots."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._window) < self.capacity:
            self._window.append(value)
        else:
            self._window[(self.count - 1) % self.capacity] = value

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self._window)
        return {
            "count": self.count,
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "min": round(self.min, 6) if self.min is not None else 0.0,
            "max": round(self.max, 6) if self.max is not None else 0.0,
            "p50": round(_percentile(ordered, 0.50), 6),
            "p95": round(_percentile(ordered, 0.95), 6),
            "p99": round(_percentile(ordered, 0.99), 6),
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self, histogram_capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._histogram_capacity = histogram_capacity
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(self._histogram_capacity)
                self._histograms[name] = histogram
            histogram.observe(value)

    def histogram_mean(self, name: str) -> float:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None or not histogram.count:
                return 0.0
            return histogram.total / histogram.count

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": {k: round(v, 6)
                           for k, v in sorted(self._gauges.items())},
                "histograms": {name: histogram.snapshot()
                               for name, histogram
                               in sorted(self._histograms.items())},
            }


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Cluster-wide rollup of per-node :meth:`MetricsRegistry.snapshot`\\ s.

    Counters sum.  Gauges sum too — the service's gauges are occupancy
    figures (queue depth, in-flight, draining count), where the cluster
    total is the meaningful number; rate gauges are recomputable from
    the summed counters.  Histograms merge exactly on count/mean/
    min/max; percentiles are *not* mergeable from summaries and are
    deliberately omitted rather than faked.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    merged_hist: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, hist in (snapshot.get("histograms") or {}).items():
            into = merged_hist.setdefault(
                name, {"count": 0, "total": 0.0,
                       "min": None, "max": None})
            count = int(hist.get("count") or 0)
            into["count"] += count
            into["total"] += float(hist.get("mean") or 0.0) * count
            for bound, pick in (("min", min), ("max", max)):
                value = hist.get(bound)
                if value is None or not count:
                    continue
                into[bound] = (value if into[bound] is None
                               else pick(into[bound], value))
    histograms = {
        name: {
            "count": data["count"],
            "mean": (round(data["total"] / data["count"], 6)
                     if data["count"] else 0.0),
            "min": round(data["min"], 6) if data["min"] is not None else 0.0,
            "max": round(data["max"], 6) if data["max"] is not None else 0.0,
        }
        for name, data in sorted(merged_hist.items())
    }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": {k: round(v, 6) for k, v in sorted(gauges.items())},
        "histograms": histograms,
    }
