"""Priority scheduler: bounded admission, fair-share, dedup, backpressure.

The scheduler is the service's front door.  Its contract:

- **Bounded admission.**  At most ``capacity`` primary jobs may be
  queued; a submission that would exceed the bound is rejected
  immediately with a retry-after hint — the queue never grows without
  limit, so memory and tail latency stay bounded under overload.
- **In-flight dedup.**  A submission whose :meth:`~TMAJob.job_key`
  matches a queued or running primary does *not* consume a queue slot:
  it attaches to the primary as a follower and completes when the
  primary does (one execution, N completions).  Dedup therefore
  *relieves* backpressure — duplicate-heavy bursts coalesce instead of
  filling the queue.
- **Priority then fair-share.**  Dispatch order is priority class
  ascending (0 first); within a class, clients are served round-robin
  so one chatty client cannot starve the rest.  Within one client's
  queue, FIFO.
- **Requeue at the front.**  A job whose worker crashed re-enters its
  client queue at the head (it has already waited its turn once).

All methods are thread-safe; :meth:`next_job` blocks until work is
available, the timeout lapses, or the scheduler is closed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..chaos import injector as chaos
from .job import JobRecord


@dataclass
class SubmitReceipt:
    """What admission decided for one submission."""

    record: JobRecord
    accepted: bool
    deduped: bool = False
    queue_depth: int = 0
    retry_after: Optional[float] = None


class JobScheduler:
    """Bounded, deduplicating, fair-share priority queue of JobRecords."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        #: priority -> client -> FIFO of queued primaries.  OrderedDict
        #: preserves client arrival order; round-robin rotates it.
        self._queues: Dict[int, "OrderedDict[str, Deque[JobRecord]]"] = {}
        self._queued = 0
        #: job_key -> primary record currently queued or running.
        self._primaries: Dict[str, JobRecord] = {}
        #: job_key -> follower records coalesced onto that primary.
        self._followers: Dict[str, List[JobRecord]] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Admission

    def submit(self, record: JobRecord) -> SubmitReceipt:
        """Admit, coalesce, or reject one submission."""
        with self._lock:
            if self._closed:
                record.state = "rejected"
                record.error = "service is draining"
                return SubmitReceipt(record=record, accepted=False,
                                     queue_depth=self._queued)
            key = record.job_key
            primary = self._primaries.get(key)
            if primary is not None:
                record.state = "queued"
                record.coalesced_with = primary.id
                self._followers.setdefault(key, []).append(record)
                return SubmitReceipt(record=record, accepted=True,
                                     deduped=True,
                                     queue_depth=self._queued)
            if self._queued >= self.capacity:
                record.state = "rejected"
                record.error = "queue full"
                return SubmitReceipt(record=record, accepted=False,
                                     queue_depth=self._queued)
            record.state = "queued"
            self._primaries[key] = record
            self._enqueue(record, front=False)
            self._available.notify()
            return SubmitReceipt(record=record, accepted=True,
                                 queue_depth=self._queued)

    def submit_many(self, records: List[JobRecord]) -> List[SubmitReceipt]:
        """Admit a whole batch atomically (one lock hold, no partial grids).

        Grid fan-outs need all-or-nothing admission: accepting half a
        design-space matrix and rejecting the rest leaves the client
        with an unusable partial grid *and* burns queue slots on it.
        Every record that can coalesce — onto an existing primary or
        onto an earlier record *in this batch* — does so for free; if
        the remaining new primaries do not all fit under ``capacity``,
        the entire batch is rejected and no state changes.  Holding the
        lock across the batch also keeps the fair-share accounting
        atomic: another client's fan-out cannot interleave.
        """
        with self._lock:
            if self._closed:
                for record in records:
                    record.state = "rejected"
                    record.error = "service is draining"
                return [SubmitReceipt(record=record, accepted=False,
                                      queue_depth=self._queued)
                        for record in records]
            # Phase 1: classify without mutating, so rejection is free.
            batch_primaries: Dict[str, JobRecord] = {}
            plans: List[str] = []  # "existing" | "batch" | "new"
            for record in records:
                key = record.job_key
                if key in self._primaries:
                    plans.append("existing")
                elif key in batch_primaries:
                    plans.append("batch")
                else:
                    batch_primaries[key] = record
                    plans.append("new")
            if self._queued + len(batch_primaries) > self.capacity:
                for record in records:
                    record.state = "rejected"
                    record.error = (
                        f"queue cannot hold {len(batch_primaries)} more "
                        f"primaries (depth {self._queued}/{self.capacity})")
                return [SubmitReceipt(record=record, accepted=False,
                                      queue_depth=self._queued)
                        for record in records]
            # Phase 2: commit.
            receipts: List[SubmitReceipt] = []
            for record, plan in zip(records, plans):
                key = record.job_key
                record.state = "queued"
                if plan == "new":
                    self._primaries[key] = record
                    self._enqueue(record, front=False)
                    receipts.append(SubmitReceipt(
                        record=record, accepted=True,
                        queue_depth=self._queued))
                else:
                    primary = (self._primaries[key] if plan == "existing"
                               else batch_primaries[key])
                    record.coalesced_with = primary.id
                    self._followers.setdefault(key, []).append(record)
                    receipts.append(SubmitReceipt(
                        record=record, accepted=True, deduped=True,
                        queue_depth=self._queued))
            if batch_primaries:
                self._available.notify_all()
            return receipts

    def _enqueue(self, record: JobRecord, front: bool) -> None:
        per_client = self._queues.setdefault(record.priority, OrderedDict())
        queue = per_client.setdefault(record.client, deque())
        if front:
            queue.appendleft(record)
        else:
            queue.append(record)
        self._queued += 1

    # ------------------------------------------------------------------
    # Dispatch

    def next_job(self, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Pop the next primary to execute; None on timeout/close."""
        # Chaos scheduler-stall seam: an injected pause *before* the
        # lock shakes out dispatch-ordering assumptions without ever
        # holding the queue lock while sleeping.
        chaos.maybe_stall()
        with self._lock:
            if not self._queued and not self._closed:
                self._available.wait(timeout)
            if not self._queued:
                return None
            for priority in sorted(self._queues):
                per_client = self._queues[priority]
                while per_client:
                    client, queue = next(iter(per_client.items()))
                    if not queue:
                        del per_client[client]
                        continue
                    record = queue.popleft()
                    self._queued -= 1
                    # Rotate the served client to the back of the
                    # round-robin ring (keep its remaining backlog).
                    del per_client[client]
                    if queue:
                        per_client[client] = queue
                    if not per_client:
                        del self._queues[priority]
                    record.state = "running"
                    return record
            return None

    def requeue(self, record: JobRecord) -> None:
        """Put a crashed primary back at the head of its client queue."""
        with self._lock:
            record.state = "queued"
            record.requeues += 1
            self._primaries[record.job_key] = record
            self._enqueue(record, front=True)
            self._available.notify()

    # ------------------------------------------------------------------
    # Completion fan-out

    def resolve(self, record: JobRecord) -> List[JobRecord]:
        """Retire a primary; returns the followers awaiting its result."""
        with self._lock:
            key = record.job_key
            if self._primaries.get(key) is record:
                del self._primaries[key]
            return self._followers.pop(key, [])

    # ------------------------------------------------------------------
    # Introspection and shutdown

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def close(self) -> None:
        """Stop admitting; wake any blocked dispatcher."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def drain_queued(self) -> List[JobRecord]:
        """Remove and return every still-queued primary (for persisting)."""
        with self._lock:
            drained: List[JobRecord] = []
            for per_client in self._queues.values():
                for queue in per_client.values():
                    drained.extend(queue)
                    queue.clear()
            self._queues.clear()
            self._queued = 0
            for record in drained:
                if self._primaries.get(record.job_key) is record:
                    del self._primaries[record.job_key]
            drained.sort(key=lambda r: (r.priority, r.submitted_at))
            return drained
