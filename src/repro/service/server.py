"""Stdlib-only JSON HTTP API in front of :class:`TMAService`.

Endpoints::

    POST /jobs          submit a job            -> 202 receipt
                        (429 + Retry-After on backpressure,
                         400 on validation errors)
    POST /multicore     submit a multicore      -> 202 receipt (same
                        scenario job             contract as /jobs)
    GET  /jobs/<id>     job status + result     -> 200 | 404
    POST /grids         submit a design-space   -> 202 grid receipt
                        grid (fans out into      (429 when the whole
                        per-point jobs)          grid cannot be
                                                 admitted atomically)
    GET  /grids/<id>    aggregated grid status  -> 200 | 404
    GET  /metrics       metrics snapshot        -> 200
    GET  /healthz       liveness + drain state  -> 200
    POST /admin/drain   graceful drain          -> 200 drain report

Built on :class:`http.server.ThreadingHTTPServer` so the API stays
dependency-free; each request handler thread calls straight into the
thread-safe service facade.  ``serve_forever`` runs until
``shutdown()`` — the CLI wires SIGINT/SIGTERM to a drain-then-shutdown
sequence so Ctrl-C never drops accepted jobs.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .app import TMAService
from .job import JobValidationError
from .stream import sse_encode, sse_keepalive

#: Submissions above this size are rejected outright (413): job
#: payloads are a few hundred bytes, so anything huge is abuse/error.
MAX_BODY_BYTES = 64 * 1024


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning server's TMAService."""

    server_version = "repro-tma-service/1.1"
    protocol_version = "HTTP/1.1"

    # Quiet by default; the service's metrics are the observability
    # surface, not an access log on stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def service(self) -> TMAService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise JobValidationError(
                f"body too large ({length} > {MAX_BODY_BYTES} bytes)")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as exc:
            raise JobValidationError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise JobValidationError("body must be a JSON object")
        return payload

    # ------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/jobs":
            self._post_jobs()
        elif self.path == "/multicore":
            self._post_jobs(multicore=True)
        elif self.path == "/grids":
            self._post_grids()
        elif self.path == "/admin/drain":
            report = self.service.drain()
            self._send_json(200, report)
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    def _post_jobs(self, multicore: bool = False) -> None:
        try:
            payload = self._read_json_body()
            submit = (self.service.submit_multicore_payload if multicore
                      else self.service.submit_payload)
            receipt = submit(payload)
        except JobValidationError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        record = receipt.record
        if not receipt.accepted:
            retry_after = receipt.retry_after or 1.0
            self._send_json(
                429,
                {"error": record.error or "queue full",
                 "id": record.id,
                 "retry_after": retry_after,
                 "queue_depth": receipt.queue_depth},
                headers={"Retry-After": f"{retry_after:.3f}"})
            return
        self._send_json(202, {
            "id": record.id,
            "state": record.state,
            "job_key": record.job_key,
            "deduped": receipt.deduped,
            "coalesced_with": record.coalesced_with,
            "queue_depth": receipt.queue_depth,
        })

    def _post_grids(self) -> None:
        try:
            payload = self._read_json_body()
            grid = self.service.submit_grid_payload(payload)
        except JobValidationError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        summary = {
            "id": grid.id,
            "grid_key": grid.key,
            "workload": grid.workload,
            "points": len(grid.point_keys),
            "point_records": dict(grid.point_record_ids),
            "coalesced_with": grid.coalesced_with,
        }
        if not grid.accepted:
            retry_after = self.service._retry_after_estimate()
            summary["error"] = "grid could not be admitted atomically"
            summary["retry_after"] = retry_after
            self._send_json(429, summary,
                            headers={"Retry-After": f"{retry_after:.3f}"})
            return
        self._send_json(202, summary)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.startswith("/jobs/"):
            rest = self.path[len("/jobs/"):]
            if rest.endswith("/events") or "/events?" in rest:
                job_id, _, query = rest.partition("/events")
                self._stream_events(job_id, query.lstrip("?"))
                return
            payload = self.service.status(rest)
            if payload is None:
                self._send_json(404, {"error": f"unknown job {rest!r}"})
            else:
                self._send_json(200, payload)
        elif self.path.startswith("/grids/"):
            grid_id = self.path[len("/grids/"):]
            payload = self.service.grid_status(grid_id)
            if payload is None:
                self._send_json(404, {"error": f"unknown grid {grid_id!r}"})
            else:
                self._send_json(200, payload)
        elif self.path == "/metrics":
            self._send_json(200, self.service.metrics_snapshot())
        elif self.path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif self.path == "/admin/records":
            # Topology audit surface: the shard smoke asserts "each job
            # key observed on exactly one shard" from these summaries.
            records = [
                {"id": record.id, "job_key": record.job_key,
                 "state": record.state, "client": record.client}
                for record in self.service.records()
            ]
            self._send_json(200, {"records": records})
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    # ------------------------------------------------------------------
    # SSE streaming

    def _stream_events(self, job_id: str, query: str) -> None:
        """``GET /jobs/<id>/events``: stream lifecycle events as SSE.

        The response is unframed (``Connection: close`` delimits the
        body), because the journal produces events until a terminal
        one and a streamed body cannot carry Content-Length.  Resume
        semantics: ``?after=<seq>`` or the standard ``Last-Event-ID``
        header skips events the client already saw — the terminal
        event is therefore delivered exactly once per cursor.
        """
        after = 0
        params = urllib.parse.parse_qs(query)
        if params.get("after"):
            try:
                after = int(params["after"][0])
            except ValueError:
                self._send_json(400, {"error": "after must be an integer"})
                return
        elif self.headers.get("Last-Event-ID"):
            try:
                after = int(self.headers["Last-Event-ID"])
            except ValueError:
                after = 0
        service = self.service
        if (service.status(job_id) is None
                and not service.events.known(job_id)):
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        last = after
        finished = False
        try:
            while not finished:
                events = service.events.wait(job_id, after=last,
                                             timeout=0.25)
                if not events:
                    if service.events.finished(job_id):
                        break  # resumed past the terminal event
                    self.wfile.write(sse_keepalive())
                    self.wfile.flush()
                    continue
                for event in events:
                    self.wfile.write(sse_encode(event))
                    last = event.seq
                    if event.terminal:
                        finished = True
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; it can resume from its cursor


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a TMAService reference."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: TMAService,
                 verbose: bool = False) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def make_server(service: TMAService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ServiceServer:
    """Bind (port 0 = ephemeral) but do not start serving yet."""
    return ServiceServer((host, port), service, verbose=verbose)


def serve_in_thread(service: TMAService, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[ServiceServer, threading.Thread]:
    """Start a server on a daemon thread; returns (server, thread).

    Used by tests and the smoke script; the CLI runs
    ``serve_forever`` on the main thread instead.
    """
    server = make_server(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="tma-http", daemon=True)
    thread.start()
    return server, thread
