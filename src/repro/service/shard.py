"""The ``shard`` rung of the executor ladder: multi-node dispatch.

A :class:`ShardExecutor` satisfies the same ``submit``/``shutdown``/
context-manager contract as the in-process rungs
(:mod:`repro.tools.pool`), but executes each submission on a cluster of
shard servers over HTTP.  Routing is by consistent hash of the job's
canonical key (:class:`~repro.service.hashring.HashRing`), so a given
analysis always lands on the same shard — which is exactly what keeps
in-flight dedup and result-store reuse *exact* under sharding: every
duplicate converges on one scheduler.

Work cannot be shipped to another machine as a closure, so only
functions with a registered *remote adapter*
(:func:`repro.tools.pool.register_remote`) are accepted; anything else
raises instead of silently running locally.  This module registers the
two remotable entry points on import:

- :func:`repro.service.workers.execute_job` — one service job; the
  shard's result document is spliced back verbatim
  (``payload["kind"] == "remote"``), so remote and local execution
  produce identical result payloads;
- :func:`repro.tools.parallel._run_shard` — one sweep-grid shard; each
  (workload, config) pair becomes a routed job submission, so
  ``ParallelSweepRunner(executor="shard")`` fans a design-space sweep
  across the cluster.  Remote sweep outcomes carry their numbers in
  ``RunOutcome.payload`` (cycles/ipc/TMA), not as ``Measurement``
  objects — the wire format is the service result document.

It also registers the ``shard`` style itself
(:func:`repro.tools.pool.register_executor`), completing the lazy-load
contract declared by ``repro.tools.pool._LAZY_STYLES``.

:class:`ShardInfo` is the other half of the story: the identity a
*server* process carries when it runs as a cluster member
(``repro-tma serve --shard-id``), surfaced through ``/healthz`` and
used to namespace its drain-persistence file.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..reliability.runner import RunOutcome
from ..tools import pool
from ..tools.pool import RunnerSpec, ThreadExecutor
from .client import ServiceClient, ServiceError
from .hashring import HashRing, parse_shard_spec, ring_position
from .job import MulticoreJob, TMAJob

#: Cluster membership for executor-side routing:
#: ``REPRO_SHARDS="s1=http://h:p,s2=http://h:p"``.
SHARDS_ENV = "REPRO_SHARDS"

#: Per-job remote wait budget override (seconds).
JOB_TIMEOUT_ENV = "REPRO_SHARD_JOB_TIMEOUT"
DEFAULT_JOB_TIMEOUT = 300.0

#: Bounded 429 retries per shard before the submission fails loudly.
DEFAULT_SUBMIT_RETRIES = 20


@dataclass(frozen=True)
class ShardInfo:
    """Identity of one shard server within a cluster."""

    id: str

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("shard id must be non-empty")
        safe = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
        if not set(self.id) <= safe:
            # The id lands in the pending-file name
            # (``pending-jobs.<id>.state``), so it must stay
            # filesystem-safe.
            raise ValueError(
                f"shard id {self.id!r} must use only [A-Za-z0-9._-]")

    @property
    def ring_position(self) -> int:
        return ring_position(self.id)

    def to_payload(self) -> Dict[str, Any]:
        return {"id": self.id, "ring_position": self.ring_position}


def make_shard_service(shard_id: str, **kwargs: Any):
    """A :class:`~repro.service.app.TMAService` running as one shard."""
    from .app import TMAService

    return TMAService(shard=ShardInfo(shard_id), **kwargs)


# ---------------------------------------------------------------------------
# Spec → wire format


def _spec_to_submission(
    spec: RunnerSpec, workload: str, config_name: str,
) -> Tuple[str, Dict[str, Any], Any]:
    """Translate an in-process execution request to (path, body, job).

    The body is exactly what the shard server will parse back through
    ``TMAJob.from_payload`` / ``MulticoreJob.from_payload`` — building
    the same job object here guarantees the executor routes by the
    *same* canonical job key the server deduplicates on.

    Two spec fields deliberately do not ship: ``timing_engine`` (all
    engines are cycle-identical by the equivalence suite; the shard
    uses its own default) and the retry shape
    (``max_attempts``/``backoff_base`` — retry policy is the executing
    server's concern, and folding it into the key would split dedup).
    An absolute ``deadline`` is rebased to the relative
    ``deadline_seconds`` the wire format carries.
    """
    deadline_seconds: Optional[float] = None
    if spec.deadline is not None:
        deadline_seconds = round(max(spec.deadline - time.time(), 0.001), 3)
    if spec.scenario is not None:
        body: Dict[str, Any] = {
            "scenario": spec.scenario,
            "cores": spec.scenario_cores,
            "scale": spec.scenario_scale,
            "shared_bus": spec.scenario_shared_bus,
            "arbitration": spec.scenario_arbitration,
            "use_cache": spec.use_cache,
            "deadline_seconds": deadline_seconds,
        }
        return "/multicore", body, MulticoreJob.from_payload(body)
    body = {
        "workload": workload,
        "config": config_name,
        "scale": spec.scale,
        "increment_mode": spec.increment_mode,
        "mode": spec.mode,
        "events": list(spec.event_names) if spec.event_names else None,
        "use_cache": spec.use_cache,
        "max_cycles": spec.max_cycles,
        "deadline_seconds": deadline_seconds,
        "windows": spec.windows,
        "warmup": spec.windows_warmup,
        "sampled": spec.windows_sampled,
    }
    return "/jobs", body, TMAJob.from_payload(body)


def _record_to_outcome(record: Dict[str, Any], workload: str,
                       config_name: str) -> RunOutcome:
    """Map a terminal job record from a shard back to a RunOutcome."""
    result = record.get("result") or {}
    payload = dict(result, kind="remote") if result else None
    if record.get("state") == "done" and result.get("status") == "ok":
        return RunOutcome(
            workload=workload, config_name=config_name, status="ok",
            attempts=int(result.get("attempts") or 1), payload=payload)
    error = (record.get("error") or result.get("error")
             or f"shard job ended in state {record.get('state')!r}")
    return RunOutcome(
        workload=workload, config_name=config_name, status="failed",
        attempts=int(result.get("attempts") or 1),
        error_class=result.get("error_class") or "ShardJobFailed",
        error=str(error), payload=payload)


# ---------------------------------------------------------------------------
# The executor


class ShardExecutor:
    """Executor rung that routes submissions across shard servers.

    ``shards`` is an id → base-URL mapping (or a
    :func:`~repro.service.hashring.parse_shard_spec` string); when
    omitted it comes from ``REPRO_SHARDS``.  ``workers`` bounds the
    number of concurrently in-flight remote submissions — dispatch
    threads spend their lives blocked on HTTP, so this is a politeness
    cap on the cluster, not a CPU knob.

    Failover: a shard that cannot be reached at all (connection
    refused/reset — ``ServiceError.status == 0``) is skipped and the
    submission walks the ring's clockwise owner order
    (:meth:`HashRing.owners`).  Backpressure (429) is retried in place,
    honouring the server's ``retry_after``: the owner shard being busy
    is not a reason to break routing exactness.
    """

    kind = "shard"

    def __init__(self, workers: int,
                 shards: Optional[Any] = None,
                 job_timeout: Optional[float] = None,
                 submit_retries: int = DEFAULT_SUBMIT_RETRIES,
                 client_factory: Callable[[str], ServiceClient]
                 = ServiceClient) -> None:
        if shards is None:
            shards = os.environ.get(SHARDS_ENV, "")
        if not shards:
            raise ValueError(
                "shard executor needs cluster members: pass shards= or "
                f"set {SHARDS_ENV}=\"s1=http://host:port,...\"")
        if isinstance(shards, str):
            shards = parse_shard_spec(shards)
        if job_timeout is None:
            raw = os.environ.get(JOB_TIMEOUT_ENV, "").strip()
            try:
                job_timeout = float(raw) if raw else DEFAULT_JOB_TIMEOUT
            except ValueError:
                job_timeout = DEFAULT_JOB_TIMEOUT
        self.workers = workers
        self.job_timeout = job_timeout
        self.submit_retries = submit_retries
        self.clients: Dict[str, ServiceClient] = {
            shard_id: client_factory(url)
            for shard_id, url in shards.items()
        }
        self.ring = HashRing(self.clients)
        self._pool = ThreadExecutor(workers)

    # -- executor contract -------------------------------------------------

    def submit(self, fn: Callable, *args: Any, **kwargs: Any):
        adapter = pool.remote_adapter(fn)
        if adapter is None:
            name = getattr(fn, "__name__", repr(fn))
            raise RuntimeError(
                f"{name} has no registered remote adapter; the shard rung "
                f"refuses to run unremotable work locally "
                f"(see repro.tools.pool.register_remote)")
        return self._pool.submit(adapter, self, *args, **kwargs)

    def shutdown(self, wait: bool = True, **_: object) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- routing -----------------------------------------------------------

    def dispatch(self, path: str, body: Dict[str, Any],
                 job_key: str) -> Dict[str, Any]:
        """Submit one job to its ring owner and wait for the record.

        Returns the terminal job record payload.  Walks the failover
        owner order when shards are unreachable; raises the last
        transport error when every member is down.
        """
        last_error: Optional[ServiceError] = None
        for shard_id in self.ring.owners(job_key, len(self.ring)):
            client = self.clients[shard_id]
            try:
                receipt = self._submit_to(client, path, body)
            except ServiceError as exc:
                if exc.status == 0:
                    last_error = exc  # dead shard: try the next owner
                    continue
                raise
            return client.wait(receipt["id"], timeout=self.job_timeout)
        assert last_error is not None
        raise last_error

    def _submit_to(self, client: ServiceClient, path: str,
                   body: Dict[str, Any]) -> Dict[str, Any]:
        fields = {key: value for key, value in body.items()
                  if key not in ("workload", "scenario")}
        if path == "/multicore":
            return client.submit_multicore(
                body["scenario"], retries=self.submit_retries, **fields)
        return client.submit(
            body["workload"], retries=self.submit_retries, **fields)


def shard_executor_factory(workers: int) -> ShardExecutor:
    return ShardExecutor(workers)


# ---------------------------------------------------------------------------
# Remote adapters


def _remote_execute_job(executor: ShardExecutor, spec: RunnerSpec,
                        workload: str, config_name: str,
                        allow_crash_hook: bool = True,
                        progress: Optional[Callable[[str], None]] = None
                        ) -> RunOutcome:
    """Remote equivalent of :func:`repro.service.workers.execute_job`."""
    del allow_crash_hook  # crash hooks are a local pool-worker concern
    del progress          # callbacks cannot cross the wire (see WorkerPool)
    path, body, job = _spec_to_submission(spec, workload, config_name)
    record = executor.dispatch(path, body, job.job_key())
    return _record_to_outcome(record, workload, config_name)


def _remote_run_shard(
    executor: ShardExecutor, spec: RunnerSpec, shard_index: int, seed: int,
    tasks: Sequence[Tuple[int, str, Any]],
) -> Tuple[List[Tuple[int, RunOutcome]], List[str]]:
    """Remote equivalent of :func:`repro.tools.parallel._run_shard`.

    Each sweep task becomes one routed job submission keyed by the
    config's canonical name, so overlapping sweeps and service clients
    coalesce on the same shard-side records.  ``seed`` only feeds
    local chaos jitter and is meaningless remotely.
    """
    del shard_index, seed
    indexed: List[Tuple[int, RunOutcome]] = []
    for index, workload, config in tasks:
        indexed.append((index, _remote_execute_job(
            executor, spec, workload, config.name)))
    # Quarantine accounting stays shard-server-side (each server runs
    # its own breakers); nothing to report from here.
    return indexed, []


def _register() -> None:
    from ..tools import parallel
    from . import workers

    pool.register_executor("shard", shard_executor_factory)
    pool.register_remote(workers.execute_job, _remote_execute_job)
    pool.register_remote(parallel._run_shard, _remote_run_shard)


_register()

__all__ = [
    "DEFAULT_JOB_TIMEOUT",
    "SHARDS_ENV",
    "ShardExecutor",
    "ShardInfo",
    "make_shard_service",
    "shard_executor_factory",
]
