"""Result store: O(1) repeat-request serving plus durable requeue.

The store layers the service onto :mod:`repro.tools.cache` — the
checksummed, atomically-written, size-bounded disk cache of core
results.  A repeat request whose underlying core result is already on
disk is answered straight from the store (TMA recomputed from the
cached :class:`~repro.cores.base.CoreResult`, which is cheap) without
ever touching the worker pool.

Serving from the core-result cache is only *exact* for the default
harness options: the ``adders`` counter architecture is an exact
popcount (PMU readings equal the core's own totals) and ``baremetal``
adds no measurement passes.  Jobs that ask for ``classic`` /
``distributed`` counters or ``linux`` mode measure through multi-pass
or perturbed harness paths, so those always execute.

The store also owns the drain persistence file: accepted jobs that a
shutdown could not finish are written (atomically) to
``pending-jobs.state`` next to the cache entries, and a restarting
service resubmits them — accepted work is never silently lost.  The
file deliberately does *not* carry a ``.json`` suffix: cache entries
are globbed as ``*.json``, and the pending file must never be counted
or evicted as an LRU cache entry by :func:`repro.tools.cache.prune`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.tma import compute_tma
from ..reliability.runner import RunOutcome
from ..tools import cache
from .job import MulticoreJob, TMAJob, outcome_payload

#: Drain-persistence file name (lives inside the cache directory so
#: ``REPRO_CACHE_DIR`` isolates it along with the results).  JSON
#: content, but a non-``.json`` suffix: the cache's ``*.json`` scan
#: must not treat it as an evictable entry.
PENDING_FILE = "pending-jobs.state"


class ResultStore:
    """Cache-backed result serving and pending-job persistence.

    ``instance`` namespaces the drain-persistence file: shard servers
    of one cluster share a cache directory (that sharing *is* the
    result-store handoff — any node serves any cached result), but
    each must persist its own pending queue, or two shards draining
    concurrently would clobber each other's files last-write-wins.
    """

    def __init__(self, instance: Optional[str] = None) -> None:
        self.instance = instance

    def pending_path(self) -> Path:
        if self.instance:
            name = f"pending-jobs.{self.instance}.state"
            return cache.cache_dir() / name
        return cache.cache_dir() / PENDING_FILE

    # ------------------------------------------------------------------
    # Repeat-request serving

    @staticmethod
    def servable(job: TMAJob) -> bool:
        """True when the disk cache is an exact stand-in for a run."""
        return (job.use_cache
                and job.increment_mode == "adders"
                and job.mode == "baremetal"
                and job.events is None)

    def lookup(self, job: TMAJob) -> Optional[Dict[str, Any]]:
        """Result payload for *job* if served straight from the cache."""
        if isinstance(job, MulticoreJob):
            return self._lookup_multicore(job)
        if not self.servable(job):
            return None
        result = cache.load(job.cache_key())
        if result is None:
            return None
        tma = compute_tma(result)
        outcome = RunOutcome(workload=job.workload,
                             config_name=result.config_name,
                             status="ok", attempts=0)
        payload = outcome_payload(outcome, from_cache=True)
        payload["cycles"] = result.cycles
        payload["instret"] = result.instret
        payload["ipc"] = round(result.ipc, 6)
        payload["tma"] = {
            "level1": {k: round(v, 6) for k, v in tma.level1.items()},
            "level2": {k: round(v, 6) for k, v in tma.level2.items()},
            "dominant": tma.dominant_class(),
        }
        return payload

    def _lookup_multicore(self, job: MulticoreJob) -> Optional[Dict[str, Any]]:
        """Serve a scenario job from the cached scenario payload.

        Scenario runs cache their whole result document (see
        :func:`repro.multicore.run_scenario_payload`), so a repeat
        request reconstructs the job result verbatim — no recompute.
        """
        if not job.use_cache:
            return None
        cached = cache.load_payload(job.cache_key())
        if cached is None:
            return None
        return {
            "status": "ok",
            "attempts": 0,
            "from_cache": True,
            "multicore": dict(cached, from_cache=True),
        }

    # ------------------------------------------------------------------
    # Durable requeue across restarts

    def persist_pending(self, jobs: List[TMAJob]) -> Path:
        """Atomically write undone-but-accepted jobs for the next boot."""
        path = self.pending_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"version": 1,
                    "jobs": [job.to_payload() for job in jobs]}
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp_path, path)
        finally:
            if tmp_path.exists():
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
        return path

    def load_pending(self) -> List[TMAJob]:
        """Read and consume the persisted pending-job file, if any."""
        path = self.pending_path()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return []
        jobs: List[TMAJob] = []
        for payload in document.get("jobs", []):
            try:
                # The "type" tag picks the job class; untagged payloads
                # are single-core jobs (including every pre-tag file).
                if (isinstance(payload, dict)
                        and payload.get("type") == "multicore"):
                    jobs.append(MulticoreJob.from_payload(payload))
                else:
                    jobs.append(TMAJob.from_payload(payload))
            except ValueError:
                continue  # a stale workload/config name: drop, don't crash
        try:
            os.remove(path)
        except OSError:
            pass
        return jobs
