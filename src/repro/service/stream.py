"""Job lifecycle event journal and SSE (Server-Sent Events) codec.

The streaming tier is two small pieces:

- :class:`EventJournal` — the service-side append-only log.  Every
  job record gets an ordered event sequence (``queued`` → ``running``
  → ``progress``\\* → one terminal event) with per-job monotonically
  increasing sequence numbers, and blocking subscription
  (:meth:`EventJournal.wait`) so one HTTP handler thread can stream a
  job live without polling the service.
- the SSE codec — :func:`sse_encode` for the server,
  :func:`parse_sse` for the stdlib client.  Events ride the standard
  ``id:`` / ``event:`` / ``data:`` frame layout, so ``curl`` and
  browsers' ``EventSource`` can watch a job too.

Resumability: sequence numbers are per-job and start at 1, so a
client that reconnects with ``Last-Event-ID: <seq>`` (or
``?after=<seq>``) receives exactly the events it has not seen —
including never duplicating the terminal event, which the tests pin
down.

The journal is bounded on both axes: per-job event counts are capped
(progress ticks beyond the cap are dropped, never lifecycle events),
and whole sequences are discarded when the service evicts the
matching job record.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Event names that end a job's stream (mirrors the service's terminal
#: record states).  A stream always finishes with exactly one of these.
TERMINAL_EVENTS = frozenset(
    ("done", "failed", "rejected", "requeued", "quarantined"))

#: Per-job cap on journaled events.  Lifecycle events are few; only
#: ``progress`` ticks can be numerous, so those are the ones shed.
MAX_EVENTS_PER_JOB = 512


@dataclass(frozen=True)
class JobEvent:
    """One journaled lifecycle event of one job."""

    seq: int
    event: str
    data: Dict[str, Any] = field(default_factory=dict)
    ts: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.event in TERMINAL_EVENTS

    def to_payload(self) -> Dict[str, Any]:
        return {"seq": self.seq, "event": self.event,
                "ts": self.ts, "data": self.data}


class EventJournal:
    """Thread-safe per-job event sequences with blocking subscription."""

    def __init__(self, max_events_per_job: int = MAX_EVENTS_PER_JOB) -> None:
        self.max_events_per_job = max_events_per_job
        self._events: Dict[str, List[JobEvent]] = {}
        self._cond = threading.Condition()

    def append(self, job_id: str, event: str,
               data: Optional[Dict[str, Any]] = None) -> Optional[JobEvent]:
        """Journal one event; wakes all waiting subscribers.

        Returns the journaled event, or None when the per-job cap shed
        it (only non-lifecycle ``progress`` ticks are ever shed).
        """
        with self._cond:
            sequence = self._events.setdefault(job_id, [])
            if (len(sequence) >= self.max_events_per_job
                    and event not in TERMINAL_EVENTS):
                return None
            entry = JobEvent(seq=len(sequence) + 1, event=event,
                             data=dict(data or {}), ts=time.time())
            sequence.append(entry)
            self._cond.notify_all()
            return entry

    def events(self, job_id: str, after: int = 0) -> List[JobEvent]:
        """Snapshot of the journaled events with ``seq > after``."""
        with self._cond:
            sequence = self._events.get(job_id, [])
            return [event for event in sequence if event.seq > after]

    def known(self, job_id: str) -> bool:
        with self._cond:
            return job_id in self._events

    def finished(self, job_id: str) -> bool:
        """True once the job's stream has its terminal event."""
        with self._cond:
            sequence = self._events.get(job_id, [])
            return bool(sequence) and sequence[-1].terminal

    def wait(self, job_id: str, after: int = 0,
             timeout: Optional[float] = None) -> List[JobEvent]:
        """Block until events with ``seq > after`` exist (or timeout).

        Returns the new events — possibly ``[]`` on timeout, which
        streaming handlers use as their keepalive tick.  Never blocks
        when the stream is already finished.
        """
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            while True:
                sequence = self._events.get(job_id, [])
                fresh = [event for event in sequence if event.seq > after]
                if fresh or (sequence and sequence[-1].terminal):
                    return fresh
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        return []
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def discard(self, job_id: str) -> None:
        with self._cond:
            self._events.pop(job_id, None)

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)


# ---------------------------------------------------------------------------
# SSE codec


def sse_encode(event: JobEvent) -> bytes:
    """One SSE frame: ``id`` carries the resume cursor."""
    data = json.dumps(event.data, separators=(",", ":"))
    return (f"id: {event.seq}\n"
            f"event: {event.event}\n"
            f"data: {data}\n\n").encode("utf-8")


def sse_keepalive() -> bytes:
    """An SSE comment frame; clients ignore it, proxies stay warm."""
    return b": keepalive\n\n"


def parse_sse(stream) -> Iterator[Dict[str, Any]]:
    """Incrementally decode SSE frames from a binary file-like object.

    Yields ``{"id": int, "event": str, "data": dict}`` per frame;
    comment lines (keepalives) are skipped.  Returns when the stream
    closes.  Tolerates half-frames at EOF (a killed server mid-write):
    the partial frame is dropped, which is safe because the client
    resumes from the last *complete* frame's id.
    """
    fields: Dict[str, str] = {}
    for raw in stream:
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if not line:
            if "event" in fields or "data" in fields:
                try:
                    data = json.loads(fields.get("data", "{}"))
                except ValueError:
                    data = {"raw": fields.get("data", "")}
                yield {"id": int(fields.get("id", 0) or 0),
                       "event": fields.get("event", "message"),
                       "data": data}
            fields = {}
            continue
        if line.startswith(":"):
            continue
        name, _, value = line.partition(":")
        fields[name.strip()] = value.lstrip()


__all__ = [
    "EventJournal",
    "JobEvent",
    "MAX_EVENTS_PER_JOB",
    "TERMINAL_EVENTS",
    "parse_sse",
    "sse_encode",
    "sse_keepalive",
]
