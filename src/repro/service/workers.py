"""Worker pool: job execution with crash isolation and recovery.

Jobs execute through :class:`~repro.reliability.runner.ResilientRunner`
(watchdog, invariant checks, bounded retry, cache quarantine) rebuilt
from a picklable :class:`~repro.tools.pool.RunnerSpec` inside whatever
executor the deployment chose — ``process`` (crash isolation, true
parallelism), ``thread``, or ``inline`` (see
:mod:`repro.tools.pool`, shared with the batch sweep engine).

A worker that dies outright (OOM-killed, segfaulted) breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`; the pool detects the
broken executor, rebuilds it, and reports the crash so the service can
re-queue the victim job.  The ``REPRO_SERVICE_CRASH_WORKLOAD`` test
hook mirrors the sweep engine's: a pool worker about to execute that
workload exits hard instead — but only on a job's first execution
(re-queued jobs run with the hook disabled), so recovery is testable
deterministically.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future
from typing import Callable, Optional

from ..chaos import injector as chaos
from ..cores import resolve_config_spec
from ..reliability.retry import RetryPolicy
from ..reliability.runner import RunOutcome
from ..tools.pool import (ExecutorFactory, RunnerSpec, executor_factory,
                          in_worker)

#: Test hook: a pool worker about to execute this workload dies with
#: ``os._exit``, simulating a segfaulting/OOM-killed worker process.
CRASH_ENV = "REPRO_SERVICE_CRASH_WORKLOAD"

#: Submission-path retry schedule: one rebuild-and-resubmit per broken
#: executor, no backoff (a fresh pool is immediately usable).
SUBMIT_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay=0.0)


def execute_job(spec: RunnerSpec, workload: str, config_name: str,
                allow_crash_hook: bool = True,
                progress: Optional[Callable[[str], None]] = None
                ) -> RunOutcome:
    """Run one job (in a pool worker or inline) and return its outcome.

    The runner resolves the functional trace through the shared
    trace-memoization tiers (:mod:`repro.workloads.trace_cache`): a
    burst of jobs over the same workload executes it functionally once
    per worker at most, and usually zero times (disk hit on packed
    column bytes).  The per-run hit/miss delta rides home on
    ``RunOutcome.trace_cache`` for the service metrics registry.

    ``progress`` is an optional per-window tick sink (windowed jobs
    only).  It cannot cross a process boundary, so the pool forwards
    it only on same-process executors; see :meth:`WorkerPool.submit`.
    """
    if allow_crash_hook and in_worker():
        if os.environ.get(CRASH_ENV) == workload:
            os._exit(13)
        # Chaos worker-kill seam: first execution only (re-queued jobs
        # run with the hook disabled), so injected kills always recover.
        chaos.maybe_kill_worker(f"job:{workload}:{config_name}")
    if spec.scenario is not None:
        return _execute_multicore(spec)
    if spec.windows is not None:
        return _execute_windowed(spec, workload, config_name,
                                 progress=progress)
    # Accept grid point keys ("rocket+l1d=8KiB") as well as registry
    # names, so fanned-out grid jobs run through the same path.
    config = resolve_config_spec(config_name)
    runner = spec.build()
    return runner.run_one(workload, config)


def _execute_windowed(spec: RunnerSpec, workload: str, config_name: str,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> RunOutcome:
    """Run one windowed job; the result summary rides the outcome.

    The job already executes inside a service pool worker, so the
    windowed engine runs its windows serially here (``workers=1``)
    rather than nesting a second process pool; service-level
    parallelism comes from many jobs in flight.  The outcome payload is
    labeled ``kind="windowed"`` and always carries the ``sampled`` flag
    so :func:`repro.service.job.outcome_payload` can surface it.
    """
    from ..core.tma import compute_tma
    from ..cores.windowed import run_windowed
    from ..isa.errors import DeadlineExceeded

    assert spec.windows is not None
    config = resolve_config_spec(config_name)
    try:
        if spec.deadline is not None and time.time() >= spec.deadline:
            raise DeadlineExceeded(
                f"windowed job {workload!r} deadline lapsed before start")
        result = run_windowed(
            workload, config, windows=spec.windows, scale=spec.scale,
            warmup=spec.windows_warmup, sampled=spec.windows_sampled,
            engine=spec.timing_engine, use_cache=spec.use_cache, workers=1,
            progress=progress if progress is not None else False)
        tma = compute_tma(result)
    except Exception as exc:  # noqa: BLE001 - reported on the outcome
        return RunOutcome(workload=workload, config_name=config_name,
                          status="failed", attempts=1,
                          error_class=type(exc).__name__,
                          error=str(exc))
    payload = {
        "kind": "windowed",
        "sampled": result.sampled,
        "windowed": result.windowed,
        "cycles": result.cycles,
        "instret": result.instret,
        "ipc": round(result.instret / result.cycles, 6)
        if result.cycles else 0.0,
        "tma": {
            "level1": {k: round(v, 6) for k, v in tma.level1.items()},
            "level2": {k: round(v, 6) for k, v in tma.level2.items()},
            "dominant": tma.dominant_class(),
        },
    }
    return RunOutcome(workload=workload, config_name=config_name,
                      status="ok", attempts=1, payload=payload)


def _execute_multicore(spec: RunnerSpec) -> RunOutcome:
    """Run one multicore scenario job; the payload rides the outcome.

    Scenario runs have no Measurement/TMA pair of their own — the
    per-core documents live inside the scenario payload — so the
    outcome carries the whole payload for
    :func:`repro.service.job.outcome_payload` to pass through.
    """
    from ..isa.errors import DeadlineExceeded
    from ..multicore import run_scenario_payload

    assert spec.scenario is not None
    try:
        if spec.deadline is not None and time.time() >= spec.deadline:
            raise DeadlineExceeded(
                f"scenario {spec.scenario!r} deadline lapsed before start")
        payload = run_scenario_payload(
            spec.scenario,
            cores=spec.scenario_cores,
            scale=spec.scenario_scale,
            shared_bus=spec.scenario_shared_bus,
            arbitration=spec.scenario_arbitration,
            engine=spec.timing_engine,
            max_cycles=spec.max_cycles,
            use_cache=spec.use_cache)
    except Exception as exc:  # noqa: BLE001 - reported on the outcome
        return RunOutcome(workload=spec.scenario,
                          config_name="multicore",
                          status="failed", attempts=1,
                          error_class=type(exc).__name__,
                          error=str(exc))
    return RunOutcome(workload=spec.scenario, config_name="multicore",
                      status="ok", attempts=1, payload=payload)


class WorkerPool:
    """An executor that survives worker crashes.

    ``style`` picks a factory from
    :data:`repro.tools.pool.EXECUTOR_FACTORIES`; tests may inject a
    custom ``factory`` instead (it receives the worker count and must
    return an executor with ``submit``/``shutdown``).
    """

    def __init__(self, workers: int = 2, style: str = "process",
                 factory: Optional[ExecutorFactory] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.style = style
        # executor_factory() raises ValueError on unknown styles and
        # lazily imports registered-on-first-use rungs ("shard").
        self._factory = factory or executor_factory(style)
        self.retry_policy = retry_policy or SUBMIT_RETRY_POLICY
        self._lock = threading.Lock()
        self._executor = None
        self._shut_down = False
        self.rebuilds = 0

    def _ensure_executor(self):
        with self._lock:
            if self._shut_down:
                raise RuntimeError("worker pool is shut down")
            if self._executor is None:
                self._executor = self._factory(self.workers)
            return self._executor

    @property
    def kind(self) -> str:
        """The ladder rung actually in use (falls back to the style).

        Custom injected factories may build executors without a
        ``kind`` attribute; the configured style is the honest answer
        then.
        """
        executor = self._executor
        return getattr(executor, "kind", None) or self.style

    @property
    def supports_callbacks(self) -> bool:
        """True when submissions stay in-process (callables can ride).

        Process and shard executors ship arguments across process or
        machine boundaries, so live progress callbacks cannot follow;
        thread and inline executors share the interpreter.
        """
        return self.kind in ("thread", "inline")

    def submit(self, spec: RunnerSpec, workload: str, config_name: str,
               allow_crash_hook: bool = True,
               progress=None) -> Future:
        # Submission retries follow the shared RetryPolicy: the pool
        # broke between jobs (a worker died idle, or a previous crash
        # poisoned it) — rebuild and resubmit, bounded by the policy's
        # attempt cap instead of an ad-hoc single retry.
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retry_policy.max_attempts):
            executor = self._ensure_executor()
            if attempt:
                pause = self.retry_policy.delay(
                    attempt - 1, salt=f"submit:{workload}:{config_name}")
                if pause > 0:
                    time.sleep(pause)
            try:
                if progress is not None and self.supports_callbacks:
                    future = executor.submit(execute_job, spec, workload,
                                             config_name, allow_crash_hook,
                                             progress)
                else:
                    future = executor.submit(execute_job, spec, workload,
                                             config_name, allow_crash_hook)
            except (BrokenExecutor, RuntimeError) as exc:
                last_exc = exc
                with self._lock:
                    if self._shut_down:
                        # shutdown() raced us: refuse, never resurrect a
                        # fresh executor the shutdown would not reap.
                        raise
                self._rebuild(executor)
                continue
            # Remember which executor produced the future, so a later
            # crash report rebuilds the executor that actually broke and
            # never tears down an already-rebuilt healthy one.
            future.pool_source = executor
            return future
        assert last_exc is not None
        raise last_exc

    def _rebuild(self, broken) -> None:
        with self._lock:
            if self._executor is not broken:
                return  # someone else already swapped it out
            self._executor = None
            self.rebuilds += 1
        try:
            broken.shutdown(wait=False)
        except Exception:  # noqa: BLE001 - broken pools may refuse politely
            pass

    def note_broken(self, future_exception: BaseException,
                    future: Optional[Future] = None) -> bool:
        """Classify a job failure; rebuild the pool if it was a crash.

        Returns True when the exception means the *worker* died (the
        job itself is innocent and should be re-queued) rather than the
        job failing on its own merits.  Pass the failed ``future`` so
        the rebuild targets the executor that actually produced it:
        ``_rebuild`` is identity-checked, so a stale crash report from
        an already-replaced executor never shuts down the healthy
        rebuilt one mid-flight.
        """
        if not isinstance(future_exception, BrokenExecutor):
            return False
        broken = getattr(future, "pool_source", None)
        if broken is None:
            with self._lock:
                broken = self._executor
        if broken is not None:
            self._rebuild(broken)
        return True

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shut_down = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)
