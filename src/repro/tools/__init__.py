"""High-level tooling: the tma_tool pipeline and the result cache."""

from .tma_tool import (micro_suite, rocket_with_l1d, run_core, run_suite,
                       run_tma, spec_suite)

__all__ = [
    "micro_suite",
    "rocket_with_l1d",
    "run_core",
    "run_suite",
    "run_tma",
    "spec_suite",
]
