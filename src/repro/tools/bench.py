"""Benchmark harness with a regression gate: ``repro-tma bench``.

Runs the tier-2 performance set — the Fig. 7 Rocket workload suite
single-run (traced vs. fast path) and the (workload x config) sweep
(serial vs. parallel) — and writes a ``BENCH_*.json`` snapshot of:

- wall-clock and runs/sec for every mode,
- the fast-path speedup over the traced path,
- the parallel sweep's speedup over serial and its per-worker
  efficiency,
- whether parallel and serial sweeps merged to identical results.

The regression gate compares the *ratio* metrics (speedups,
efficiency) against the previous snapshot with a configurable
threshold.  Ratios are used because they are approximately
machine-independent: absolute runs/sec differ wildly across CI
runners, but "fast path is 2.2x the traced path" holds anywhere the
same interpreter runs, so a drop means the code regressed, not the
machine.  Absolute numbers are recorded for humans, never gated.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import re
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..cores.configs import ROCKET
from ..pmu.harness import PerfHarness
from ..reliability.runner import ResilientRunner
from ..workloads import build_trace, workload_names
from .parallel import ParallelSweepRunner

#: Snapshot written by this PR's harness; bump per PR with a baseline.
DEFAULT_OUTPUT = "BENCH_PR2.json"

#: Ratio metrics the gate enforces ("section.key" paths).  Anything
#: not listed here is informational only.
GATED_METRICS = (
    "fastpath.speedup",
    "parallel.speedup",
    "parallel.efficiency",
)

#: Workloads for the quick (CI) variant: a cross-section of the micro
#: suite that exercises caches, branches, and serial dependencies.
QUICK_WORKLOADS = (
    "dhrystone",
    "median",
    "qsort",
    "towers",
    "vvadd",
    "spmv",
    "mergesort",
    "multiply",
)


def _fingerprint() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpus": str(os.cpu_count() or 1),
    }


def _outcome_digest(outcome) -> Tuple:
    """Hashable identity of one sweep outcome for equivalence checks."""
    measurement = outcome.measurement
    if measurement is None:
        measured = None
    else:
        measured = (
            tuple(sorted(measurement.events.items())),
            measurement.cycles,
            measurement.instret,
            measurement.passes,
        )
    return (
        outcome.workload,
        outcome.config_name,
        outcome.status,
        outcome.attempts,
        measured,
    )


def _bench_fastpath(
    workloads: Sequence[str],
    scale: float,
    inject_slowdown: float,
) -> Dict[str, float]:
    """Single-run Fig. 7 Rocket suite: traced path vs. fast path.

    The traced path attaches the per-cycle signal machinery the PMU
    models consume; the fast path is the tracerless loop the sweeps
    use.  Both replay identical committed-path traces, so the ratio is
    a pure measure of the core model's inner loop.
    """
    from ..pmu.harness import make_core

    traces = {name: build_trace(name, scale=scale) for name in workloads}

    start = time.perf_counter()
    for name in workloads:
        make_core(ROCKET).run(traces[name], fast_path=False)
    traced_s = time.perf_counter() - start

    per_run_penalty = inject_slowdown * traced_s / len(workloads)
    start = time.perf_counter()
    for name in workloads:
        make_core(ROCKET).run(traces[name], fast_path=True)
        if per_run_penalty:
            time.sleep(per_run_penalty)
    fast_s = time.perf_counter() - start

    return {
        "workloads": len(workloads),
        "traced_wall_s": round(traced_s, 4),
        "fast_wall_s": round(fast_s, 4),
        "traced_runs_per_s": round(len(workloads) / traced_s, 3),
        "fast_runs_per_s": round(len(workloads) / fast_s, 3),
        "speedup": round(traced_s / fast_s, 3),
    }


def _bench_parallel(
    workloads: Sequence[str],
    scale: float,
    workers: int,
) -> Dict[str, float]:
    """Sweep the grid serially and in parallel; compare wall clock.

    Caching is off for both so every pair pays the full simulation on
    both sides; merged results must be identical regardless of engine.
    """
    configs = [ROCKET]

    def make_runner() -> ResilientRunner:
        harness = PerfHarness(core="rocket")
        return ResilientRunner(harness=harness, scale=scale, use_cache=False)

    start = time.perf_counter()
    serial_engine = ParallelSweepRunner(runner=make_runner(), max_workers=1)
    serial = serial_engine.run_grid(workloads, configs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pool_engine = ParallelSweepRunner(runner=make_runner(), max_workers=workers)
    parallel = pool_engine.run_grid(workloads, configs)
    parallel_s = time.perf_counter() - start

    serial_digests = [_outcome_digest(o) for o in serial.outcomes]
    parallel_digests = [_outcome_digest(o) for o in parallel.outcomes]
    identical = serial_digests == parallel_digests
    runs = len(serial.outcomes)
    speedup = serial_s / parallel_s
    # Per-core efficiency normalizes by the cores the workers can
    # actually occupy, so the metric is comparable across runners: 4
    # workers on 1 core should score ~1.0 (no useless overhead), and 4
    # workers on >=4 cores should score speedup/4.
    effective_cores = max(1, min(workers, os.cpu_count() or 1))
    return {
        "runs": runs,
        "workers": workers,
        "effective_cores": effective_cores,
        "engine": parallel.engine,
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "serial_runs_per_s": round(runs / serial_s, 3),
        "parallel_runs_per_s": round(runs / parallel_s, 3),
        "speedup": round(speedup, 3),
        "efficiency": round(speedup / effective_cores, 3),
        "identical": identical,
    }


def run_benchmarks(
    quick: bool = False,
    workers: Optional[int] = None,
    inject_slowdown: float = 0.0,
) -> Dict:
    """Run the tier-2 set and return the ``BENCH_*.json`` payload.

    ``workers`` defaults to 4 — the acceptance point for sweep scaling
    — even on smaller machines; efficiency is normalized by the cores
    the workers can actually occupy.
    """
    workers = workers or 4
    if quick:
        workloads: Sequence[str] = QUICK_WORKLOADS
    else:
        workloads = workload_names("micro")
    scale = 1.0
    return {
        "bench": "tier-2",
        "mode": "quick" if quick else "full",
        "scale": scale,
        "fingerprint": _fingerprint(),
        "fastpath": _bench_fastpath(workloads, scale, inject_slowdown),
        "parallel": _bench_parallel(workloads, scale, workers),
    }


# ----------------------------------------------------------------------
# Regression gate


def _lookup(payload: Dict, path: str) -> Optional[float]:
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def compare_benchmarks(
    current: Dict,
    baseline: Dict,
    threshold: float = 0.20,
) -> List[str]:
    """Gate *current* against *baseline*; returns regression messages.

    A gated ratio metric regresses when it falls more than *threshold*
    below the baseline value.  Improvements and missing baseline
    metrics never fail; a non-identical parallel merge always fails.
    The ``parallel.*`` ratios are only compared when both snapshots ran
    on the same effective core count — per-core efficiency measured on
    1 core and on 4 cores are different quantities, and comparing them
    across heterogeneous runners would manufacture regressions.
    """
    current_cores = _lookup(current, "parallel.effective_cores")
    baseline_cores = _lookup(baseline, "parallel.effective_cores")
    cores_match = current_cores == baseline_cores
    problems: List[str] = []
    for path in GATED_METRICS:
        if path.startswith("parallel.") and not cores_match:
            continue
        base = _lookup(baseline, path)
        cur = _lookup(current, path)
        if base is None or cur is None or base <= 0:
            continue
        floor = base * (1.0 - threshold)
        if cur < floor:
            problems.append(
                f"{path}: {cur:.3f} < {floor:.3f} "
                f"(baseline {base:.3f}, threshold {threshold:.0%})"
            )
    if not current.get("parallel", {}).get("identical", True):
        problems.append(
            "parallel.identical: parallel and serial sweeps "
            "merged to different results"
        )
    return problems


def find_baseline(output: str, root: str = ".") -> Optional[str]:
    """Newest committed ``BENCH_*.json`` other than *output* itself."""
    output_abs = os.path.abspath(output)
    candidates = [
        path
        for path in glob.glob(os.path.join(root, "BENCH_*.json"))
        if os.path.abspath(path) != output_abs
    ]

    def pr_number(path: str) -> int:
        match = re.search(r"(\d+)", os.path.basename(path))
        return int(match.group(1)) if match else -1

    candidates.sort(key=pr_number)
    return candidates[-1] if candidates else None


def render_payload(payload: Dict) -> str:
    fast = payload["fastpath"]
    par = payload["parallel"]
    lines = [
        f"tier-2 bench [{payload['mode']}] scale={payload['scale']} "
        f"python={payload['fingerprint']['python']} "
        f"cpus={payload['fingerprint']['cpus']}",
        f"  fastpath: {fast['workloads']} rocket fig7 runs  "
        f"traced {fast['traced_wall_s']:.2f}s "
        f"({fast['traced_runs_per_s']:.1f}/s)  "
        f"fast {fast['fast_wall_s']:.2f}s "
        f"({fast['fast_runs_per_s']:.1f}/s)  "
        f"speedup {fast['speedup']:.2f}x",
        f"  parallel: {par['runs']} sweep pairs  "
        f"serial {par['serial_wall_s']:.2f}s  "
        f"{par['workers']} workers {par['parallel_wall_s']:.2f}s  "
        f"speedup {par['speedup']:.2f}x  "
        f"efficiency {par['efficiency']:.2f}  "
        f"identical={par['identical']} engine={par['engine']}",
    ]
    return "\n".join(lines)


def write_payload(payload: Dict, output: str) -> None:
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
