"""Benchmark harness with a regression gate: ``repro-tma bench``.

Runs the tier-2 performance set — the Fig. 7 Rocket workload suite
single-run (traced vs. fast path), the functional layer (interpreted
oracle vs. closure-compiled engine), the trace-memoization tiers
(cold vs. warm), the timing engines (columnar descriptor loops vs.
the ``DynInst``-walking oracle, on Rocket and BOOM large), and the
(workload x config) sweep (serial vs. parallel) — and writes a
``BENCH_*.json`` snapshot of:

- wall-clock and runs/sec for every mode,
- the fast-path speedup over the traced path,
- the compiled functional engine's speedup over the interpreter (with
  a bit-identical trace check),
- the columnar timing engine's speedup over the object engine per
  core model, in wall clock and simulated cycles/instructions per
  second (with a bit-identical ``CoreResult`` check),
- the warm trace-cache hit rate,
- the batched multi-config engine's wall clock against per-config
  single runs (grid-of-4, inline and pooled, with a bit-identical
  oracle check per grid point),
- the windowed engine's stitch-identity gate against the ``run_core``
  oracle, its sampled-mode extrapolation error, and its speedup over a
  serial run of a huge-tier trace (per-core efficiency gated),
- the parallel sweep's speedup over serial and its per-worker
  efficiency,
- whether parallel and serial sweeps merged to identical results.

The regression gate compares the *ratio* metrics (speedups,
efficiency) against the previous snapshot with a configurable
threshold.  Ratios are used because they are approximately
machine-independent: absolute runs/sec differ wildly across CI
runners, but "fast path is 2.2x the traced path" holds anywhere the
same interpreter runs, so a drop means the code regressed, not the
machine.  Absolute numbers are recorded for humans, never gated.
Raw parallel *speedup* is deliberately not gated either: on a 1-CPU
runner 4 workers legitimately score < 1.0 (BENCH_PR2 recorded 0.894),
so the gate uses per-core ``parallel.efficiency`` instead, which is
already normalized by ``effective_cores``.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import re
import shutil
import tempfile
import time
from dataclasses import astuple
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cores.configs import ROCKET
from ..isa import execute, execute_compiled
from ..pmu.harness import PerfHarness
from ..reliability.runner import ResilientRunner
from ..workloads import (
    build_program,
    build_trace,
    clear_caches,
    trace_cache,
    workload_names,
)
from .parallel import ParallelSweepRunner

#: Snapshot written by this PR's harness; bump per PR with a baseline.
DEFAULT_OUTPUT = "BENCH_PR10.json"

#: Ratio metrics the gate enforces ("section.key" paths).  Anything
#: not listed here is informational only.  ``parallel.speedup`` is
#: intentionally absent: absolute pool speedup is a property of the
#: runner's core count (0.894 on a 1-CPU runner is correct behaviour),
#: so the gate enforces the per-core ``parallel.efficiency`` instead.
GATED_METRICS = (
    "fastpath.speedup",
    "functional.speedup",
    "timing.rocket.speedup",
    "timing.boom_large.speedup",
    "timing.batch.speedup",
    "timing.windowed.efficiency",
    "parallel.efficiency",
)

#: Workloads for the quick (CI) variant: a cross-section of the micro
#: suite that exercises caches, branches, and serial dependencies.
QUICK_WORKLOADS = (
    "dhrystone",
    "median",
    "qsort",
    "towers",
    "vvadd",
    "spmv",
    "mergesort",
    "multiply",
)

#: Workloads for the timing-engine section: a fixed basket mixing FP
#: kernels, streaming memory, sorting, and branchy spec proxies, so
#: the engine ratio reflects every pipeline regime rather than one
#: workload's personality.
TIMING_WORKLOADS = (
    "mm",
    "spmv",
    "vvadd",
    "multiply",
    "towers",
    "mergesort",
    "548.exchange2_r",
    "531.deepsjeng_r",
    "541.leela_r",
    "coremark",
)


def _fingerprint() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpus": str(os.cpu_count() or 1),
    }


def _outcome_digest(outcome) -> Tuple:
    """Hashable identity of one sweep outcome for equivalence checks."""
    measurement = outcome.measurement
    if measurement is None:
        measured = None
    else:
        measured = (
            tuple(sorted(measurement.events.items())),
            measurement.cycles,
            measurement.instret,
            measurement.passes,
        )
    return (
        outcome.workload,
        outcome.config_name,
        outcome.status,
        outcome.attempts,
        measured,
    )


def _bench_fastpath(
    workloads: Sequence[str],
    scale: float,
    inject_slowdown: float,
) -> Dict[str, float]:
    """Single-run Fig. 7 Rocket suite: traced path vs. fast path.

    The traced path attaches the per-cycle signal machinery the PMU
    models consume; the fast path is the tracerless loop the sweeps
    use.  Both replay identical committed-path traces, so the ratio is
    a pure measure of the core model's inner loop.
    """
    from ..pmu.harness import make_core

    traces = {name: build_trace(name, scale=scale) for name in workloads}

    start = time.perf_counter()
    for name in workloads:
        make_core(ROCKET).run(traces[name], fast_path=False)
    traced_s = time.perf_counter() - start

    per_run_penalty = inject_slowdown * traced_s / len(workloads)
    start = time.perf_counter()
    for name in workloads:
        make_core(ROCKET).run(traces[name], fast_path=True)
        if per_run_penalty:
            time.sleep(per_run_penalty)
    fast_s = time.perf_counter() - start

    return {
        "workloads": len(workloads),
        "traced_wall_s": round(traced_s, 4),
        "fast_wall_s": round(fast_s, 4),
        "traced_runs_per_s": round(len(workloads) / traced_s, 3),
        "fast_runs_per_s": round(len(workloads) / fast_s, 3),
        "speedup": round(traced_s / fast_s, 3),
    }


def _core_result_digest(result) -> Tuple:
    """Every observable field of one ``CoreResult``."""
    return (
        result.cycles,
        result.instret,
        tuple(sorted(result.events.items())),
        tuple(sorted((k, tuple(v)) for k, v in result.lane_events.items())),
        astuple(result.l1i_stats),
        astuple(result.l1d_stats),
        astuple(result.l2_stats),
        astuple(result.predictor_stats),
        tuple(sorted(result.extra.items())),
    )


def _bench_timing_core(
    make_core_fn: Callable,
    traces: Dict,
    names: Sequence[str],
) -> Dict[str, float]:
    """Run the basket under both timing engines for one core model.

    Fresh core per run (matching how ``tma_tool``/the harness run), one
    pass per engine over shared prebuilt traces: each engine pays its
    own per-trace compilation exactly once — ``DynInst``
    materialization for the object engine, descriptor tables for the
    columnar engine — which is what a cold sweep pays.  ``identical``
    is a full field-by-field ``CoreResult`` comparison.
    """

    def one_pass(engine: str):
        results = []
        start = time.perf_counter()
        for name in names:
            results.append(make_core_fn().run(traces[name], engine=engine))
        return time.perf_counter() - start, results

    objects_s, objects_results = one_pass("objects")
    columnar_s, columnar_results = one_pass("columnar")
    identical = all(
        _core_result_digest(a) == _core_result_digest(b)
        for a, b in zip(objects_results, columnar_results)
    )
    cycles = sum(r.cycles for r in columnar_results)
    instret = sum(r.instret for r in columnar_results)
    return {
        "workloads": len(names),
        "simulated_cycles": cycles,
        "simulated_instructions": instret,
        "objects_wall_s": round(objects_s, 4),
        "columnar_wall_s": round(columnar_s, 4),
        "objects_kcycles_per_s": round(cycles / objects_s / 1e3, 1),
        "columnar_kcycles_per_s": round(cycles / columnar_s / 1e3, 1),
        "objects_kinst_per_s": round(instret / objects_s / 1e3, 1),
        "columnar_kinst_per_s": round(instret / columnar_s / 1e3, 1),
        "speedup": round(objects_s / columnar_s, 3),
        "identical": identical,
    }


def _bench_timing(scale: float, workers: int) -> Dict:
    """Timing engines: descriptor-compiled columnar loops vs. oracle.

    Both engines replay identical committed-path traces through the
    same pipeline model, so the ratio isolates the engine's data
    layout: slab-allocated columns indexed by static-op descriptors
    vs. materialized ``DynInst``/µop objects.  Simulated cycles and
    instructions per second are the throughput a (workload x config)
    sweep experiences per core model.
    """
    from ..cores.boom import BoomCore
    from ..cores.configs import LARGE_BOOM
    from ..cores.rocket import RocketCore

    names = TIMING_WORKLOADS
    traces = {name: build_trace(name, scale=scale) for name in names}
    rocket = _bench_timing_core(lambda: RocketCore(ROCKET), traces, names)
    boom = _bench_timing_core(lambda: BoomCore(LARGE_BOOM), traces, names)
    # Drop the section's residue: the object-engine passes cached a
    # materialized DynInst list on every trace held by the in-memory
    # tier, and forking that heap into pool workers measurably slows
    # the parallel section (copy-on-write faults on refcount writes).
    del traces
    trace_cache.clear_memory()
    batch = _bench_batch(scale, workers)
    windowed = _bench_windowed(workers)
    return {
        "rocket": rocket,
        "boom_large": boom,
        "batch": batch,
        "windowed": windowed,
        "identical": bool(
            rocket["identical"] and boom["identical"] and batch["identical"]
        ),
    }


#: Workload basket for the batched-grid section: one FP kernel and one
#: branchy recursive workload, so sharing is measured across both
#: pipeline personalities without making the section dominate the run.
BATCH_WORKLOADS = ("mm", "towers")


def _bench_batch(scale: float, workers: int) -> Dict[str, float]:
    """Batched multi-config engine vs. per-config single runs.

    Measures the default grid-of-4 three ways over the same workload
    basket, against an isolated cache with the disk trace tier
    pre-seeded (the steady state a sweep worker sees):

    - ``singles``: one :func:`~repro.tools.tma_tool.run_core` per grid
      point, the memory trace tier cleared before each config so every
      point pays its own trace fetch and descriptor compile — exactly
      what N independent per-config engines pay.
    - ``batch`` (inline): one :func:`~repro.cores.batch.run_batch` pass
      per workload with ``workers=1``.  The gated ``speedup`` ratio
      (``singles_wall / batch_wall``) isolates the sharing machinery —
      trace fetched once, descriptor tables compiled once, TAGE fold
      memos shared — with no parallelism in the numerator, so it is
      machine-independent and must never fall materially below 1.0
      (batching must not cost more than the runs it replaces).
    - ``pool``: the same pass with ``workers`` processes, which is how
      ``repro-tma sweep --grid`` actually runs.  ``vs_single``
      (``pool_wall / max_single_wall``) is the acceptance target
      (< 2.0) and is honest about hardware: on a 1-CPU runner the pool
      cannot beat it, so ``target_met`` is recorded alongside
      ``effective_cores`` rather than gated across heterogeneous
      runners.

    ``identical`` is the full field-by-field ``CoreResult`` comparison
    of every batch point against its single-run oracle.
    """
    from ..cores.batch import DEFAULT_GRID, parse_grid, run_batch
    from .tma_tool import run_core

    points = parse_grid(DEFAULT_GRID)
    names = BATCH_WORKLOADS
    saved = os.environ.get("REPRO_CACHE_DIR")
    tmp = tempfile.mkdtemp(prefix="repro-bench-batch-")
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        clear_caches()
        for name in names:  # seed the disk trace tier
            build_trace(name, scale=scale)

        single_wall: Dict[str, float] = {}
        singles = {}
        for point in points:
            trace_cache.clear_memory()
            start = time.perf_counter()
            for name in names:
                singles[(name, point.key)] = run_core(
                    name, point.config, scale=scale, use_cache=False
                )
            single_wall[point.key] = time.perf_counter() - start

        trace_cache.clear_memory()
        start = time.perf_counter()
        batches = {
            name: run_batch(name, points, scale=scale, use_cache=False, workers=1)
            for name in names
        }
        batch_s = time.perf_counter() - start

        trace_cache.clear_memory()
        start = time.perf_counter()
        pooled = {
            name: run_batch(
                name, points, scale=scale, use_cache=False, workers=workers
            )
            for name in names
        }
        pool_s = time.perf_counter() - start

        identical = all(
            _core_result_digest(batches[name].result_for(point.key))
            == _core_result_digest(singles[(name, point.key)])
            and _core_result_digest(pooled[name].result_for(point.key))
            == _core_result_digest(singles[(name, point.key)])
            for name in names
            for point in points
        )
        singles_s = sum(single_wall.values())
        max_single_s = max(single_wall.values())
        vs_single = pool_s / max_single_s if max_single_s else 0.0
        effective_cores = max(1, min(workers, os.cpu_count() or 1))
        return {
            "workloads": len(names),
            "points": len(points),
            "workers": workers,
            "effective_cores": effective_cores,
            "singles_wall_s": round(singles_s, 4),
            "max_single_wall_s": round(max_single_s, 4),
            "batch_wall_s": round(batch_s, 4),
            "pool_wall_s": round(pool_s, 4),
            "trace_fetches": sum(b.stats.trace_fetches for b in batches.values()),
            "tables_shared": sum(b.stats.tables_shared for b in batches.values()),
            "fold_caches_shared": sum(
                b.stats.fold_caches_shared for b in batches.values()
            ),
            "speedup": round(singles_s / batch_s, 3) if batch_s else 0.0,
            "vs_single": round(vs_single, 3),
            "target_met": bool(vs_single < 2.0),
            "identical": identical,
        }
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
        clear_caches()
        shutil.rmtree(tmp, ignore_errors=True)


#: Workload basket for the windowed stitch/sampled gates: one FP kernel
#: and one branchy recursive workload, mirroring the batch basket, at a
#: fixed small scale so the oracle + stitched + sampled triple stays
#: CI-cheap in both bench modes.
WINDOWED_GATE_WORKLOADS = ("mm", "towers")
WINDOWED_GATE_SCALE = 0.3

#: Huge-tier workload for the windowed speedup measurement: only the
#: windowed/sampled paths can run the huge tier through ``run_core``,
#: so the serial baseline drives the core directly over the same trace.
WINDOWED_HUGE_WORKLOAD = "huge-walk"
WINDOWED_HUGE_SCALE = 0.5

#: Sampled-mode acceptance bound: the extrapolated TMA level-1 fraction
#: of every top-level slot must sit within this absolute error of the
#: full-run oracle on the gate basket.  The basket's small
#: phase-heterogeneous traces are sampling's worst case (mm's init
#: loops vs. FP kernel score ~0.11 on the retiring slot,
#: deterministically); huge-tier traces land well under 0.02.  A broken
#: extrapolation (wrong coverage factor, dropped spans) lands far past
#: the bound.
SAMPLED_ERROR_BOUND = 0.15


def _bench_windowed(workers: int) -> Dict[str, float]:
    """Windowed engine: stitch-identity gate, sampled error, speedup.

    Three measurements against an isolated cache (``use_cache=False``
    throughout, so every run pays full simulation):

    - ``stitch_ok`` (hard gate): exact-mode windowed runs on the gate
      basket, stitched and checked against the ``run_core`` oracle with
      :func:`~repro.cores.windowed.assert_stitch_equivalent` at the
      calibrated ``GATE_WARMUP`` — bit-identical per-instruction
      counters, retire counters within the documented edge slack,
      everything else inside the calibrated tolerance.
    - ``sampled.error`` (hard gate via ``sampled_ok``): sampled-mode
      runs on the same basket; the worst absolute TMA level-1 slot
      deviation from the oracle must stay under
      :data:`SAMPLED_ERROR_BOUND`, and every sampled result must carry
      the ``sampled=True`` label and per-slot error bars.
    - ``speedup``: a huge-tier trace simulated serially (driving the
      core directly — ``run_core`` refuses huge workloads outside the
      windowed paths) vs. ``run_windowed`` with ``workers`` processes.
      Like the pool sections, raw speedup is a property of the runner's
      core count (exact mode on 1 CPU legitimately scores < 1.0 — it
      pays ``(K-1) * warmup`` extra instructions with no parallelism to
      hide them), so the gated ratio is per-core ``efficiency`` and
      ``target_met`` records the honest verdict alongside
      ``effective_cores``.  ``sampled_speedup`` shows the other lever:
      coverage-scaled sampling beats serial even on one core.
    """
    from ..core.tma import TOP_LEVEL, compute_tma
    from ..cores.rocket import RocketCore
    from ..cores.windowed import GATE_WARMUP, assert_stitch_equivalent, run_windowed
    from .tma_tool import run_core

    windows = 4
    saved = os.environ.get("REPRO_CACHE_DIR")
    tmp = tempfile.mkdtemp(prefix="repro-bench-windowed-")
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        clear_caches()
        stitch_ok = True
        stitch_error = ""
        sampled_errors: List[float] = []
        sampled_labeled = True
        for name in WINDOWED_GATE_WORKLOADS:
            oracle = run_core(name, ROCKET, scale=WINDOWED_GATE_SCALE, use_cache=False)
            stitched = run_windowed(
                name,
                ROCKET,
                windows=windows,
                scale=WINDOWED_GATE_SCALE,
                warmup=GATE_WARMUP,
                use_cache=False,
                workers=1,
            )
            try:
                assert_stitch_equivalent(stitched, oracle, windows)
            except AssertionError as exc:
                stitch_ok = False
                stitch_error = f"{name}: {exc}"
            sampled = run_windowed(
                name,
                ROCKET,
                windows=windows,
                scale=WINDOWED_GATE_SCALE,
                sampled=True,
                use_cache=False,
                workers=1,
            )
            bars = bool((sampled.windowed or {}).get("error_bars"))
            sampled_labeled = sampled_labeled and bool(sampled.sampled) and bars
            oracle_tma = compute_tma(oracle)
            sampled_tma = compute_tma(sampled)
            worst = max(
                abs(sampled_tma.fraction(slot) - oracle_tma.fraction(slot))
                for slot in TOP_LEVEL
            )
            sampled_errors.append(worst)
        sampled_error = max(sampled_errors)
        sampled_ok = bool(sampled_labeled and sampled_error <= SAMPLED_ERROR_BOUND)

        # Speedup on the huge tier: serial core drive vs. windowed pool.
        trace = build_trace(WINDOWED_HUGE_WORKLOAD, scale=WINDOWED_HUGE_SCALE)
        start = time.perf_counter()
        serial_result = RocketCore(ROCKET).run(trace)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        exact = run_windowed(
            WINDOWED_HUGE_WORKLOAD,
            ROCKET,
            windows=windows,
            scale=WINDOWED_HUGE_SCALE,
            use_cache=False,
            workers=workers,
        )
        exact_s = time.perf_counter() - start

        start = time.perf_counter()
        sampled_huge = run_windowed(
            WINDOWED_HUGE_WORKLOAD,
            ROCKET,
            windows=windows,
            scale=WINDOWED_HUGE_SCALE,
            sampled=True,
            use_cache=False,
            workers=workers,
        )
        sampled_s = time.perf_counter() - start

        speedup = serial_s / exact_s if exact_s else 0.0
        sampled_speedup = serial_s / sampled_s if sampled_s else 0.0
        effective_cores = max(1, min(workers, os.cpu_count() or 1))
        efficiency = speedup / effective_cores
        coverage = (sampled_huge.windowed or {}).get("coverage", 0.0)
        rel_err = 0.0
        if serial_result.cycles:
            rel_err = abs(exact.cycles - serial_result.cycles) / serial_result.cycles
        return {
            "workloads": len(WINDOWED_GATE_WORKLOADS),
            "windows": windows,
            "gate_warmup": GATE_WARMUP,
            "workers": workers,
            "effective_cores": effective_cores,
            "stitch_ok": stitch_ok,
            "stitch_error": stitch_error,
            "huge_workload": WINDOWED_HUGE_WORKLOAD,
            "huge_instructions": len(trace),
            "huge_cycles_rel_err": round(rel_err, 6),
            "serial_wall_s": round(serial_s, 4),
            "windowed_wall_s": round(exact_s, 4),
            "sampled_wall_s": round(sampled_s, 4),
            "speedup": round(speedup, 3),
            "efficiency": round(efficiency, 3),
            "target_met": bool(efficiency >= 0.70),
            "sampled_speedup": round(sampled_speedup, 3),
            "sampled_coverage": round(coverage, 4),
            "sampled": {
                "error": round(sampled_error, 6),
                "bound": SAMPLED_ERROR_BOUND,
                "labeled": bool(sampled_labeled),
                "sampled_ok": sampled_ok,
            },
        }
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
        clear_caches()
        shutil.rmtree(tmp, ignore_errors=True)


def _dyninst_digest(inst) -> Tuple:
    """Every committed field of one dynamic instruction."""
    return (
        inst.index,
        inst.pc,
        inst.cls,
        inst.dest,
        inst.srcs,
        inst.latency,
        inst.next_pc,
        inst.mnemonic,
        inst.mem_addr,
        inst.mem_width,
        inst.is_load,
        inst.is_store,
        inst.is_branch,
        inst.taken,
        inst.is_fence,
        inst.csr,
        inst.csr_write,
    )


def _traces_identical(a, b) -> bool:
    """Bit-identical committed-path equality of two trace objects."""
    if (
        len(a) != len(b)
        or a.exit_code != b.exit_code
        or a.halt_reason != b.halt_reason
        or list(a.final_int_regs) != list(b.final_int_regs)
    ):
        return False
    return all(_dyninst_digest(x) == _dyninst_digest(y) for x, y in zip(a, b))


def _bench_functional(
    workloads: Sequence[str],
    scale: float,
) -> Dict[str, float]:
    """Functional layer: interpreted oracle vs. closure-compiled engine.

    Both engines execute the same assembled programs directly (no
    memoization), so the ratio isolates the executor itself.  The
    compiled pass includes ``compile_program`` time — that is what a
    cold run actually pays.  ``identical`` is a full bit-identical
    comparison of every committed dynamic instruction.
    """
    programs = [build_program(name, scale=scale) for name in workloads]

    start = time.perf_counter()
    interpreted = [execute(program) for program in programs]
    interpreted_s = time.perf_counter() - start

    start = time.perf_counter()
    compiled = [execute_compiled(program) for program in programs]
    compiled_s = time.perf_counter() - start

    identical = all(_traces_identical(i, c) for i, c in zip(interpreted, compiled))
    instructions = sum(len(trace) for trace in interpreted)
    return {
        "workloads": len(workloads),
        "instructions": instructions,
        "interpreted_wall_s": round(interpreted_s, 4),
        "compiled_wall_s": round(compiled_s, 4),
        "interpreted_runs_per_s": round(len(workloads) / interpreted_s, 3),
        "compiled_runs_per_s": round(len(workloads) / compiled_s, 3),
        "interpreted_kinst_per_s": round(instructions / interpreted_s / 1e3, 1),
        "compiled_kinst_per_s": round(instructions / compiled_s / 1e3, 1),
        "speedup": round(interpreted_s / compiled_s, 3),
        "identical": identical,
    }


def _bench_trace_cache(
    workloads: Sequence[str],
    scale: float,
) -> Dict[str, float]:
    """Memoization tiers: cold execute, warm disk reload, warm memory.

    Runs against an isolated temporary cache directory so the numbers
    are reproducible regardless of what earlier sections (or earlier
    bench runs) left in the real cache.
    """
    saved = os.environ.get("REPRO_CACHE_DIR")
    tmp = tempfile.mkdtemp(prefix="repro-bench-traces-")
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        clear_caches()
        start = time.perf_counter()
        for name in workloads:
            build_trace(name, scale=scale)
        cold_s = time.perf_counter() - start
        cold = trace_cache.stats()

        trace_cache.clear_memory()  # keep the disk tier, drop memory
        start = time.perf_counter()
        for name in workloads:
            build_trace(name, scale=scale)
        disk_s = time.perf_counter() - start
        disk = trace_cache.stats()

        start = time.perf_counter()
        for name in workloads:
            build_trace(name, scale=scale)
        mem_s = time.perf_counter() - start
        warm = trace_cache.stats_delta(disk)

        # Hit rate over the two warm passes (disk reload + memory); the
        # cold pass is by definition all misses and not counted.  The
        # clear_memory() between cold and disk passes zeroed the
        # counters, so `disk` covers exactly the disk pass.
        warm_hits = (
            disk["disk_hits"]
            + disk["mem_hits"]
            + warm["mem_hits"]
            + warm["disk_hits"]
        )
        warm_misses = disk["misses"] + warm["misses"]
        warm_lookups = warm_hits + warm_misses
        return {
            "workloads": len(workloads),
            "cold_wall_s": round(cold_s, 4),
            "disk_wall_s": round(disk_s, 4),
            "mem_wall_s": round(mem_s, 4),
            "cold_misses": cold["misses"],
            "disk_hits": disk["disk_hits"],
            "mem_hits": warm["mem_hits"],
            "trace_cache_hit_rate": (
                round(warm_hits / warm_lookups, 3) if warm_lookups else 0.0
            ),
            "disk_speedup": round(cold_s / disk_s, 3) if disk_s else 0.0,
            "mem_speedup": round(cold_s / mem_s, 3) if mem_s else 0.0,
        }
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
        clear_caches()
        shutil.rmtree(tmp, ignore_errors=True)


def _bench_parallel(
    workloads: Sequence[str],
    scale: float,
    workers: int,
) -> Dict[str, float]:
    """Sweep the grid serially and in parallel; compare wall clock.

    Caching is off for both so every pair pays the full simulation on
    both sides; merged results must be identical regardless of engine.
    """
    configs = [ROCKET]

    def make_runner() -> ResilientRunner:
        harness = PerfHarness(core="rocket")
        return ResilientRunner(harness=harness, scale=scale, use_cache=False)

    start = time.perf_counter()
    serial_engine = ParallelSweepRunner(runner=make_runner(), max_workers=1)
    serial = serial_engine.run_grid(workloads, configs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pool_engine = ParallelSweepRunner(runner=make_runner(), max_workers=workers)
    parallel = pool_engine.run_grid(workloads, configs)
    parallel_s = time.perf_counter() - start

    serial_digests = [_outcome_digest(o) for o in serial.outcomes]
    parallel_digests = [_outcome_digest(o) for o in parallel.outcomes]
    identical = serial_digests == parallel_digests
    runs = len(serial.outcomes)
    speedup = serial_s / parallel_s
    # Per-core efficiency normalizes by the cores the workers can
    # actually occupy, so the metric is comparable across runners: 4
    # workers on 1 core should score ~1.0 (no useless overhead), and 4
    # workers on >=4 cores should score speedup/4.
    effective_cores = max(1, min(workers, os.cpu_count() or 1))
    return {
        "runs": runs,
        "workers": workers,
        "effective_cores": effective_cores,
        "engine": parallel.engine,
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "serial_runs_per_s": round(runs / serial_s, 3),
        "parallel_runs_per_s": round(runs / parallel_s, 3),
        "speedup": round(speedup, 3),
        "efficiency": round(speedup / effective_cores, 3),
        "identical": identical,
    }


def _bench_multicore(scale: float) -> Dict:
    """Multicore interference scenario: wall clock + attribution checks.

    Runs ``noisy-neighbor`` fresh through the lockstep harness and
    records the victim's neighbor-induced attribution (deterministic —
    the turnstile serializes cycles), plus two identity checks the gate
    enforces: Memory-Bound conservation (``self + neighbor ==
    mem_bound`` exactly on every core) and the solo-equivalence oracle
    (one active core through the full uncore + turnstile stack must be
    bit-identical to the single-core pipeline).
    """
    from ..multicore import CoreSlot, Scenario, get_scenario, run_scenario
    from .tma_tool import run_core

    scenario = get_scenario("noisy-neighbor").with_overrides(scale=scale)
    start = time.perf_counter()
    result = run_scenario(scenario)
    wall = time.perf_counter() - start

    conserved = True
    for core in result.cores:
        attribution = core.attribution
        if (attribution.self_share + attribution.neighbor_share
                != attribution.mem_bound):
            conserved = False
        if abs(sum(core.tma.level1.values()) - 1.0) > 1e-9:
            conserved = False
    victim = result.core_at(0)
    aggressor = result.core_at(1)

    solo_scenario = Scenario(
        name="bench-solo", description="solo-equivalence oracle",
        slots=(CoreSlot("median", "rocket"), CoreSlot("idle", "rocket")),
        scale=scale)
    lockstep = run_scenario(solo_scenario, force_lockstep=True).core_at(0)
    solo = run_core("median", ROCKET, scale=scale, use_cache=False)
    solo_identical = (
        lockstep.result.cycles == solo.cycles
        and lockstep.result.instret == solo.instret
        and astuple(lockstep.result.l1d_stats) == astuple(solo.l1d_stats)
        and astuple(lockstep.result.l2_stats) == astuple(solo.l2_stats)
        and lockstep.attribution.neighbor_share == 0.0)

    total_cycles = sum(c.result.cycles for c in result.cores)
    return {
        "scenario": scenario.name,
        "scale": scale,
        "cores": len(result.cores),
        "wall_s": round(wall, 4),
        "lockstep_cycles": result.cycles,
        "kcycles_per_s": round(total_cycles / wall / 1e3, 1),
        "victim_neighbor_fraction": round(
            victim.attribution.neighbor_fraction, 6),
        "aggressor_bandwidth_share": round(aggressor.bandwidth_share, 6),
        "conserved": conserved,
        "solo_identical": solo_identical,
    }


#: Job mix for the sharded-service section: a small duplicate-heavy
#: burst (75% duplicates) mirroring the shard-smoke gate at
#: bench-cheap scales.
SHARD_BENCH_WORKLOADS = ("vvadd", "median", "qsort", "towers")
SHARD_BENCH_SCALES = (0.15, 0.2)
SHARD_BENCH_REPEATS = 4
SHARD_BENCH_SHARDS = 3


def _bench_shard(workers: int) -> Dict:
    """Routed cluster throughput vs. an equal-worker single node.

    Boots three in-process shard services (thread executors) behind
    the consistent-hash gateway, pushes a duplicate-heavy burst
    through ``Gateway.submit_payload``, and measures routed wall clock
    against the same burst on one single-node service holding the same
    total worker count — each side against its own isolated store.

    ``vs_single`` (``routed_wall / single_wall``) is the acceptance
    target (< 2.0): the routing tier — key hashing, HTTP hops to the
    shards, route bookkeeping — must cost less than 2x the single
    process it replaces on any runner; with real cores behind the
    shards it lands under 1.0, so like ``parallel.speedup`` the ratio
    is recorded with ``target_met`` + ``effective_cores`` rather than
    gated across heterogeneous runners.  ``identical`` compares every
    routed result document to the single-node one (modulo
    cache/attempt provenance); ``dedup_exact`` asserts live executions
    never exceeded the unique analyses.
    """
    from ..service import (
        Gateway,
        TMAService,
        make_shard_service,
        serve_in_thread,
    )
    from ..service.job import TMAJob

    per_shard = max(1, workers // SHARD_BENCH_SHARDS)
    total_workers = SHARD_BENCH_SHARDS * per_shard
    unique = [
        {"workload": name, "config": "rocket", "scale": scale}
        for name in SHARD_BENCH_WORKLOADS
        for scale in SHARD_BENCH_SCALES
    ]
    burst = [
        unique[i % len(unique)]
        for i in range(len(unique) * SHARD_BENCH_REPEATS)
    ]
    capacity = max(64, len(burst))

    def _poll(status: Callable[[str], Optional[Dict]], ids: List[str]) -> Dict:
        results: Dict[str, Dict] = {}
        pending = set(ids)
        deadline = time.time() + 240.0
        while pending and time.time() < deadline:
            for job_id in list(pending):
                record = status(job_id)
                if record is None:
                    raise RuntimeError(f"job {job_id} vanished mid-bench")
                if record.get("degraded"):
                    continue
                state = record["state"]
                if state == "done":
                    results[job_id] = record["result"]
                    pending.discard(job_id)
                elif state not in ("queued", "running"):
                    raise RuntimeError(f"job {job_id} ended {state}")
            if pending:
                time.sleep(0.01)
        if pending:
            raise RuntimeError(f"{len(pending)} jobs never finished")
        return results

    def _canonical(result: Dict) -> Dict:
        return {
            key: value
            for key, value in result.items()
            if key not in ("from_cache", "attempts")
        }

    saved = os.environ.get("REPRO_CACHE_DIR")
    cluster_tmp = tempfile.mkdtemp(prefix="repro-bench-shard-")
    single_tmp = tempfile.mkdtemp(prefix="repro-bench-single-")
    os.environ["REPRO_CACHE_DIR"] = cluster_tmp
    shards: List = []
    servers: List = []
    try:
        clear_caches()
        urls = {}
        for index in range(SHARD_BENCH_SHARDS):
            shard_id = f"s{index + 1}"
            service = make_shard_service(
                shard_id,
                workers=per_shard,
                executor="thread",
                queue_capacity=capacity,
            ).start()
            server, _thread = serve_in_thread(service)
            shards.append(service)
            servers.append(server)
            urls[shard_id] = f"http://127.0.0.1:{server.server_address[1]}"
        gateway = Gateway(
            ",".join(f"{sid}={url}" for sid, url in sorted(urls.items()))
        )

        start = time.perf_counter()
        receipts = [gateway.submit_payload(dict(body)) for body in burst]
        routed = _poll(gateway.status, [r["id"] for r in receipts])
        routed_s = time.perf_counter() - start
        executed = sum(
            service.metrics.counter("jobs_executed") for service in shards
        )

        for service in shards:
            service.drain()
        for server in servers:
            server.shutdown()
            server.server_close()
        shards, servers = [], []

        os.environ["REPRO_CACHE_DIR"] = single_tmp
        clear_caches()
        single = TMAService(
            workers=total_workers, executor="thread", queue_capacity=capacity
        ).start()
        try:
            start = time.perf_counter()
            ids = [single.submit_payload(dict(body)).record.id for body in burst]
            single_results = _poll(single.status, ids)
            single_s = time.perf_counter() - start
        finally:
            single.drain()

        single_by_key = {
            TMAJob.from_payload(dict(body)).job_key(): single_results[job_id]
            for body, job_id in zip(burst, ids)
        }
        identical = all(
            _canonical(routed[receipt["id"]])
            == _canonical(single_by_key[TMAJob.from_payload(dict(body)).job_key()])
            for receipt, body in zip(receipts, burst)
        )

        jobs = len(burst)
        vs_single = routed_s / single_s if single_s else 0.0
        effective_cores = max(1, min(total_workers, os.cpu_count() or 1))
        return {
            "jobs": jobs,
            "unique": len(unique),
            "shards": SHARD_BENCH_SHARDS,
            "workers_per_shard": per_shard,
            "total_workers": total_workers,
            "effective_cores": effective_cores,
            "executed": executed,
            "dedup_exact": bool(executed <= len(unique)),
            "routed_wall_s": round(routed_s, 4),
            "routed_jobs_per_s": round(jobs / routed_s, 3),
            "single_wall_s": round(single_s, 4),
            "single_jobs_per_s": round(jobs / single_s, 3),
            "vs_single": round(vs_single, 3),
            "target_met": bool(vs_single < 2.0),
            "identical": identical,
        }
    finally:
        for service in shards:
            try:
                service.drain()
            except Exception:
                pass
        for server in servers:
            server.shutdown()
            server.server_close()
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
        clear_caches()
        shutil.rmtree(cluster_tmp, ignore_errors=True)
        shutil.rmtree(single_tmp, ignore_errors=True)


def run_benchmarks(
    quick: bool = False,
    workers: Optional[int] = None,
    inject_slowdown: float = 0.0,
) -> Dict:
    """Run the tier-2 set and return the ``BENCH_*.json`` payload.

    ``workers`` defaults to 4 — the acceptance point for sweep scaling
    — even on smaller machines; efficiency is normalized by the cores
    the workers can actually occupy.
    """
    workers = workers or 4
    if quick:
        workloads: Sequence[str] = QUICK_WORKLOADS
    else:
        workloads = workload_names("micro")
    scale = 1.0
    return {
        "bench": "tier-2",
        "mode": "quick" if quick else "full",
        "scale": scale,
        "fingerprint": _fingerprint(),
        "functional": _bench_functional(workloads, scale),
        "trace_cache": _bench_trace_cache(workloads, scale),
        "fastpath": _bench_fastpath(workloads, scale, inject_slowdown),
        "timing": _bench_timing(scale, workers),
        "parallel": _bench_parallel(workloads, scale, workers),
        # Fixed small scale: the lockstep harness serializes cycles
        # across cores, so the section stays CI-cheap at any mode.
        "multicore": _bench_multicore(0.3),
        # Fixed small basket: the routed-vs-single ratio is about the
        # service tier, not the simulator, so it stays CI-cheap too.
        "service": {"shard": _bench_shard(workers)},
    }


# ----------------------------------------------------------------------
# Regression gate


def _lookup(payload: Dict, path: str) -> Optional[float]:
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def compare_benchmarks(
    current: Dict,
    baseline: Dict,
    threshold: float = 0.20,
    timing: bool = True,
) -> List[str]:
    """Gate *current* against *baseline*; returns regression messages.

    A gated ratio metric regresses when it falls more than *threshold*
    below the baseline value.  Improvements and missing baseline
    metrics never fail; a non-identical parallel merge always fails.
    The ``parallel.*`` ratios are only compared when both snapshots ran
    on the same effective core count — per-core efficiency measured on
    1 core and on 4 cores are different quantities, and comparing them
    across heterogeneous runners would manufacture regressions.  Pass
    ``timing=False`` to skip the ratio comparisons entirely (a profiled
    run distorts wall-clock ratios); the identity checks still apply.
    """
    current_cores = _lookup(current, "parallel.effective_cores")
    baseline_cores = _lookup(baseline, "parallel.effective_cores")
    cores_match = current_cores == baseline_cores
    problems: List[str] = []
    per_core_paths = ("parallel.", "timing.windowed.")
    for path in GATED_METRICS if timing else ():
        if path.startswith(per_core_paths) and not cores_match:
            continue
        base = _lookup(baseline, path)
        cur = _lookup(current, path)
        if base is None or cur is None or base <= 0:
            continue
        floor = base * (1.0 - threshold)
        if cur < floor:
            problems.append(
                f"{path}: {cur:.3f} < {floor:.3f} "
                f"(baseline {base:.3f}, threshold {threshold:.0%})"
            )
    if not current.get("parallel", {}).get("identical", True):
        problems.append(
            "parallel.identical: parallel and serial sweeps "
            "merged to different results"
        )
    if not current.get("functional", {}).get("identical", True):
        problems.append(
            "functional.identical: compiled and interpreted executors "
            "produced different traces"
        )
    if not current.get("timing", {}).get("identical", True):
        problems.append(
            "timing.identical: columnar and object timing engines "
            "produced different CoreResults"
        )
    windowed = current.get("timing", {}).get("windowed", {})
    if not windowed.get("stitch_ok", True):
        problems.append(
            "timing.windowed.stitch_ok: stitched window totals diverged "
            f"from the run_core oracle ({windowed.get('stitch_error', '')})"
        )
    if not windowed.get("sampled", {}).get("sampled_ok", True):
        problems.append(
            "timing.windowed.sampled_ok: sampled-mode extrapolation "
            f"error {windowed.get('sampled', {}).get('error')} exceeded "
            f"the {windowed.get('sampled', {}).get('bound')} bound "
            "(or results lost the sampled label / error bars)"
        )
    multicore = current.get("multicore", {})
    if not multicore.get("solo_identical", True):
        problems.append(
            "multicore.solo_identical: one core through the shared "
            "uncore + turnstile diverged from the single-core pipeline"
        )
    if not multicore.get("conserved", True):
        problems.append(
            "multicore.conserved: self + neighbor attribution no "
            "longer sums exactly to the Memory-Bound slots"
        )
    shard = current.get("service", {}).get("shard", {})
    if not shard.get("identical", True):
        problems.append(
            "service.shard.identical: routed cluster results diverged "
            "from the single-node service"
        )
    if not shard.get("dedup_exact", True):
        problems.append(
            "service.shard.dedup_exact: cluster executions exceeded "
            "the unique analyses (exact dedup lost)"
        )
    # Attribution stability: the split is deterministic, so against a
    # same-model baseline it should be unchanged; large drift means a
    # model change that must be acknowledged with a new baseline.
    base_fraction = _lookup(baseline, "multicore.victim_neighbor_fraction")
    cur_fraction = _lookup(current, "multicore.victim_neighbor_fraction")
    if base_fraction is not None and cur_fraction is not None:
        drift = abs(cur_fraction - base_fraction)
        if drift > max(0.02, 0.5 * base_fraction):
            problems.append(
                f"multicore.victim_neighbor_fraction: {cur_fraction:.4f} "
                f"drifted from baseline {base_fraction:.4f}"
            )
    return problems


def find_baseline(output: str, root: str = ".") -> Optional[str]:
    """Newest committed ``BENCH_*.json`` other than *output* itself."""
    output_abs = os.path.abspath(output)
    candidates = [
        path
        for path in glob.glob(os.path.join(root, "BENCH_*.json"))
        if os.path.abspath(path) != output_abs
    ]

    def pr_number(path: str) -> int:
        match = re.search(r"(\d+)", os.path.basename(path))
        return int(match.group(1)) if match else -1

    candidates.sort(key=pr_number)
    return candidates[-1] if candidates else None


def render_payload(payload: Dict) -> str:
    fast = payload["fastpath"]
    par = payload["parallel"]
    lines = [
        f"tier-2 bench [{payload['mode']}] scale={payload['scale']} "
        f"python={payload['fingerprint']['python']} "
        f"cpus={payload['fingerprint']['cpus']}",
    ]
    fn = payload.get("functional")
    if fn:
        lines.append(
            f"  functional: {fn['workloads']} workloads "
            f"({fn['instructions']} insts)  "
            f"interp {fn['interpreted_wall_s']:.2f}s "
            f"({fn['interpreted_kinst_per_s']:.0f} kinst/s)  "
            f"compiled {fn['compiled_wall_s']:.2f}s "
            f"({fn['compiled_kinst_per_s']:.0f} kinst/s)  "
            f"speedup {fn['speedup']:.2f}x  "
            f"identical={fn['identical']}"
        )
    tc = payload.get("trace_cache")
    if tc:
        lines.append(
            f"  trace_cache: cold {tc['cold_wall_s']:.2f}s  "
            f"disk {tc['disk_wall_s']:.2f}s  "
            f"mem {tc['mem_wall_s']:.2f}s  "
            f"warm hit rate {tc['trace_cache_hit_rate']:.2f}"
        )
    lines += [
        f"  fastpath: {fast['workloads']} rocket fig7 runs  "
        f"traced {fast['traced_wall_s']:.2f}s "
        f"({fast['traced_runs_per_s']:.1f}/s)  "
        f"fast {fast['fast_wall_s']:.2f}s "
        f"({fast['fast_runs_per_s']:.1f}/s)  "
        f"speedup {fast['speedup']:.2f}x",
    ]
    timing = payload.get("timing")
    if timing:
        for core_key in ("rocket", "boom_large"):
            section = timing[core_key]
            lines.append(
                f"  timing[{core_key}]: {section['workloads']} workloads  "
                f"objects {section['objects_wall_s']:.2f}s "
                f"({section['objects_kcycles_per_s']:.0f} kcyc/s)  "
                f"columnar {section['columnar_wall_s']:.2f}s "
                f"({section['columnar_kcycles_per_s']:.0f} kcyc/s)  "
                f"speedup {section['speedup']:.2f}x  "
                f"identical={section['identical']}"
            )
        batch = timing.get("batch")
        if batch:
            lines.append(
                f"  timing[batch]: grid-of-{batch['points']} x "
                f"{batch['workloads']} workloads  "
                f"singles {batch['singles_wall_s']:.2f}s  "
                f"batch {batch['batch_wall_s']:.2f}s "
                f"(speedup {batch['speedup']:.2f}x)  "
                f"pool[{batch['workers']}] {batch['pool_wall_s']:.2f}s "
                f"(vs_single {batch['vs_single']:.2f}x, "
                f"target_met={batch['target_met']})  "
                f"identical={batch['identical']}"
            )
        windowed = timing.get("windowed")
        if windowed:
            sampled = windowed["sampled"]
            lines.append(
                f"  timing[windowed]: {windowed['huge_workload']} "
                f"({windowed['huge_instructions']} insts) x "
                f"{windowed['windows']} windows  "
                f"serial {windowed['serial_wall_s']:.2f}s  "
                f"windowed[{windowed['workers']}] "
                f"{windowed['windowed_wall_s']:.2f}s "
                f"(speedup {windowed['speedup']:.2f}x, "
                f"efficiency {windowed['efficiency']:.2f}, "
                f"target_met={windowed['target_met']})  "
                f"sampled {windowed['sampled_wall_s']:.2f}s "
                f"({windowed['sampled_speedup']:.2f}x at "
                f"{windowed['sampled_coverage']:.0%} coverage)  "
                f"stitch_ok={windowed['stitch_ok']}  "
                f"sampled_err={sampled['error']:.4f} "
                f"(ok={sampled['sampled_ok']})"
            )
    lines += [
        f"  parallel: {par['runs']} sweep pairs  "
        f"serial {par['serial_wall_s']:.2f}s  "
        f"{par['workers']} workers {par['parallel_wall_s']:.2f}s  "
        f"speedup {par['speedup']:.2f}x  "
        f"efficiency {par['efficiency']:.2f}  "
        f"identical={par['identical']} engine={par['engine']}",
    ]
    multicore = payload.get("multicore")
    if multicore:
        lines.append(
            f"  multicore: {multicore['scenario']} x{multicore['cores']} "
            f"scale={multicore['scale']}  "
            f"{multicore['lockstep_cycles']} lockstep cycles in "
            f"{multicore['wall_s']:.2f}s "
            f"({multicore['kcycles_per_s']:.0f} kcyc/s)  "
            f"victim nbr {multicore['victim_neighbor_fraction']:.4f}  "
            f"conserved={multicore['conserved']} "
            f"solo_identical={multicore['solo_identical']}"
        )
    shard = payload.get("service", {}).get("shard")
    if shard:
        lines.append(
            f"  service[shard]: {shard['jobs']} jobs "
            f"({shard['unique']} unique) x {shard['shards']} shards  "
            f"routed {shard['routed_wall_s']:.2f}s "
            f"({shard['routed_jobs_per_s']:.1f}/s)  "
            f"single[{shard['total_workers']}] "
            f"{shard['single_wall_s']:.2f}s "
            f"({shard['single_jobs_per_s']:.1f}/s)  "
            f"vs_single {shard['vs_single']:.2f}x "
            f"(target_met={shard['target_met']})  "
            f"dedup_exact={shard['dedup_exact']} "
            f"identical={shard['identical']}"
        )
    return "\n".join(lines)


def write_payload(payload: Dict, output: str) -> None:
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
