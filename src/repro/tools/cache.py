"""Disk cache for core-model runs.

Cycle-level simulation is the expensive step of the pipeline, so results
are cached as JSON keyed by (workload, scale, config, model fingerprint).
The fingerprint hashes the source of every module that influences timing,
so editing the simulator invalidates stale results automatically.

Integrity: every entry written by :func:`store` embeds a checksum of its
payload, so silent on-disk corruption (a flipped byte that is still
valid JSON) is detectable.  :func:`load` treats any unreadable, corrupt,
or checksum-failing entry as a miss; :func:`verify_entry` classifies the
same conditions strictly, raising
:class:`~repro.isa.errors.CacheIntegrityError` so the resilient runner
can quarantine poisoned entries (verify, delete, re-run) instead of
serving them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..cores.base import BoomConfig, CoreResult, RocketConfig
from ..isa.errors import CacheIntegrityError
from ..uarch.branch import PredictorStats
from ..uarch.cache import CacheStats

_CACHE_ENV = "REPRO_CACHE_DIR"
_DEFAULT_CACHE = Path(__file__).resolve().parents[3] / ".cache" / "results"

_FINGERPRINT_MODULES = (
    "repro.isa.executor", "repro.isa.assembler", "repro.isa.instructions",
    "repro.uarch.cache", "repro.uarch.branch", "repro.uarch.tlb",
    "repro.cores.base", "repro.cores.rocket.core", "repro.cores.boom.core",
    "repro.workloads.micro", "repro.workloads.spec",
    "repro.workloads.casestudy", "repro.workloads.data",
)

_fingerprint_cache: Optional[str] = None


def model_fingerprint() -> str:
    """Hash of every timing-relevant module's source."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import importlib

        digest = hashlib.sha256()
        for module_name in _FINGERPRINT_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


def cache_dir() -> Path:
    return Path(os.environ.get(_CACHE_ENV, _DEFAULT_CACHE))


def _config_key(config: Union[RocketConfig, BoomConfig]) -> str:
    payload = asdict(config)
    return json.dumps(payload, sort_keys=True, default=str)


def cache_key(workload: str, scale: float,
              config: Union[RocketConfig, BoomConfig]) -> str:
    digest = hashlib.sha256()
    digest.update(model_fingerprint().encode())
    digest.update(workload.encode())
    digest.update(f"{scale:.6f}".encode())
    digest.update(_config_key(config).encode())
    return digest.hexdigest()[:24]


def _serialize(result: CoreResult) -> Dict[str, Any]:
    return {
        "workload": result.workload,
        "config_name": result.config_name,
        "core": result.core,
        "cycles": result.cycles,
        "instret": result.instret,
        "events": result.events,
        "lane_events": result.lane_events,
        "commit_width": result.commit_width,
        "issue_width": result.issue_width,
        "l1i_stats": asdict(result.l1i_stats),
        "l1d_stats": asdict(result.l1d_stats),
        "l2_stats": asdict(result.l2_stats),
        "predictor_stats": asdict(result.predictor_stats),
        "extra": result.extra,
    }


def _deserialize(payload: Dict[str, Any]) -> CoreResult:
    return CoreResult(
        workload=payload["workload"],
        config_name=payload["config_name"],
        core=payload["core"],
        cycles=payload["cycles"],
        instret=payload["instret"],
        events={k: int(v) for k, v in payload["events"].items()},
        lane_events={k: [int(x) for x in v]
                     for k, v in payload["lane_events"].items()},
        commit_width=payload["commit_width"],
        issue_width=payload["issue_width"],
        l1i_stats=CacheStats(**payload["l1i_stats"]),
        l1d_stats=CacheStats(**payload["l1d_stats"]),
        l2_stats=CacheStats(**payload["l2_stats"]),
        predictor_stats=PredictorStats(**payload["predictor_stats"]),
        extra=payload.get("extra", {}),
    )


#: Top-level key holding the payload checksum in on-disk entries.
_CHECKSUM_KEY = "__sha256__"


def entry_path(key: str) -> Path:
    """On-disk location of the entry for *key* (existing or not)."""
    return cache_dir() / f"{key}.json"


def _payload_checksum(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _read_verified(path: Path) -> Optional[CoreResult]:
    """Read + validate one entry; raises CacheIntegrityError on damage."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        # OSError: unreadable file; ValueError covers JSONDecodeError
        # plus truncated/garbled documents.
        raise CacheIntegrityError(
            f"unreadable cache entry {path.name}: {exc}",
            invariant="cache-readable", observed=str(exc)) from exc
    if not isinstance(document, dict):
        raise CacheIntegrityError(
            f"cache entry {path.name} is not a JSON object",
            invariant="cache-schema", observed=type(document).__name__)
    stored_sum = document.pop(_CHECKSUM_KEY, None)
    if stored_sum is not None:
        actual = _payload_checksum(document)
        if actual != stored_sum:
            raise CacheIntegrityError(
                f"cache entry {path.name} failed its checksum",
                invariant="cache-checksum",
                observed=actual, expected=stored_sum)
    try:
        return _deserialize(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheIntegrityError(
            f"cache entry {path.name} has a broken schema: {exc}",
            invariant="cache-schema", observed=str(exc)) from exc


def load(key: str) -> Optional[CoreResult]:
    path = entry_path(key)
    if not path.exists():
        return None
    try:
        return _read_verified(path)
    except CacheIntegrityError:
        return None  # treat corrupt entries as misses


def verify_entry(key: str) -> bool:
    """Strictly validate the entry for *key*.

    Returns ``False`` when no entry exists, ``True`` when the entry is
    present and intact, and raises
    :class:`~repro.isa.errors.CacheIntegrityError` when the entry is
    present but unreadable, checksum-failing, or schema-broken.
    """
    path = entry_path(key)
    if not path.exists():
        return False
    _read_verified(path)
    return True


def quarantine(key: str) -> bool:
    """Delete the (presumed poisoned) entry for *key*.

    Returns ``True`` when an entry was removed.  The caller re-runs the
    simulation to repopulate the slot.
    """
    path = entry_path(key)
    try:
        os.remove(path)
        return True
    except FileNotFoundError:
        return False


def store(key: str, result: CoreResult) -> None:
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    payload = _serialize(result)
    payload[_CHECKSUM_KEY] = _payload_checksum(payload)
    # Per-process tmp name: concurrent benchmark processes must not
    # clobber each other's in-flight writes before the atomic replace.
    tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            try:
                os.remove(tmp_path)
            except OSError:
                pass
