"""Disk cache for core-model runs.

Cycle-level simulation is the expensive step of the pipeline, so results
are cached as JSON keyed by (workload, scale, config, model fingerprint).
The fingerprint hashes the source of every module that influences timing,
so editing the simulator invalidates stale results automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..cores.base import BoomConfig, CoreResult, RocketConfig
from ..uarch.branch import PredictorStats
from ..uarch.cache import CacheStats

_CACHE_ENV = "REPRO_CACHE_DIR"
_DEFAULT_CACHE = Path(__file__).resolve().parents[3] / ".cache" / "results"

_FINGERPRINT_MODULES = (
    "repro.isa.executor", "repro.isa.assembler", "repro.isa.instructions",
    "repro.uarch.cache", "repro.uarch.branch", "repro.uarch.tlb",
    "repro.cores.base", "repro.cores.rocket.core", "repro.cores.boom.core",
    "repro.workloads.micro", "repro.workloads.spec",
    "repro.workloads.casestudy", "repro.workloads.data",
)

_fingerprint_cache: Optional[str] = None


def model_fingerprint() -> str:
    """Hash of every timing-relevant module's source."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import importlib

        digest = hashlib.sha256()
        for module_name in _FINGERPRINT_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


def cache_dir() -> Path:
    return Path(os.environ.get(_CACHE_ENV, _DEFAULT_CACHE))


def _config_key(config: Union[RocketConfig, BoomConfig]) -> str:
    payload = asdict(config)
    return json.dumps(payload, sort_keys=True, default=str)


def cache_key(workload: str, scale: float,
              config: Union[RocketConfig, BoomConfig]) -> str:
    digest = hashlib.sha256()
    digest.update(model_fingerprint().encode())
    digest.update(workload.encode())
    digest.update(f"{scale:.6f}".encode())
    digest.update(_config_key(config).encode())
    return digest.hexdigest()[:24]


def _serialize(result: CoreResult) -> Dict[str, Any]:
    return {
        "workload": result.workload,
        "config_name": result.config_name,
        "core": result.core,
        "cycles": result.cycles,
        "instret": result.instret,
        "events": result.events,
        "lane_events": result.lane_events,
        "commit_width": result.commit_width,
        "issue_width": result.issue_width,
        "l1i_stats": asdict(result.l1i_stats),
        "l1d_stats": asdict(result.l1d_stats),
        "l2_stats": asdict(result.l2_stats),
        "predictor_stats": asdict(result.predictor_stats),
        "extra": result.extra,
    }


def _deserialize(payload: Dict[str, Any]) -> CoreResult:
    return CoreResult(
        workload=payload["workload"],
        config_name=payload["config_name"],
        core=payload["core"],
        cycles=payload["cycles"],
        instret=payload["instret"],
        events={k: int(v) for k, v in payload["events"].items()},
        lane_events={k: [int(x) for x in v]
                     for k, v in payload["lane_events"].items()},
        commit_width=payload["commit_width"],
        issue_width=payload["issue_width"],
        l1i_stats=CacheStats(**payload["l1i_stats"]),
        l1d_stats=CacheStats(**payload["l1d_stats"]),
        l2_stats=CacheStats(**payload["l2_stats"]),
        predictor_stats=PredictorStats(**payload["predictor_stats"]),
        extra=payload.get("extra", {}),
    )


def load(key: str) -> Optional[CoreResult]:
    path = cache_dir() / f"{key}.json"
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return _deserialize(json.load(handle))
    except (json.JSONDecodeError, KeyError, TypeError):
        return None  # treat corrupt entries as misses


def store(key: str, result: CoreResult) -> None:
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    tmp_path = path.with_suffix(".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(_serialize(result), handle)
    os.replace(tmp_path, path)
