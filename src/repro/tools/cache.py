"""Disk cache for core-model runs.

Cycle-level simulation is the expensive step of the pipeline, so results
are cached as JSON keyed by (workload, scale, config, model fingerprint).
The fingerprint hashes the source of every module that influences timing,
so editing the simulator invalidates stale results automatically.

Integrity: every entry written by :func:`store` embeds a checksum of its
payload, so silent on-disk corruption (a flipped byte that is still
valid JSON) is detectable.  :func:`load` treats any unreadable, corrupt,
or checksum-failing entry as a miss; :func:`verify_entry` classifies the
same conditions strictly, raising
:class:`~repro.isa.errors.CacheIntegrityError` so the resilient runner
can quarantine poisoned entries (verify, delete, re-run) instead of
serving them.

Configuration is environment-driven so service instances and CI runs
can isolate their stores:

- ``REPRO_CACHE_DIR`` relocates the cache directory (:func:`cache_dir`);
- ``REPRO_CACHE_LIMIT_BYTES`` / ``REPRO_CACHE_LIMIT_ENTRIES`` bound the
  store's size — :func:`store` evicts least-recently-used entries
  (:func:`load` touches hits) until both limits hold, so the cache
  never grows without bound.  Unset limits mean unlimited, matching the
  historical behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..cores.base import BoomConfig, CoreResult, RocketConfig
from ..isa.errors import CacheIntegrityError
from ..uarch.branch import PredictorStats
from ..uarch.cache import CacheStats

_CACHE_ENV = "REPRO_CACHE_DIR"
_LIMIT_BYTES_ENV = "REPRO_CACHE_LIMIT_BYTES"
_LIMIT_ENTRIES_ENV = "REPRO_CACHE_LIMIT_ENTRIES"
_DEFAULT_CACHE = Path(__file__).resolve().parents[3] / ".cache" / "results"

_FINGERPRINT_MODULES = (
    "repro.isa.executor", "repro.isa.assembler", "repro.isa.instructions",
    "repro.uarch.cache", "repro.uarch.branch", "repro.uarch.tlb",
    "repro.cores.base", "repro.cores.rocket.core", "repro.cores.boom.core",
    "repro.cores.windowed",
    "repro.workloads.micro", "repro.workloads.spec",
    "repro.workloads.casestudy", "repro.workloads.data",
    "repro.workloads.huge",
)

_fingerprint_cache: Optional[str] = None


def model_fingerprint() -> str:
    """Hash of every timing-relevant module's source."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import importlib

        digest = hashlib.sha256()
        for module_name in _FINGERPRINT_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


def cache_dir() -> Path:
    """The store's directory (``REPRO_CACHE_DIR`` overrides the default)."""
    return Path(os.environ.get(_CACHE_ENV, _DEFAULT_CACHE))


def _env_limit(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def cache_limit_bytes() -> Optional[int]:
    """Byte budget from ``REPRO_CACHE_LIMIT_BYTES`` (None = unlimited)."""
    return _env_limit(_LIMIT_BYTES_ENV)


def cache_limit_entries() -> Optional[int]:
    """Entry budget from ``REPRO_CACHE_LIMIT_ENTRIES`` (None = unlimited)."""
    return _env_limit(_LIMIT_ENTRIES_ENV)


def _config_key(config: Union[RocketConfig, BoomConfig]) -> str:
    payload = asdict(config)
    return json.dumps(payload, sort_keys=True, default=str)


def cache_key(workload: str, scale: float,
              config: Union[RocketConfig, BoomConfig]) -> str:
    digest = hashlib.sha256()
    digest.update(model_fingerprint().encode())
    digest.update(workload.encode())
    digest.update(f"{scale:.6f}".encode())
    digest.update(_config_key(config).encode())
    return digest.hexdigest()[:24]


def windowed_cache_key(workload: str, scale: float,
                       config: Union[RocketConfig, BoomConfig],
                       windows: int, warmup: int,
                       sampled: bool) -> str:
    """Cache key for a windowed/sampled run of (workload, scale, config).

    Folds the window plan on top of :func:`cache_key` so a stitched (or
    extrapolated) result can never collide with the plain full-run
    entry, another window count, or the other mode — exact and sampled
    results live in distinct slots by construction.
    """
    digest = hashlib.sha256()
    digest.update(cache_key(workload, scale, config).encode())
    digest.update(
        f"windows={windows};warmup={warmup};sampled={int(sampled)}".encode())
    return digest.hexdigest()[:24]


def _serialize(result: CoreResult) -> Dict[str, Any]:
    return {
        "workload": result.workload,
        "config_name": result.config_name,
        "core": result.core,
        "cycles": result.cycles,
        "instret": result.instret,
        "events": result.events,
        "lane_events": result.lane_events,
        "commit_width": result.commit_width,
        "issue_width": result.issue_width,
        "l1i_stats": asdict(result.l1i_stats),
        "l1d_stats": asdict(result.l1d_stats),
        "l2_stats": asdict(result.l2_stats),
        "predictor_stats": asdict(result.predictor_stats),
        "extra": result.extra,
        "sampled": result.sampled,
        "windowed": result.windowed,
    }


def _deserialize(payload: Dict[str, Any]) -> CoreResult:
    return CoreResult(
        workload=payload["workload"],
        config_name=payload["config_name"],
        core=payload["core"],
        cycles=payload["cycles"],
        instret=payload["instret"],
        events={k: int(v) for k, v in payload["events"].items()},
        lane_events={k: [int(x) for x in v]
                     for k, v in payload["lane_events"].items()},
        commit_width=payload["commit_width"],
        issue_width=payload["issue_width"],
        l1i_stats=CacheStats(**payload["l1i_stats"]),
        l1d_stats=CacheStats(**payload["l1d_stats"]),
        l2_stats=CacheStats(**payload["l2_stats"]),
        predictor_stats=PredictorStats(**payload["predictor_stats"]),
        extra=payload.get("extra", {}),
        # Absent in pre-windowing entries: default to a plain exact run.
        sampled=bool(payload.get("sampled", False)),
        windowed=payload.get("windowed"),
    )


def serialize_result(result: CoreResult) -> Dict[str, Any]:
    """Public JSON codec for :class:`CoreResult` (checkpoints reuse it)."""
    return _serialize(result)


def deserialize_result(payload: Dict[str, Any]) -> CoreResult:
    """Inverse of :func:`serialize_result` (exact round-trip)."""
    return _deserialize(payload)


#: Top-level key holding the payload checksum in on-disk entries.
_CHECKSUM_KEY = "__sha256__"


def entry_path(key: str) -> Path:
    """On-disk location of the entry for *key* (existing or not)."""
    return cache_dir() / f"{key}.json"


def _payload_checksum(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _read_verified(path: Path) -> Optional[CoreResult]:
    """Read + validate one entry; raises CacheIntegrityError on damage."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        # OSError: unreadable file; ValueError covers JSONDecodeError
        # plus truncated/garbled documents.
        raise CacheIntegrityError(
            f"unreadable cache entry {path.name}: {exc}",
            invariant="cache-readable", observed=str(exc)) from exc
    if not isinstance(document, dict):
        raise CacheIntegrityError(
            f"cache entry {path.name} is not a JSON object",
            invariant="cache-schema", observed=type(document).__name__)
    stored_sum = document.pop(_CHECKSUM_KEY, None)
    if stored_sum is not None:
        actual = _payload_checksum(document)
        if actual != stored_sum:
            raise CacheIntegrityError(
                f"cache entry {path.name} failed its checksum",
                invariant="cache-checksum",
                observed=actual, expected=stored_sum)
    try:
        return _deserialize(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheIntegrityError(
            f"cache entry {path.name} has a broken schema: {exc}",
            invariant="cache-schema", observed=str(exc)) from exc


def load(key: str) -> Optional[CoreResult]:
    path = entry_path(key)
    if not path.exists():
        return None
    try:
        result = _read_verified(path)
    except CacheIntegrityError:
        return None  # treat corrupt entries as misses
    try:
        # Touch hits so size-bounded eviction is LRU rather than FIFO.
        os.utime(path)
    except OSError:
        pass
    return result


def verify_entry(key: str) -> bool:
    """Strictly validate the entry for *key*.

    Returns ``False`` when no entry exists, ``True`` when the entry is
    present and intact, and raises
    :class:`~repro.isa.errors.CacheIntegrityError` when the entry is
    present but unreadable, checksum-failing, or schema-broken.
    """
    path = entry_path(key)
    if not path.exists():
        return False
    _read_verified(path)
    return True


def quarantine(key: str) -> bool:
    """Delete the (presumed poisoned) entry for *key*.

    Returns ``True`` when an entry was removed.  The caller re-runs the
    simulation to repopulate the slot.
    """
    path = entry_path(key)
    try:
        os.remove(path)
        return True
    except FileNotFoundError:
        return False


def store(key: str, result: CoreResult) -> bool:
    """Write the entry for *key*; returns False when the write failed.

    A cache write is an optimization, never a correctness step: a full
    disk (ENOSPC), a permissions problem, or any other ``OSError``
    skips the write and the caller's run result is returned as normal.
    Payload bytes are routed through the chaos-injection disk seam so
    campaigns can exercise truncated/bit-flipped/ENOSPC writes; the
    embedded checksum is what makes those mangled entries *detectable*
    on the next read.
    """
    payload = _serialize(result)
    return _write_entry(key, payload)


def _write_entry(key: str, payload: Dict[str, Any]) -> bool:
    """Checksum, atomically write, and LRU-prune one entry document."""
    from ..chaos import injector as chaos

    payload = dict(payload)
    payload[_CHECKSUM_KEY] = _payload_checksum(
        {k: v for k, v in payload.items() if k != _CHECKSUM_KEY})
    data = json.dumps(payload).encode("utf-8")
    directory = cache_dir()
    path = directory / f"{key}.json"
    # Per-process tmp name: concurrent benchmark processes must not
    # clobber each other's in-flight writes before the atomic replace.
    tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
    try:
        data = chaos.mangle_write("result-cache", key, data)
        directory.mkdir(parents=True, exist_ok=True)
        with open(tmp_path, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except OSError:
        return False
    finally:
        if tmp_path.exists():
            try:
                os.remove(tmp_path)
            except OSError:
                pass
    limit_bytes = cache_limit_bytes()
    limit_entries = cache_limit_entries()
    if limit_bytes is not None or limit_entries is not None:
        prune(max_bytes=limit_bytes, max_entries=limit_entries,
              keep=(key,))
    return True


# ----------------------------------------------------------------------
# Generic JSON payload entries
#
# Results that are not a CoreResult (multicore scenario payloads, for
# now) share the same store: checksummed, atomically written, subject to
# the same LRU budget.  A wrapper key keeps them from ever being
# mistaken for a CoreResult entry (``load`` on one simply misses).


_PAYLOAD_WRAPPER_KEY = "__payload__"


def store_payload(key: str, payload: Dict[str, Any]) -> bool:
    """Write an arbitrary JSON *payload* under *key* (best-effort)."""
    return _write_entry(key, {_PAYLOAD_WRAPPER_KEY: payload})


def load_payload(key: str) -> Optional[Dict[str, Any]]:
    """Read a payload entry; any damage or schema mismatch is a miss."""
    path = entry_path(key)
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    stored_sum = document.pop(_CHECKSUM_KEY, None)
    if stored_sum is None or _payload_checksum(document) != stored_sum:
        return None
    payload = document.get(_PAYLOAD_WRAPPER_KEY)
    if not isinstance(payload, dict):
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    return payload


# ----------------------------------------------------------------------
# Size accounting and eviction


@dataclass(frozen=True)
class CacheUsage:
    """Point-in-time size report of the on-disk store."""

    directory: str
    entries: int
    total_bytes: int
    limit_bytes: Optional[int]
    limit_entries: Optional[int]

    @property
    def over_limit(self) -> bool:
        if self.limit_bytes is not None and self.total_bytes > self.limit_bytes:
            return True
        return (self.limit_entries is not None
                and self.entries > self.limit_entries)

    def render(self) -> str:
        def fmt(limit: Optional[int]) -> str:
            return "unlimited" if limit is None else str(limit)

        return (f"cache {self.directory}\n"
                f"  entries: {self.entries} (limit {fmt(self.limit_entries)})\n"
                f"  bytes:   {self.total_bytes} (limit {fmt(self.limit_bytes)})")


def _scan_entries(directory: Path) -> List[Path]:
    if not directory.is_dir():
        return []
    return [p for p in directory.glob("*.json") if p.is_file()]


def usage() -> CacheUsage:
    """Current entry count and byte total (plus any env-set limits)."""
    directory = cache_dir()
    entries = _scan_entries(directory)
    total = 0
    for path in entries:
        try:
            total += path.stat().st_size
        except OSError:
            pass
    return CacheUsage(directory=str(directory), entries=len(entries),
                      total_bytes=total,
                      limit_bytes=cache_limit_bytes(),
                      limit_entries=cache_limit_entries())


def prune(max_bytes: Optional[int] = None,
          max_entries: Optional[int] = None,
          keep: Optional[Any] = None) -> List[str]:
    """Evict least-recently-used entries until both budgets hold.

    ``max_bytes`` / ``max_entries`` of ``None`` mean "no bound on that
    axis"; calling with both ``None`` is a no-op.  Keys listed in
    ``keep`` are never evicted (``store`` protects the entry it just
    wrote).  Returns the evicted keys, oldest first.
    """
    if max_bytes is None and max_entries is None:
        return []
    directory = cache_dir()
    protected = set(keep or ())
    survivors = []
    for path in _scan_entries(directory):
        try:
            stat = path.stat()
        except OSError:
            continue
        survivors.append((stat.st_mtime, stat.st_size, path))
    survivors.sort()  # oldest mtime first = least recently used first
    total_bytes = sum(size for _, size, _ in survivors)
    total_entries = len(survivors)
    evicted: List[str] = []
    for _, size, path in survivors:
        bytes_ok = max_bytes is None or total_bytes <= max_bytes
        entries_ok = max_entries is None or total_entries <= max_entries
        if bytes_ok and entries_ok:
            break
        if path.stem in protected:
            continue
        try:
            os.remove(path)
        except OSError:
            continue
        evicted.append(path.stem)
        total_bytes -= size
        total_entries -= 1
    return evicted
