"""Crash-safe sweep checkpoints: a killed sweep resumes, not restarts.

A long (workload × config) sweep that dies at pair 37 of 100 —
SIGKILL, OOM, power loss — used to recompute everything.  A
:class:`SweepCheckpoint` records each completed pair as it finishes, in
a single atomically-replaced, checksummed file (the PR 1 cache
format: JSON document with an embedded ``__sha256__`` over the
payload), so the *worst case* loss is the one pair in flight when the
process died.

Safety properties:

- **Atomic**: every update writes a per-process tmp file and
  ``os.replace``\\ s it over the live one; a kill mid-write leaves the
  previous complete checkpoint intact.
- **Checksummed**: a torn, truncated, or bit-flipped checkpoint fails
  its digest and is ignored wholesale (resume falls back to a full
  run) rather than resuming from lies.
- **Signature-guarded**: the checkpoint embeds a signature of the grid
  it belongs to (workloads, configs, scale, model fingerprint); a
  checkpoint from a different grid or an edited simulator is ignored.
- **Exact**: payloads are
  :func:`repro.tools.cache.serialize_result`-encoded
  :class:`~repro.cores.base.CoreResult` values, whose JSON round-trip
  is bit-exact — a resumed sweep's merged results are identical to an
  uninterrupted run's.

Checkpoints live under ``<cache dir>/checkpoints/<tag>.ckpt`` — a
non-``.json`` suffix, like the service's pending-jobs file, so the
result cache's ``*.json`` LRU prune can never evict sweep progress.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from . import cache

_CHECKSUM_KEY = "__sha256__"
_VERSION = 1


def checkpoint_dir() -> Path:
    """Checkpoint directory (inherits ``REPRO_CACHE_DIR`` isolation)."""
    return cache.cache_dir() / "checkpoints"


def grid_signature(
    workloads: Iterable[str], config_names: Iterable[str], scale: float, extra: str = ""
) -> str:
    """Identity of one sweep grid; mismatched checkpoints are ignored.

    Folds in the model fingerprint, so editing the simulator
    invalidates stale progress exactly like it invalidates the cache.
    """
    digest = hashlib.sha256()
    digest.update(cache.model_fingerprint().encode())
    digest.update(json.dumps(sorted(workloads)).encode())
    digest.update(json.dumps(sorted(config_names)).encode())
    digest.update(f"{scale:.6f}".encode())
    digest.update(extra.encode())
    return digest.hexdigest()[:24]


def point_key(workload: str, config_name: str) -> str:
    """Canonical checkpoint key for one (workload, config) pair.

    Every sweep flavour (suite, parallel grid, batched grid) keys its
    checkpoint entries through this one helper, so the key format can
    never drift between them.  (Payload codecs still differ per
    flavour — :func:`serialize_outcome` for parallel sweeps,
    :func:`repro.tools.cache.serialize_result` for suite/batch — which
    is why each flavour also embeds its own grid signature.)
    """
    return f"{workload}:{config_name}"


def _sanitize_tag(tag: str) -> str:
    return "".join(c if (c.isalnum() or c in "-_.") else "-" for c in tag)


class SweepCheckpoint:
    """One sweep's completed-pair record, persisted after every pair."""

    def __init__(self, tag: str, signature: str) -> None:
        if not tag:
            raise ValueError("checkpoint tag must be non-empty")
        self.tag = _sanitize_tag(tag)
        self.signature = signature
        self._entries: Dict[str, Any] = {}
        self._loaded = False

    @property
    def path(self) -> Path:
        return checkpoint_dir() / f"{self.tag}.ckpt"

    # ------------------------------------------------------------------

    def load(self) -> Dict[str, Any]:
        """Read completed entries; {} on absent/corrupt/mismatched file."""
        self._loaded = True
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            self._entries = {}
            return {}
        if not isinstance(document, dict):
            self._entries = {}
            return {}
        stored_sum = document.pop(_CHECKSUM_KEY, None)
        actual = hashlib.sha256(
            json.dumps(document, sort_keys=True).encode("utf-8")
        ).hexdigest()
        if (
            stored_sum != actual
            or document.get("version") != _VERSION
            or document.get("signature") != self.signature
        ):
            # Torn write, bit rot, or a checkpoint for a different
            # grid/model: resuming from it would be wrong, start fresh.
            self._entries = {}
            return {}
        entries = document.get("entries")
        self._entries = dict(entries) if isinstance(entries, dict) else {}
        return dict(self._entries)

    def completed_keys(self) -> Iterable[str]:
        if not self._loaded:
            self.load()
        return set(self._entries)

    def get(self, key: str) -> Optional[Any]:
        if not self._loaded:
            self.load()
        return self._entries.get(key)

    # ------------------------------------------------------------------

    def record(self, key: str, payload: Any) -> None:
        """Add one completed pair and atomically persist the file."""
        if not self._loaded:
            self.load()
        self._entries[key] = payload
        self._flush()

    def record_many(self, items: Dict[str, Any]) -> None:
        if not items:
            return
        if not self._loaded:
            self.load()
        self._entries.update(items)
        self._flush()

    def _flush(self) -> None:
        document = {
            "version": _VERSION,
            "signature": self.signature,
            "entries": self._entries,
        }
        document[_CHECKSUM_KEY] = hashlib.sha256(
            json.dumps(
                {k: v for k, v in document.items() if k != _CHECKSUM_KEY},
                sort_keys=True,
            ).encode("utf-8")
        ).hexdigest()
        directory = checkpoint_dir()
        path = self.path
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            directory.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp_path, path)
        except OSError:
            # Checkpointing is best-effort: a full disk degrades resume
            # granularity, it must never fail the sweep itself.
            pass
        finally:
            if tmp_path.exists():
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Remove the checkpoint (sweep finished, or fresh start)."""
        self._entries = {}
        self._loaded = True
        try:
            os.remove(self.path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# RunOutcome codec (parallel-sweep checkpoints)


def serialize_outcome(outcome: Any) -> Dict[str, Any]:
    """JSON-encode a :class:`~repro.reliability.runner.RunOutcome`.

    The measurement's :class:`CoreResult` rides through the result
    cache's exact codec; the TMA classification is *recomputed* on
    load (it is a pure function of the measurement), so the checkpoint
    stays small and schema drift in TmaResult can't strand progress.
    """
    measurement = outcome.measurement
    payload: Dict[str, Any] = {
        "workload": outcome.workload,
        "config_name": outcome.config_name,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "quarantined": outcome.quarantined,
        "error_class": outcome.error_class,
        "error": outcome.error,
        "trace_cache": outcome.trace_cache,
        "measurement": None,
    }
    if measurement is not None:
        payload["measurement"] = {
            "workload": measurement.workload,
            "config_name": measurement.config_name,
            "core": measurement.core,
            "events": dict(measurement.events),
            "cycles": measurement.cycles,
            "instret": measurement.instret,
            "passes": measurement.passes,
            "increment_mode": measurement.increment_mode,
            "result": (
                cache.serialize_result(measurement.result)
                if measurement.result is not None
                else None
            ),
        }
    return payload


def deserialize_outcome(payload: Dict[str, Any]) -> Any:
    """Inverse of :func:`serialize_outcome` (TMA recomputed)."""
    from ..core.tma import compute_tma
    from ..pmu.harness import Measurement
    from ..reliability.runner import RunOutcome

    outcome = RunOutcome(
        workload=payload["workload"],
        config_name=payload["config_name"],
        status=payload["status"],
        attempts=payload["attempts"],
        quarantined=payload.get("quarantined", False),
        error_class=payload.get("error_class"),
        error=payload.get("error"),
        trace_cache=payload.get("trace_cache"),
    )
    raw = payload.get("measurement")
    if raw is not None:
        outcome.measurement = Measurement(
            workload=raw["workload"],
            config_name=raw["config_name"],
            core=raw["core"],
            events={k: int(v) for k, v in raw["events"].items()},
            cycles=raw["cycles"],
            instret=raw["instret"],
            passes=raw["passes"],
            increment_mode=raw.get("increment_mode", "adders"),
            result=(
                cache.deserialize_result(raw["result"])
                if raw.get("result") is not None
                else None
            ),
        )
        if outcome.status == "ok":
            outcome.tma = compute_tma(outcome.measurement)
    return outcome
